//! # ser-suite — EPP-based soft error rate estimation
//!
//! A reproduction of *"An Accurate SER Estimation Method Based on
//! Propagation Probability"* (Asadi & Tahoori, DATE 2005) as a family
//! of Rust crates, re-exported here under one roof:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`netlist`] | `ser-netlist` | circuit IR, `.bench` parser, graph algorithms |
//! | [`sim`] | `ser-sim` | bit-parallel simulation, SEU injection, Monte-Carlo baseline |
//! | [`sp`] | `ser-sp` | signal-probability engines |
//! | [`epp`] | `ser-epp` | the paper's EPP computation and the SER model |
//! | [`gen`] | `ser-gen` | benchmark circuits and generators |
//! | [`service`] | `ser-service` | multi-circuit batch service: warm session LRU + shared executor |
//!
//! # Examples
//!
//! End-to-end: build a circuit, run both the analytical method and the
//! random-simulation baseline, compare:
//!
//! ```
//! use ser_suite::gen::c17;
//! use ser_suite::epp::CircuitSerAnalysis;
//! use ser_suite::sim::{BitSim, MonteCarlo};
//!
//! let c = c17();
//! let analytical = CircuitSerAnalysis::new().run(&c)?;
//!
//! let sim = BitSim::new(&c)?;
//! let mc = MonteCarlo::new(20_000).with_seed(1);
//! let g10 = c.find("G10").unwrap();
//! let baseline = mc.estimate_site(&sim, g10);
//!
//! let fast = analytical.site(g10).p_sensitized();
//! assert!((fast - baseline.p_sensitized).abs() < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same comparison through one compiled
//! [`AnalysisSession`](epp::AnalysisSession) — topological order,
//! observe points, signal probabilities and the simulator are computed
//! once and shared by every estimation path:
//!
//! ```
//! use ser_suite::gen::c17;
//! use ser_suite::epp::{AnalysisSession, CircuitSerAnalysis};
//! use ser_suite::sim::MonteCarlo;
//!
//! let c = c17();
//! let session = AnalysisSession::new(&c)?;
//! let analytical = CircuitSerAnalysis::new().run_with_session(&session);
//!
//! let g10 = c.find("G10").unwrap();
//! let mc = MonteCarlo::new(20_000).with_seed(1);
//! let baseline = session.monte_carlo_site(&mc, g10);
//!
//! let fast = analytical.site(g10).p_sensitized();
//! assert!((fast - baseline.p_sensitized).abs() < 0.1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ser_epp as epp;
pub use ser_gen as gen;
pub use ser_netlist as netlist;
pub use ser_service as service;
pub use ser_sim as sim;
pub use ser_sp as sp;
