//! `ser-cli` — command-line front end for the SER estimation suite.
//!
//! ```text
//! ser-cli info    <netlist>                   structural summary
//! ser-cli analyze <netlist> [--top N]         whole-circuit SER report
//! ser-cli epp     <netlist> <node>            per-site EPP detail
//! ser-cli advise  <netlist> [--rounds N]      iterative hardening advisor

//! ser-cli batch   <jobs.jsonl>                run a v1 JSONL job file through the service
//! ser-cli serve   [--tcp ADDR]                protocol server on stdin/stdout or TCP
//! ser-cli gen     <profile> [--seed S] [-o F] emit a synthetic benchmark
//! ser-cli convert <in> <out>                  .bench <-> .v conversion
//! ser-cli cache   <stats|clear> --cache-dir D inspect/empty the plan-artifact cache
//! ```
//!
//! Netlists may be ISCAS `.bench` files or structural Verilog (`.v`);
//! the format is chosen by file extension.
//!
//! `serve` speaks the versioned wire protocol documented in
//! [`ser_suite::service::protocol`] — envelope requests, framed
//! streaming replies, structured errors — plus the v1 flat-job shim,
//! on stdin/stdout by default or as a TCP daemon with `--tcp ADDR`
//! (optional `--auth-token`, per-client `--quota`, server-wide
//! `--max-inflight`, idle-connection reaping with `--idle-timeout`).
//! `batch` runs a v1 JSONL job file as one
//! interleaved batch, prints one response line per job, and exits
//! non-zero if any job failed.
//!
//! `batch` and `serve` accept `--cache-dir DIR` to persist compiled
//! cone plans across processes (see [`ser_suite::netlist::PlanCache`])
//! and `--cache-max-bytes N` to cap that directory (least-recently-used
//! entries are evicted at store time); `cache stats` / `cache clear`
//! inspect and empty the directory.

use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use ser_suite::epp::{
    AnalysisSession, CircuitSerAnalysis, Edit, HardeningCost, HardeningPlan, WhatIfSession,
};
use ser_suite::gen::{profile, synthesize};
use ser_suite::netlist::{
    parse_bench, parse_verilog, write_bench, write_verilog, Circuit, CircuitStats, PlanCache,
};
use ser_suite::service::{
    parse_job_line, serve, v1_response_json, EngineConfig, JobSpec, ProtocolEngine, SerService,
    SerServiceConfig, StdioTransport, TcpTransport, WireError,
};

fn load(path: &str) -> Result<Circuit, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    if path.ends_with(".v") || path.ends_with(".sv") {
        parse_verilog(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
    } else {
        parse_bench(&text, stem).map_err(|e| format!("cannot parse `{path}`: {e}"))
    }
}

fn cmd_convert(input: &str, output: &str) -> Result<(), String> {
    let c = load(input)?;
    let text = if output.ends_with(".v") || output.ends_with(".sv") {
        write_verilog(&c)
    } else {
        write_bench(&c)
    };
    fs::write(output, text).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    eprintln!("wrote {} ({} nodes) to {output}", c.name(), c.len());
    Ok(())
}

fn cmd_info(path: &str) -> Result<(), String> {
    let c = load(path)?;
    let stats = CircuitStats::compute(&c).map_err(|e| e.to_string())?;
    println!("{stats}");
    println!("  gate mix:");
    for (kind, count) in &stats.by_kind {
        println!("    {kind:<6} {count}");
    }
    Ok(())
}

fn cmd_analyze(path: &str, top: usize, threads: usize) -> Result<(), String> {
    let c = load(path)?;
    // One compiled session per invocation: topo order, observe points
    // and SP are computed once and shared by the whole sweep.
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    let outcome = CircuitSerAnalysis::new()
        .with_threads(threads)
        .run_with_session(&session);
    println!(
        "analyzed {} nodes in {:?} (SP: {:?}, {} of {threads} requested threads used)",
        c.len(),
        outcome.epp_time(),
        outcome.sp_time(),
        outcome.threads_used(),
    );
    println!("total SER (unit models): {:.4}\n", outcome.report().total());
    println!("{:<16} {:>12} {:>12}", "node", "P_sens", "SER");
    println!("{}", "-".repeat(42));
    for e in outcome.report().ranking().iter().take(top) {
        println!(
            "{:<16} {:>12.4} {:>12.4}",
            c.node(e.node).name(),
            e.p_sensitized,
            e.ser
        );
    }
    Ok(())
}

fn cmd_epp(path: &str, node_name: &str) -> Result<(), String> {
    let c = load(path)?;
    let site = c
        .find(node_name)
        .ok_or_else(|| format!("no node named `{node_name}` in {path}"))?;
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    // Single-site query: the per-site path costs one DFS; compiling the
    // whole circuit's cone plans only pays off for sweeps.
    let r = session.site(site);
    println!(
        "site `{node_name}`: {} on-path gates, P_sensitized = {:.4}",
        r.on_path_gates(),
        r.p_sensitized()
    );
    for p in r.per_point() {
        let kind = if p.point.is_flip_flop() { "FF" } else { "PO" };
        println!(
            "  {kind} at `{}`: {}",
            c.node(p.point.signal()).name(),
            p.value
        );
    }
    Ok(())
}

/// `advise`: the rank → harden → re-rank loop. Each round takes the
/// greedy [`HardeningPlan`]'s top affordable pick, applies the TMR
/// **for real** through the incremental what-if engine, and reports the
/// *measured* SER change next to the plan's stale single-shot
/// prediction — then re-ranks on the edited circuit, so round `k+1`
/// chooses against the circuit that round `k` actually produced
/// instead of the original ranking. Only the dirty region is re-swept
/// per round, which is what makes the loop interactive on large
/// circuits.
fn cmd_advise(
    path: &str,
    rounds: usize,
    budget: f64,
    cost: HardeningCost,
    threads: usize,
) -> Result<(), String> {
    let c = load(path)?;
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    let mut wf = WhatIfSession::new(session, threads);
    let base_total = wf.total_ser();
    println!(
        "{}: base total SER (unit models) {:.6} over {} sites",
        c.name(),
        base_total,
        wf.circuit().len()
    );
    println!(
        "{:>5} {:<20} {:>8} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "round", "gate", "cost", "predicted", "measured", "total", "dirty/total", "resweep"
    );
    println!("{}", "-".repeat(100));

    let mut remaining = budget;
    let mut applied = 0usize;
    for round in 1..=rounds {
        // Re-rank against the *current* (already hardened) circuit.
        let report = wf.report();
        let circuit = Arc::clone(wf.circuit());
        let plan = HardeningPlan::greedy(&circuit, &report, cost, remaining);
        // TMR applies to logic gates; the plan may also rank inputs
        // and flip-flops, so skip to the best protectable pick.
        let Some(choice) = plan
            .choices()
            .iter()
            .find(|ch| circuit.node(ch.node).kind().is_logic())
            .copied()
        else {
            println!(
                "round {round}: no affordable logic gate left (budget {remaining:.2}); stopping"
            );
            break;
        };
        let name = circuit.node(choice.node).name().to_owned();
        let outcome = wf
            .apply(Edit::Tmr(choice.node))
            .map_err(|e| e.to_string())?;
        applied += 1;
        remaining -= choice.cost;
        // The measured change re-evaluates everything the plan's
        // per-entry estimate ignores: the voter tree's own exposure
        // and every reconvergent site whose P_sensitized shifted.
        let measured = outcome.previous_total - outcome.total;
        println!(
            "{:>5} {:<20} {:>8.2} {:>12.6} {:>12.6} {:>12.6} {:>9}/{:<5} {:>4}p+{:<4}r {:>6.1?}",
            round,
            name,
            choice.cost,
            choice.removed_ser,
            measured,
            outcome.total,
            outcome.dirty_sites,
            outcome.total_sites,
            outcome.resweep_planned,
            outcome.resweep_reference,
            outcome.elapsed
        );
    }
    let final_total = wf.total_ser();
    println!("{}", "-".repeat(100));
    println!(
        "after {applied} hardening edits: total SER {:.6} ({:+.2}% vs base), budget spent {:.2} of {:.2}",
        final_total,
        (final_total - base_total) / base_total * 100.0,
        budget - remaining,
        budget
    );
    Ok(())
}

/// Loads netlists for the service commands, caching by path so a job
/// file naming one netlist many times parses (and hashes) it once.
struct CircuitCache {
    by_path: HashMap<String, Arc<Circuit>>,
}

impl CircuitCache {
    fn new() -> Self {
        CircuitCache {
            by_path: HashMap::new(),
        }
    }

    fn load(&mut self, path: &str) -> Result<Arc<Circuit>, String> {
        if let Some(c) = self.by_path.get(path) {
            return Ok(Arc::clone(c));
        }
        let circuit: Arc<Circuit> = Arc::new(load(path)?);
        self.by_path.insert(path.to_owned(), Arc::clone(&circuit));
        Ok(circuit)
    }
}

/// Renders a failed job as a v1 error line with a structured
/// `{code, message}` error object.
fn error_json(line_no: usize, error: &WireError) -> String {
    format!("{{\"line\": {line_no}, \"error\": {}}}", error.render())
}

fn service_config(args: &[String]) -> Result<SerServiceConfig, String> {
    let mut config = SerServiceConfig::default();
    if let Some(threads) = flag_value(args, "--threads") {
        config.threads = threads
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or_else(|| "bad --threads value (need a positive integer)".to_owned())?;
    }
    if let Some(sessions) = flag_value(args, "--sessions") {
        config.max_sessions = sessions
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or_else(|| "bad --sessions value (need a positive integer)".to_owned())?;
    }
    if let Some(dir) = flag_value(args, "--cache-dir") {
        config.plan_cache_dir = Some(dir.into());
    }
    if let Some(max) = flag_value(args, "--cache-max-bytes") {
        if config.plan_cache_dir.is_none() {
            return Err("--cache-max-bytes needs --cache-dir".to_owned());
        }
        config.plan_cache_max_bytes =
            Some(max.parse().ok().filter(|&n: &u64| n > 0).ok_or_else(|| {
                "bad --cache-max-bytes value (need a positive integer)".to_owned()
            })?);
    }
    Ok(config)
}

/// `cache stats` / `cache clear`: inspect or empty a persistent
/// plan-artifact cache directory.
fn cmd_cache(args: &[String]) -> Result<(), String> {
    let dir = flag_value(args, "--cache-dir")
        .ok_or_else(|| "cache: --cache-dir DIR is required".to_owned())?;
    let cache = PlanCache::new(&dir);
    match args.get(1).map(String::as_str) {
        Some("stats") => {
            let stats = cache.stats().map_err(|e| format!("cache stats: {e}"))?;
            println!(
                "plan cache at {dir}: {} entries, {} bytes (format v{})",
                stats.entries,
                stats.bytes,
                PlanCache::FORMAT_VERSION
            );
            Ok(())
        }
        Some("clear") => {
            let removed = cache.clear().map_err(|e| format!("cache clear: {e}"))?;
            eprintln!("removed {removed} entries from {dir}");
            Ok(())
        }
        _ => Err("usage: ser-cli cache <stats|clear> --cache-dir DIR".to_owned()),
    }
}

/// `batch`: parse the whole job file, submit it as one interleaved
/// batch, print one response line per job in file order. Exits
/// non-zero when any job failed (the error lines still print, so a
/// pipeline sees both the partial results and the failure).
fn cmd_batch(path: &str, config: SerServiceConfig) -> Result<(), String> {
    use std::io::Write as _;

    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let service = SerService::new(config);
    let mut cache = CircuitCache::new();
    // Parse every line first; a bad line fails the whole batch up front
    // (jobs may take minutes — better to reject early).
    let mut specs: Vec<(usize, JobSpec, Arc<Circuit>)> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let spec = parse_job_line(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
        let circuit = cache
            .load(&spec.netlist)
            .map_err(|e| format!("line {}: {e}", line_no + 1))?;
        specs.push((line_no + 1, spec, circuit));
    }
    let jobs = specs
        .iter()
        .map(|(line_no, spec, circuit)| {
            let request = spec
                .to_request(circuit)
                .map_err(|e| format!("line {line_no}: {e}"))?;
            Ok((Arc::clone(circuit), request))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let responses = service.submit_batch(jobs);
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    let mut failed = 0usize;
    for ((line_no, spec, circuit), response) in specs.iter().zip(responses) {
        let line = match response {
            Ok(r) => v1_response_json(spec.top, circuit, &r),
            Err(e) => {
                failed += 1;
                error_json(*line_no, &WireError::from(e))
            }
        };
        writeln!(w, "{line}").map_err(|e| e.to_string())?;
    }
    drop(w);
    let stats = service.stats();
    eprintln!(
        "served {} jobs ({} warm hits, {} compiles, {} evictions, {} sessions cached; sweep cache {} hits / {} misses, {} cached; plan cache {} hits / {} misses / {} evicted)",
        specs.len(),
        stats.session_hits,
        stats.session_misses,
        stats.evictions,
        stats.sessions_cached,
        stats.sweep_cache_hits,
        stats.sweep_cache_misses,
        stats.sweep_responses_cached,
        stats.plan_cache_hits,
        stats.plan_cache_misses,
        stats.plan_cache_evictions
    );
    if failed > 0 {
        return Err(format!("{failed} of {} jobs failed", specs.len()));
    }
    Ok(())
}

/// `serve`: the protocol server — versioned envelopes with streaming
/// frames plus the v1 shim — on stdin/stdout, or on TCP with `--tcp`.
/// Compiled circuits stay warm in the shared session LRU across
/// requests (and, on TCP, across client connections).
fn cmd_serve(
    config: SerServiceConfig,
    engine_config: EngineConfig,
    tcp: Option<String>,
    idle_timeout: Option<Duration>,
) -> Result<(), String> {
    let service = Arc::new(SerService::new(config));
    let reap_counter = service.idle_reap_counter();
    let engine = Arc::new(ProtocolEngine::new(service, engine_config));
    match tcp {
        None => {
            let mut transport = StdioTransport::new();
            serve(&mut transport, &engine).map_err(|e| e.to_string())
        }
        Some(addr) => {
            let mut transport =
                TcpTransport::bind(&addr).map_err(|e| format!("cannot bind `{addr}`: {e}"))?;
            if let Some(timeout) = idle_timeout {
                // Reaps show up as `idle_reaped` in the stats op.
                transport = transport.with_idle_timeout(timeout, reap_counter);
            }
            eprintln!("ser-service listening on {}", transport.local_addr());
            serve(&mut transport, &engine).map_err(|e| e.to_string())
        }
    }
}

/// The `--idle-timeout SECS` serve flag (TCP only; 0 is rejected —
/// omit the flag to disable reaping).
fn idle_timeout(args: &[String]) -> Result<Option<Duration>, String> {
    match flag_value(args, "--idle-timeout") {
        None => Ok(None),
        Some(secs) => secs
            .parse()
            .ok()
            .filter(|&n: &u64| n > 0)
            .map(|n| Some(Duration::from_secs(n)))
            .ok_or_else(|| {
                "bad --idle-timeout value (need a positive number of seconds)".to_owned()
            }),
    }
}

/// The serve-only flags (`--tcp`, `--auth-token`, `--quota`,
/// `--max-inflight`).
fn engine_config(args: &[String]) -> Result<EngineConfig, String> {
    let mut config = EngineConfig {
        auth_token: flag_value(args, "--auth-token"),
        ..EngineConfig::default()
    };
    if let Some(quota) = flag_value(args, "--quota") {
        config.quota = Some(
            quota
                .parse()
                .ok()
                .filter(|&n: &u64| n > 0)
                .ok_or_else(|| "bad --quota value (need a positive integer)".to_owned())?,
        );
    }
    if let Some(inflight) = flag_value(args, "--max-inflight") {
        config.max_inflight = inflight
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or_else(|| "bad --max-inflight value (need a positive integer)".to_owned())?;
    }
    Ok(config)
}

fn cmd_gen(name: &str, seed: u64, out: Option<&str>) -> Result<(), String> {
    let p = profile(name).ok_or_else(|| {
        format!("unknown profile `{name}` (try s953, s1196, ..., s38417, s298, s344, s386, s526)")
    })?;
    let c = synthesize(&p, seed);
    let text = write_bench(&c);
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} ({} nodes) to {path}", c.name(), c.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn usage() -> String {
    "usage:\n  ser-cli info    <netlist>\n  ser-cli analyze <netlist> [--top N] [--threads N]\n  ser-cli epp     <netlist> <node>\n  ser-cli advise  <netlist> [--rounds N] [--budget B] [--cost unit|area] [--threads N]\n  ser-cli batch   <jobs.jsonl> [--threads N] [--sessions N] [--cache-dir DIR] [--cache-max-bytes N]\n  ser-cli serve   [--threads N] [--sessions N] [--cache-dir DIR] [--cache-max-bytes N] [--tcp ADDR] [--auth-token TOKEN] [--quota N] [--max-inflight N] [--idle-timeout SECS]\n  ser-cli gen     <profile> [--seed S] [-o out.bench]\n  ser-cli convert <in.bench|in.v> <out.bench|out.v>\n  ser-cli cache   <stats|clear> --cache-dir DIR"
        .to_owned()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(args.get(1).ok_or_else(usage)?),
        Some("analyze") => {
            let path = args.get(1).ok_or_else(usage)?;
            let top = flag_value(&args, "--top")
                .map(|v| v.parse().map_err(|_| "bad --top value".to_owned()))
                .transpose()?
                .unwrap_or(15);
            let threads = flag_value(&args, "--threads")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| "bad --threads value (need a positive integer)".to_owned())
                })
                .transpose()?
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            cmd_analyze(path, top, threads)
        }
        Some("epp") => {
            let path = args.get(1).ok_or_else(usage)?;
            let node = args.get(2).ok_or_else(usage)?;
            cmd_epp(path, node)
        }
        Some("advise") => {
            let path = args.get(1).ok_or_else(usage)?;
            let rounds = flag_value(&args, "--rounds")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| "bad --rounds value (need a positive integer)".to_owned())
                })
                .transpose()?
                .unwrap_or(5);
            let budget = flag_value(&args, "--budget")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&b: &f64| b.is_finite() && b > 0.0)
                        .ok_or_else(|| "bad --budget value (need a positive number)".to_owned())
                })
                .transpose()?
                .unwrap_or(f64::from(u32::MAX));
            let cost = match flag_value(&args, "--cost").as_deref() {
                None | Some("unit") => HardeningCost::Unit,
                Some("area") => HardeningCost::AreaProxy,
                Some(other) => return Err(format!("bad --cost value `{other}` (unit or area)")),
            };
            let threads = flag_value(&args, "--threads")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| "bad --threads value (need a positive integer)".to_owned())
                })
                .transpose()?
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            cmd_advise(path, rounds, budget, cost, threads)
        }
        Some("batch") => {
            let path = args.get(1).ok_or_else(usage)?;
            cmd_batch(path, service_config(&args)?)
        }
        Some("serve") => cmd_serve(
            service_config(&args)?,
            engine_config(&args)?,
            flag_value(&args, "--tcp"),
            idle_timeout(&args)?,
        ),
        Some("convert") => {
            let input = args.get(1).ok_or_else(usage)?;
            let output = args.get(2).ok_or_else(usage)?;
            cmd_convert(input, output)
        }
        Some("cache") => cmd_cache(&args),
        Some("gen") => {
            let name = args.get(1).ok_or_else(usage)?;
            let seed = flag_value(&args, "--seed")
                .map(|v| v.parse().map_err(|_| "bad --seed value".to_owned()))
                .transpose()?
                .unwrap_or(1);
            let out = flag_value(&args, "-o");
            cmd_gen(name, seed, out.as_deref())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
