//! `ser-cli` — command-line front end for the SER estimation suite.
//!
//! ```text
//! ser-cli info    <netlist>                   structural summary
//! ser-cli analyze <netlist> [--top N]         whole-circuit SER report
//! ser-cli epp     <netlist> <node>            per-site EPP detail
//! ser-cli gen     <profile> [--seed S] [-o F] emit a synthetic benchmark
//! ser-cli convert <in> <out>                  .bench <-> .v conversion
//! ```
//!
//! Netlists may be ISCAS `.bench` files or structural Verilog (`.v`);
//! the format is chosen by file extension.

use std::fs;
use std::process::ExitCode;

use ser_suite::epp::{AnalysisSession, CircuitSerAnalysis};
use ser_suite::gen::{profile, synthesize};
use ser_suite::netlist::{
    parse_bench, parse_verilog, write_bench, write_verilog, Circuit, CircuitStats,
};

fn load(path: &str) -> Result<Circuit, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    if path.ends_with(".v") || path.ends_with(".sv") {
        parse_verilog(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
    } else {
        parse_bench(&text, stem).map_err(|e| format!("cannot parse `{path}`: {e}"))
    }
}

fn cmd_convert(input: &str, output: &str) -> Result<(), String> {
    let c = load(input)?;
    let text = if output.ends_with(".v") || output.ends_with(".sv") {
        write_verilog(&c)
    } else {
        write_bench(&c)
    };
    fs::write(output, text).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    eprintln!("wrote {} ({} nodes) to {output}", c.name(), c.len());
    Ok(())
}

fn cmd_info(path: &str) -> Result<(), String> {
    let c = load(path)?;
    let stats = CircuitStats::compute(&c).map_err(|e| e.to_string())?;
    println!("{stats}");
    println!("  gate mix:");
    for (kind, count) in &stats.by_kind {
        println!("    {kind:<6} {count}");
    }
    Ok(())
}

fn cmd_analyze(path: &str, top: usize, threads: usize) -> Result<(), String> {
    let c = load(path)?;
    // One compiled session per invocation: topo order, observe points
    // and SP are computed once and shared by the whole sweep.
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    let outcome = CircuitSerAnalysis::new()
        .with_threads(threads)
        .run_with_session(&session);
    println!(
        "analyzed {} nodes in {:?} (SP: {:?}, {} of {threads} requested threads used)",
        c.len(),
        outcome.epp_time(),
        outcome.sp_time(),
        outcome.threads_used(),
    );
    println!("total SER (unit models): {:.4}\n", outcome.report().total());
    println!("{:<16} {:>12} {:>12}", "node", "P_sens", "SER");
    println!("{}", "-".repeat(42));
    for e in outcome.report().ranking().iter().take(top) {
        println!(
            "{:<16} {:>12.4} {:>12.4}",
            c.node(e.node).name(),
            e.p_sensitized,
            e.ser
        );
    }
    Ok(())
}

fn cmd_epp(path: &str, node_name: &str) -> Result<(), String> {
    let c = load(path)?;
    let site = c
        .find(node_name)
        .ok_or_else(|| format!("no node named `{node_name}` in {path}"))?;
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    // Single-site query: the per-site path costs one DFS; compiling the
    // whole circuit's cone plans only pays off for sweeps.
    let r = session.site(site);
    println!(
        "site `{node_name}`: {} on-path gates, P_sensitized = {:.4}",
        r.on_path_gates(),
        r.p_sensitized()
    );
    for p in r.per_point() {
        let kind = if p.point.is_flip_flop() { "FF" } else { "PO" };
        println!(
            "  {kind} at `{}`: {}",
            c.node(p.point.signal()).name(),
            p.value
        );
    }
    Ok(())
}

fn cmd_gen(name: &str, seed: u64, out: Option<&str>) -> Result<(), String> {
    let p = profile(name).ok_or_else(|| {
        format!("unknown profile `{name}` (try s953, s1196, ..., s38417, s298, s344, s386, s526)")
    })?;
    let c = synthesize(&p, seed);
    let text = write_bench(&c);
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} ({} nodes) to {path}", c.name(), c.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn usage() -> String {
    "usage:\n  ser-cli info    <netlist>\n  ser-cli analyze <netlist> [--top N] [--threads N]\n  ser-cli epp     <netlist> <node>\n  ser-cli gen     <profile> [--seed S] [-o out.bench]\n  ser-cli convert <in.bench|in.v> <out.bench|out.v>"
        .to_owned()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(args.get(1).ok_or_else(usage)?),
        Some("analyze") => {
            let path = args.get(1).ok_or_else(usage)?;
            let top = flag_value(&args, "--top")
                .map(|v| v.parse().map_err(|_| "bad --top value".to_owned()))
                .transpose()?
                .unwrap_or(15);
            let threads = flag_value(&args, "--threads")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| "bad --threads value (need a positive integer)".to_owned())
                })
                .transpose()?
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            cmd_analyze(path, top, threads)
        }
        Some("epp") => {
            let path = args.get(1).ok_or_else(usage)?;
            let node = args.get(2).ok_or_else(usage)?;
            cmd_epp(path, node)
        }
        Some("convert") => {
            let input = args.get(1).ok_or_else(usage)?;
            let output = args.get(2).ok_or_else(usage)?;
            cmd_convert(input, output)
        }
        Some("gen") => {
            let name = args.get(1).ok_or_else(usage)?;
            let seed = flag_value(&args, "--seed")
                .map(|v| v.parse().map_err(|_| "bad --seed value".to_owned()))
                .transpose()?
                .unwrap_or(1);
            let out = flag_value(&args, "-o");
            cmd_gen(name, seed, out.as_deref())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
