//! `ser-cli` — command-line front end for the SER estimation suite.
//!
//! ```text
//! ser-cli info    <netlist>                   structural summary
//! ser-cli analyze <netlist> [--top N]         whole-circuit SER report
//! ser-cli epp     <netlist> <node>            per-site EPP detail
//! ser-cli batch   <jobs.jsonl>                run a JSONL job file through the service
//! ser-cli serve                               line-oriented service on stdin/stdout
//! ser-cli gen     <profile> [--seed S] [-o F] emit a synthetic benchmark
//! ser-cli convert <in> <out>                  .bench <-> .v conversion
//! ```
//!
//! Netlists may be ISCAS `.bench` files or structural Verilog (`.v`);
//! the format is chosen by file extension.
//!
//! `batch` and `serve` both speak the JSONL job protocol documented in
//! [`ser_suite::service::jobs`]: one job object per line, one JSON
//! response (or error) line back per job. `batch` submits the whole
//! file as one interleaved batch; `serve` answers line by line on
//! stdin/stdout while keeping every compiled circuit warm in the
//! session LRU.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::io::{BufRead, Write as _};
use std::process::ExitCode;
use std::sync::Arc;

use ser_suite::epp::{AnalysisSession, CircuitSerAnalysis};
use ser_suite::gen::{profile, synthesize};
use ser_suite::netlist::{
    parse_bench, parse_verilog, write_bench, write_verilog, Circuit, CircuitStats,
};
use ser_suite::service::{
    json_escape, parse_job_line, JobSpec, Response, ResponsePayload, SerService, SerServiceConfig,
};

fn load(path: &str) -> Result<Circuit, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let stem = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("circuit");
    if path.ends_with(".v") || path.ends_with(".sv") {
        parse_verilog(&text).map_err(|e| format!("cannot parse `{path}`: {e}"))
    } else {
        parse_bench(&text, stem).map_err(|e| format!("cannot parse `{path}`: {e}"))
    }
}

fn cmd_convert(input: &str, output: &str) -> Result<(), String> {
    let c = load(input)?;
    let text = if output.ends_with(".v") || output.ends_with(".sv") {
        write_verilog(&c)
    } else {
        write_bench(&c)
    };
    fs::write(output, text).map_err(|e| format!("cannot write `{output}`: {e}"))?;
    eprintln!("wrote {} ({} nodes) to {output}", c.name(), c.len());
    Ok(())
}

fn cmd_info(path: &str) -> Result<(), String> {
    let c = load(path)?;
    let stats = CircuitStats::compute(&c).map_err(|e| e.to_string())?;
    println!("{stats}");
    println!("  gate mix:");
    for (kind, count) in &stats.by_kind {
        println!("    {kind:<6} {count}");
    }
    Ok(())
}

fn cmd_analyze(path: &str, top: usize, threads: usize) -> Result<(), String> {
    let c = load(path)?;
    // One compiled session per invocation: topo order, observe points
    // and SP are computed once and shared by the whole sweep.
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    let outcome = CircuitSerAnalysis::new()
        .with_threads(threads)
        .run_with_session(&session);
    println!(
        "analyzed {} nodes in {:?} (SP: {:?}, {} of {threads} requested threads used)",
        c.len(),
        outcome.epp_time(),
        outcome.sp_time(),
        outcome.threads_used(),
    );
    println!("total SER (unit models): {:.4}\n", outcome.report().total());
    println!("{:<16} {:>12} {:>12}", "node", "P_sens", "SER");
    println!("{}", "-".repeat(42));
    for e in outcome.report().ranking().iter().take(top) {
        println!(
            "{:<16} {:>12.4} {:>12.4}",
            c.node(e.node).name(),
            e.p_sensitized,
            e.ser
        );
    }
    Ok(())
}

fn cmd_epp(path: &str, node_name: &str) -> Result<(), String> {
    let c = load(path)?;
    let site = c
        .find(node_name)
        .ok_or_else(|| format!("no node named `{node_name}` in {path}"))?;
    let session = AnalysisSession::new(&c).map_err(|e| e.to_string())?;
    // Single-site query: the per-site path costs one DFS; compiling the
    // whole circuit's cone plans only pays off for sweeps.
    let r = session.site(site);
    println!(
        "site `{node_name}`: {} on-path gates, P_sensitized = {:.4}",
        r.on_path_gates(),
        r.p_sensitized()
    );
    for p in r.per_point() {
        let kind = if p.point.is_flip_flop() { "FF" } else { "PO" };
        println!(
            "  {kind} at `{}`: {}",
            c.node(p.point.signal()).name(),
            p.value
        );
    }
    Ok(())
}

/// Loads netlists for the service commands, caching by path so a job
/// file naming one netlist many times parses (and hashes) it once.
struct CircuitCache {
    by_path: HashMap<String, Arc<Circuit>>,
}

impl CircuitCache {
    fn new() -> Self {
        CircuitCache {
            by_path: HashMap::new(),
        }
    }

    fn load(&mut self, path: &str) -> Result<Arc<Circuit>, String> {
        if let Some(c) = self.by_path.get(path) {
            return Ok(Arc::clone(c));
        }
        let circuit: Arc<Circuit> = Arc::new(load(path)?);
        self.by_path.insert(path.to_owned(), Arc::clone(&circuit));
        Ok(circuit)
    }
}

/// Renders one served response as a JSON line.
fn response_json(spec: &JobSpec, circuit: &Circuit, response: &Response) -> String {
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"circuit\": \"{}\", \"netlist_hash\": \"{:016x}\", \"warm\": {}, \"wall_us\": {}",
        json_escape(&response.meta.circuit),
        response.meta.netlist_hash,
        response.meta.warm_session,
        response.meta.wall.as_micros()
    );
    match &response.payload {
        ResponsePayload::Sweep(sweep) => {
            let total: f64 = sweep.p_sensitized().iter().sum();
            let _ = write!(
                out,
                ", \"op\": \"sweep\", \"nodes\": {}, \"total_p_sensitized\": {total:.6}",
                sweep.len()
            );
            let top = spec.top.unwrap_or(5);
            if top > 0 {
                let mut ranked: Vec<usize> = (0..sweep.len()).collect();
                ranked.sort_by(|&a, &b| {
                    sweep.p_sensitized()[b]
                        .partial_cmp(&sweep.p_sensitized()[a])
                        .expect("finite probabilities")
                });
                out.push_str(", \"top\": [");
                for (i, &pos) in ranked.iter().take(top).enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let site = sweep.get(pos);
                    let _ = write!(
                        out,
                        "{{\"node\": \"{}\", \"p_sensitized\": {:.6}}}",
                        json_escape(circuit.node(site.site()).name()),
                        site.p_sensitized()
                    );
                }
                out.push(']');
            }
        }
        ResponsePayload::Site(site) => {
            let _ = write!(
                out,
                ", \"op\": \"site\", \"node\": \"{}\", \"p_sensitized\": {:.6}, \"on_path_gates\": {}",
                json_escape(circuit.node(site.site()).name()),
                site.p_sensitized(),
                site.on_path_gates()
            );
        }
        ResponsePayload::MonteCarlo(est) => {
            let _ = write!(
                out,
                ", \"op\": \"monte_carlo\", \"node\": \"{}\", \"p_sensitized\": {:.6}, \"vectors\": {}",
                json_escape(circuit.node(est.site).name()),
                est.p_sensitized,
                est.vectors
            );
        }
        ResponsePayload::MultiCycle {
            analytic,
            monte_carlo,
        } => {
            let _ = write!(
                out,
                ", \"op\": \"multi_cycle\", \"node\": \"{}\", \"cumulative\": [{}]",
                json_escape(circuit.node(analytic.site).name()),
                analytic
                    .cumulative
                    .iter()
                    .map(|p| format!("{p:.6}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            if let Some(mc) = monte_carlo {
                let _ = write!(
                    out,
                    ", \"mc_cumulative\": [{}], \"mc_runs\": {}, \"mc_stopped_by_rule\": {}",
                    mc.cumulative
                        .iter()
                        .map(|p| format!("{p:.6}"))
                        .collect::<Vec<_>>()
                        .join(", "),
                    mc.runs,
                    mc.stopped_by_rule
                );
            }
        }
    }
    out.push('}');
    out
}

fn error_json(line_no: usize, message: &str) -> String {
    format!(
        "{{\"line\": {line_no}, \"error\": \"{}\"}}",
        json_escape(message)
    )
}

fn service_config(args: &[String]) -> Result<SerServiceConfig, String> {
    let mut config = SerServiceConfig::default();
    if let Some(threads) = flag_value(args, "--threads") {
        config.threads = threads
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or_else(|| "bad --threads value (need a positive integer)".to_owned())?;
    }
    if let Some(sessions) = flag_value(args, "--sessions") {
        config.max_sessions = sessions
            .parse()
            .ok()
            .filter(|&n: &usize| n > 0)
            .ok_or_else(|| "bad --sessions value (need a positive integer)".to_owned())?;
    }
    Ok(config)
}

/// `batch`: parse the whole job file, submit it as one interleaved
/// batch, print one response line per job in file order.
fn cmd_batch(path: &str, config: SerServiceConfig) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let service = SerService::new(config);
    let mut cache = CircuitCache::new();
    // Parse every line first; a bad line fails the whole batch up front
    // (jobs may take minutes — better to reject early).
    let mut specs: Vec<(usize, JobSpec, Arc<Circuit>)> = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let spec = parse_job_line(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
        let circuit = cache
            .load(&spec.netlist)
            .map_err(|e| format!("line {}: {e}", line_no + 1))?;
        specs.push((line_no + 1, spec, circuit));
    }
    let jobs = specs
        .iter()
        .map(|(line_no, spec, circuit)| {
            let request = spec
                .to_request(circuit)
                .map_err(|e| format!("line {line_no}: {e}"))?;
            Ok((Arc::clone(circuit), request))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let responses = service.submit_batch(jobs);
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    for ((line_no, spec, circuit), response) in specs.iter().zip(responses) {
        let line = match response {
            Ok(r) => response_json(spec, circuit, &r),
            Err(e) => error_json(*line_no, &e.to_string()),
        };
        writeln!(w, "{line}").map_err(|e| e.to_string())?;
    }
    let stats = service.stats();
    eprintln!(
        "served {} jobs ({} warm hits, {} compiles, {} evictions, {} sessions cached; sweep cache {} hits / {} misses, {} cached)",
        specs.len(),
        stats.session_hits,
        stats.session_misses,
        stats.evictions,
        stats.sessions_cached,
        stats.sweep_cache_hits,
        stats.sweep_cache_misses,
        stats.sweep_responses_cached
    );
    Ok(())
}

/// `serve`: answer JSONL jobs line by line on stdin/stdout, holding
/// compiled sessions warm between requests until EOF.
fn cmd_serve(config: SerServiceConfig) -> Result<(), String> {
    let service = SerService::new(config);
    let mut cache = CircuitCache::new();
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut w = stdout.lock();
    for (line_no, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| e.to_string())?;
        if line.trim().is_empty() || line.trim_start().starts_with('#') {
            continue;
        }
        let answer = (|| -> Result<String, String> {
            let spec = parse_job_line(&line)?;
            let circuit = cache.load(&spec.netlist)?;
            let request = spec.to_request(&circuit)?;
            let response = service
                .submit(&circuit, request)
                .map_err(|e| e.to_string())?;
            Ok(response_json(&spec, &circuit, &response))
        })()
        .unwrap_or_else(|e| error_json(line_no + 1, &e));
        writeln!(w, "{answer}").map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
    }
    Ok(())
}

fn cmd_gen(name: &str, seed: u64, out: Option<&str>) -> Result<(), String> {
    let p = profile(name).ok_or_else(|| {
        format!("unknown profile `{name}` (try s953, s1196, ..., s38417, s298, s344, s386, s526)")
    })?;
    let c = synthesize(&p, seed);
    let text = write_bench(&c);
    match out {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("cannot write `{path}`: {e}"))?;
            eprintln!("wrote {} ({} nodes) to {path}", c.name(), c.len());
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn usage() -> String {
    "usage:\n  ser-cli info    <netlist>\n  ser-cli analyze <netlist> [--top N] [--threads N]\n  ser-cli epp     <netlist> <node>\n  ser-cli batch   <jobs.jsonl> [--threads N] [--sessions N]\n  ser-cli serve   [--threads N] [--sessions N]\n  ser-cli gen     <profile> [--seed S] [-o out.bench]\n  ser-cli convert <in.bench|in.v> <out.bench|out.v>"
        .to_owned()
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("info") => cmd_info(args.get(1).ok_or_else(usage)?),
        Some("analyze") => {
            let path = args.get(1).ok_or_else(usage)?;
            let top = flag_value(&args, "--top")
                .map(|v| v.parse().map_err(|_| "bad --top value".to_owned()))
                .transpose()?
                .unwrap_or(15);
            let threads = flag_value(&args, "--threads")
                .map(|v| {
                    v.parse()
                        .ok()
                        .filter(|&n: &usize| n > 0)
                        .ok_or_else(|| "bad --threads value (need a positive integer)".to_owned())
                })
                .transpose()?
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                });
            cmd_analyze(path, top, threads)
        }
        Some("epp") => {
            let path = args.get(1).ok_or_else(usage)?;
            let node = args.get(2).ok_or_else(usage)?;
            cmd_epp(path, node)
        }
        Some("batch") => {
            let path = args.get(1).ok_or_else(usage)?;
            cmd_batch(path, service_config(&args)?)
        }
        Some("serve") => cmd_serve(service_config(&args)?),
        Some("convert") => {
            let input = args.get(1).ok_or_else(usage)?;
            let output = args.get(2).ok_or_else(usage)?;
            cmd_convert(input, output)
        }
        Some("gen") => {
            let name = args.get(1).ok_or_else(usage)?;
            let seed = flag_value(&args, "--seed")
                .map(|v| v.parse().map_err(|_| "bad --seed value".to_owned()))
                .transpose()?
                .unwrap_or(1);
            let out = flag_value(&args, "-o");
            cmd_gen(name, seed, out.as_deref())
        }
        _ => Err(usage()),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
