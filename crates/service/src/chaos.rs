//! Deterministic fault injection for the wire layer.
//!
//! A [`ChaosSchedule`] describes, from a fixed seed, exactly how one
//! connection misbehaves: reads that end early or error out, writes
//! torn into byte-sized segments, a hard failure planted mid-frame,
//! optional injected delays. [`ChaosTransport`] applies a list of
//! schedules to successive connections of any inner [`Transport`]
//! (connections beyond the list pass through untouched), and
//! [`inject`] wraps a single [`Connection`] directly for in-memory
//! harnesses.
//!
//! Everything here is seeded and replayable: the same schedule against
//! the same request stream produces the same fault at the same byte.
//! That is what makes the chaos tests assertions, not lotteries — a
//! failing seed is a reproducer, and CI can pin a seed matrix.
//!
//! The harness never *adds* required behavior; it only takes away
//! guarantees the transport never promised (whole frames per write,
//! clean EOF). Anything it breaks was a real bug on a real socket.

use std::io::{self, Write};
use std::time::Duration;

use crate::protocol::{Connection, LineStream, Transport};

/// xorshift64* — tiny, seedable, and good enough to scatter fault
/// points; the suite is offline so there is no external RNG to reach
/// for, and determinism is the point.
#[derive(Debug, Clone)]
struct ChaosRng(u64);

impl ChaosRng {
    fn new(seed: u64) -> Self {
        // xorshift has a zero fixed point; nudge it off.
        ChaosRng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..n` (`n` ≥ 1).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// One connection's misfortunes, fully determined by its fields (the
/// `seed` drives only *where* split points land, never *whether* a
/// fault fires). The default schedule injects nothing.
#[derive(Debug, Clone, Default)]
pub struct ChaosSchedule {
    /// Seed for the write-splitting RNG.
    pub seed: u64,
    /// Report end-of-stream after this many request lines, as if the
    /// client closed its send half.
    pub disconnect_after_lines: Option<usize>,
    /// Fail the read with `ConnectionReset` after this many request
    /// lines, as if the peer vanished.
    pub read_error_after_lines: Option<usize>,
    /// Tear every reply write into 1–3-byte segments, exercising
    /// partial-write handling (and mid-UTF-8 flushes) downstream.
    pub split_writes: bool,
    /// Fail the write side with `BrokenPipe` after exactly this many
    /// reply bytes — a disconnect planted mid-frame.
    pub tear_write_after_bytes: Option<u64>,
    /// Sleep this long before roughly a quarter of write segments.
    /// Schedule realism only — no test may *depend* on a delay.
    pub write_delay: Option<Duration>,
}

impl ChaosSchedule {
    /// A fault-free schedule with the given split seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            ..ChaosSchedule::default()
        }
    }

    /// See [`disconnect_after_lines`](Self::disconnect_after_lines).
    #[must_use]
    pub fn disconnect_after_lines(mut self, lines: usize) -> Self {
        self.disconnect_after_lines = Some(lines);
        self
    }

    /// See [`read_error_after_lines`](Self::read_error_after_lines).
    #[must_use]
    pub fn read_error_after_lines(mut self, lines: usize) -> Self {
        self.read_error_after_lines = Some(lines);
        self
    }

    /// See [`split_writes`](Self::split_writes).
    #[must_use]
    pub fn split_writes(mut self) -> Self {
        self.split_writes = true;
        self
    }

    /// See [`tear_write_after_bytes`](Self::tear_write_after_bytes).
    #[must_use]
    pub fn tear_write_after_bytes(mut self, bytes: u64) -> Self {
        self.tear_write_after_bytes = Some(bytes);
        self
    }

    /// See [`write_delay`](Self::write_delay).
    #[must_use]
    pub fn write_delay(mut self, delay: Duration) -> Self {
        self.write_delay = Some(delay);
        self
    }
}

/// Wraps a [`Connection`]'s read and write halves with the faults of
/// `schedule`. The server must survive whatever comes out: close the
/// connection cleanly, release its permits, keep other connections'
/// replies bit-identical.
#[must_use]
pub fn inject(mut conn: Connection, schedule: &ChaosSchedule) -> Connection {
    let write = schedule.clone();
    conn.sink
        .wrap_writer(move |inner| Box::new(ChaosWriter::new(inner, &write)));
    conn.lines = Box::new(ChaosLines::new(conn.lines, schedule));
    conn
}

/// A [`Transport`] decorator: connection *i* is wrapped with schedule
/// *i*; connections past the end of the list pass through unfaulted
/// (the survivors whose replies must stay bit-identical).
pub struct ChaosTransport<T> {
    inner: T,
    schedules: Vec<ChaosSchedule>,
    accepted: usize,
}

impl<T: std::fmt::Debug> std::fmt::Debug for ChaosTransport<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosTransport")
            .field("inner", &self.inner)
            .field("schedules", &self.schedules)
            .field("accepted", &self.accepted)
            .finish()
    }
}

impl<T: Transport> ChaosTransport<T> {
    /// Decorates `inner`, faulting its first `schedules.len()`
    /// connections.
    #[must_use]
    pub fn new(inner: T, schedules: Vec<ChaosSchedule>) -> Self {
        ChaosTransport {
            inner,
            schedules,
            accepted: 0,
        }
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn accept(&mut self) -> io::Result<Option<Connection>> {
        let Some(conn) = self.inner.accept()? else {
            return Ok(None);
        };
        let faulted = match self.schedules.get(self.accepted) {
            Some(schedule) => inject(conn, schedule),
            None => conn,
        };
        self.accepted += 1;
        Ok(Some(faulted))
    }
}

/// The read-half fault: counts complete lines and then either reports
/// a clean end-of-stream or a reset, per the schedule.
pub struct ChaosLines {
    inner: Box<dyn LineStream>,
    lines: usize,
    disconnect_after: Option<usize>,
    error_after: Option<usize>,
}

impl std::fmt::Debug for ChaosLines {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosLines")
            .field("lines", &self.lines)
            .field("disconnect_after", &self.disconnect_after)
            .field("error_after", &self.error_after)
            .finish_non_exhaustive()
    }
}

impl ChaosLines {
    /// Wraps `inner` with the read faults of `schedule`.
    #[must_use]
    pub fn new(inner: Box<dyn LineStream>, schedule: &ChaosSchedule) -> Self {
        ChaosLines {
            inner,
            lines: 0,
            disconnect_after: schedule.disconnect_after_lines,
            error_after: schedule.read_error_after_lines,
        }
    }
}

impl LineStream for ChaosLines {
    fn next_line(&mut self) -> io::Result<Option<String>> {
        if let Some(limit) = self.error_after {
            if self.lines >= limit {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: injected read error",
                ));
            }
        }
        if let Some(limit) = self.disconnect_after {
            if self.lines >= limit {
                return Ok(None);
            }
        }
        let line = self.inner.next_line()?;
        if line.is_some() {
            self.lines += 1;
        }
        Ok(line)
    }
}

/// The write-half fault: forwards at most a few bytes per `write` call
/// when splitting (callers loop via `write_all`, so frames still
/// arrive — in shreds), and plants a hard `BrokenPipe` at an exact
/// byte offset when tearing.
pub struct ChaosWriter<W> {
    inner: W,
    rng: ChaosRng,
    split: bool,
    tear_after: Option<u64>,
    delay: Option<Duration>,
    written: u64,
}

impl<W> std::fmt::Debug for ChaosWriter<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosWriter")
            .field("split", &self.split)
            .field("tear_after", &self.tear_after)
            .field("written", &self.written)
            .finish_non_exhaustive()
    }
}

impl<W: Write> ChaosWriter<W> {
    /// Wraps `inner` with the write faults of `schedule`.
    #[must_use]
    pub fn new(inner: W, schedule: &ChaosSchedule) -> Self {
        ChaosWriter {
            inner,
            rng: ChaosRng::new(schedule.seed),
            split: schedule.split_writes,
            tear_after: schedule.tear_write_after_bytes,
            delay: schedule.write_delay,
            written: 0,
        }
    }
}

impl<W: Write> Write for ChaosWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let mut take = buf.len();
        if let Some(limit) = self.tear_after {
            let remaining = limit.saturating_sub(self.written);
            if remaining == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "chaos: connection torn mid-frame",
                ));
            }
            // Emit exactly up to the tear point, so the failure lands
            // mid-frame at a reproducible byte.
            take = take.min(remaining as usize);
        }
        if self.split {
            take = take.min(1 + self.rng.below(3) as usize);
        }
        if let Some(delay) = self.delay {
            if self.rng.below(4) == 0 {
                std::thread::sleep(delay);
            }
        }
        let sent = self.inner.write(&buf[..take])?;
        self.written += sent as u64;
        Ok(sent)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Script(Vec<String>);

    impl LineStream for Script {
        fn next_line(&mut self) -> io::Result<Option<String>> {
            if self.0.is_empty() {
                Ok(None)
            } else {
                Ok(Some(self.0.remove(0)))
            }
        }
    }

    fn lines(n: usize) -> Box<dyn LineStream> {
        Box::new(Script((0..n).map(|i| format!("line{i}")).collect()))
    }

    #[test]
    fn default_schedule_is_transparent() {
        let mut l = ChaosLines::new(lines(2), &ChaosSchedule::new(7));
        assert_eq!(l.next_line().unwrap().as_deref(), Some("line0"));
        assert_eq!(l.next_line().unwrap().as_deref(), Some("line1"));
        assert_eq!(l.next_line().unwrap(), None);

        let mut out = Vec::new();
        let mut w = ChaosWriter::new(&mut out, &ChaosSchedule::new(7));
        w.write_all(b"hello world").unwrap();
        assert_eq!(out, b"hello world");
    }

    #[test]
    fn disconnect_cuts_after_exactly_n_lines() {
        let schedule = ChaosSchedule::new(1).disconnect_after_lines(1);
        let mut l = ChaosLines::new(lines(5), &schedule);
        assert_eq!(l.next_line().unwrap().as_deref(), Some("line0"));
        assert_eq!(l.next_line().unwrap(), None);
    }

    #[test]
    fn read_error_fires_after_exactly_n_lines() {
        let schedule = ChaosSchedule::new(1).read_error_after_lines(2);
        let mut l = ChaosLines::new(lines(5), &schedule);
        assert!(l.next_line().unwrap().is_some());
        assert!(l.next_line().unwrap().is_some());
        let err = l.next_line().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn split_writes_deliver_every_byte_in_shreds() {
        let payload = b"frame with \xc3\xa9 multibyte content\n";
        let mut out = Vec::new();
        let mut w = ChaosWriter::new(&mut out, &ChaosSchedule::new(42).split_writes());
        // A single write call forwards at most 3 bytes...
        assert!(w.write(payload).unwrap() <= 3);
        // ...but write_all still lands the rest, byte-perfect.
        out.clear();
        let mut w = ChaosWriter::new(&mut out, &ChaosSchedule::new(42).split_writes());
        w.write_all(payload).unwrap();
        assert_eq!(out, payload);
    }

    #[test]
    fn split_schedule_is_deterministic_per_seed() {
        let shred = |seed: u64| -> Vec<usize> {
            let mut sizes = Vec::new();
            let mut out = Vec::new();
            let mut w = ChaosWriter::new(&mut out, &ChaosSchedule::new(seed).split_writes());
            let mut rest: &[u8] = b"0123456789abcdef0123456789abcdef";
            while !rest.is_empty() {
                let n = w.write(rest).unwrap();
                sizes.push(n);
                rest = &rest[n..];
            }
            sizes
        };
        assert_eq!(shred(9), shred(9));
        assert_ne!(shred(9), shred(10));
    }

    #[test]
    fn tear_lands_at_the_exact_byte() {
        let schedule = ChaosSchedule::new(3).tear_write_after_bytes(5);
        let mut w = ChaosWriter::new(Vec::new(), &schedule);
        let err = w.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.inner, b"01234");
        // And it keeps failing: the connection is gone.
        assert!(w.write(b"more").is_err());
    }
}
