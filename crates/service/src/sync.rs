//! Poison-tolerant locking for the daemon's shared state.
//!
//! The server runs one thread per connection over engine-wide shared
//! state (session caches, the inflight gate, cancel registries, frame
//! sinks). `std`'s mutexes poison when a holder panics, and the
//! idiomatic `.lock().expect(...)` turns one panicked thread into a
//! cascading outage: every *other* connection that touches the same
//! lock then panics too, and a daemon serving millions of users is
//! down because of one bad request.
//!
//! Recovery is the right call for every lock in this crate because the
//! guarded state is self-healing by construction:
//!
//! - the caches (sessions, sweep responses, netlists, what-if stacks)
//!   hold immutable `Arc`ed values behind an LRU index — a torn update
//!   is at worst a missing or stale *entry*, re-derivable on the next
//!   request, never a torn *value*;
//! - the inflight gate and cancel registry are RAII-guarded counters
//!   whose `Drop` half runs during the panicking thread's unwind, so
//!   the count is consistent by the time anyone else can observe it;
//! - the frame sink marks itself dead on first write error anyway — a
//!   partial frame kills that one connection, not the writer lock.
//!
//! `ser-lint`'s `no-panic-path` rule forbids `unwrap`/`expect` in the
//! request-path modules; these helpers are how those modules take
//! locks.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Locks `m`, recovering the guard from a poisoned mutex instead of
/// panicking. See the module docs for why recovery is sound for every
/// lock in this crate.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// [`Condvar::wait`] with the same poison recovery as [`lock_clean`].
pub(crate) fn wait_clean<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    match cv.wait(guard) {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    /// A panic while holding the lock must not wedge later lockers —
    /// the regression shape behind the whole module.
    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7usize));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.lock().is_err(), "lock should be poisoned");
        assert_eq!(*lock_clean(&m), 7);
        *lock_clean(&m) = 9;
        assert_eq!(*lock_clean(&m), 9);
    }
}
