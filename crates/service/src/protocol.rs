//! The versioned wire protocol: envelopes, frames, and the
//! transport-agnostic request engine.
//!
//! PR 3's job dialect was a flat JSONL object bound to stdin/stdout —
//! no request ids, no version field, no way to express `set_inputs`,
//! and errors were bare strings. This module redesigns the service's
//! public protocol layer from the ground up:
//!
//! - **Envelopes** — every request is one JSON object line carrying a
//!   protocol version (`"v": 2`), an optional client-chosen request
//!   id (echoed on every frame of the reply), a typed `"op"`, and
//!   op-specific parameters that may be **nested containers** (an
//!   input-distribution object for `set_inputs`, a simulation config
//!   for `multi_cycle`, a site array for subset sweeps).
//! - **Frames** — a reply is a sequence of framed lines: zero or more
//!   `progress` frames (sweep part completions; sequential
//!   Monte-Carlo trial counters at doubling thresholds), zero or more
//!   `chunk` frames (a sweep's per-site values, paged), then exactly
//!   one `result` **or** `error` frame. Long-running Monte-Carlo jobs
//!   are why frames exist at all — Mendo's sequential estimator has
//!   data-dependent runtime, so the wire format is designed for
//!   partial responses rather than having them bolted on.
//! - **Structured errors** — every failure is a `{code, message}`
//!   object with a closed set of [`ErrorCode`]s, not a prose string.
//! - **Transport decoupling** — the engine speaks through the
//!   [`Transport`] trait ([`StdioTransport`] here,
//!   [`TcpTransport`](crate::net::TcpTransport) in `net`), so the
//!   protocol has no opinion about sockets, and progress frames can be
//!   written from executor workers mid-request through the shared,
//!   lock-protected [`FrameSink`].
//! - **v1 shim** — a line with no `"v"` field is the old dialect; it
//!   parses through [`crate::jobs`] and is answered in the old shape,
//!   so recorded PR 3 job lines keep working against the new server.
//!
//! Numbers in v2 frames render in shortest round-trip form, so a
//! client parsing a `result` frame recovers **bit-identical** `f64`s
//! to an in-process [`SerService::submit`] call — asserted over real
//! TCP in `tests/net.rs`.

use std::collections::HashMap;
use std::io::{self, BufRead as _, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ser_epp::{Edit, PolarityMode, SweepResults, WhatIfOutcome};
use ser_netlist::{
    parse_bench, parse_verilog, CancelCause, CancelToken, Circuit, GateKind, NodeId,
};
use ser_sp::InputProbs;

use crate::jobs::{self, JobSpec};
use crate::json::{self, fmt_f64, json_escape, JsonValue};
use crate::request::{
    MonteCarloRequest, MultiCycleMcRequest, MultiCycleRequest, Request, Response, ResponsePayload,
    ServiceError, SiteRequest, SweepRequest,
};
use crate::service::{Progress, ProgressFn, SerService};
use crate::sync::{lock_clean, wait_clean};

/// The protocol version this engine speaks. Version 1 is the
/// unversioned flat dialect, recognized by the *absence* of a `"v"`
/// field and served through the compatibility shim.
pub const PROTOCOL_VERSION: u64 = 2;

/// Every `"op"` spelling [`parse_wire_line`] accepts in a v2 envelope,
/// v1-compat aliases included. This table is load-bearing twice over:
/// `ser-lint`'s `wire-doc-sync` rule reads it to check that each op is
/// documented in README's wire-protocol section, and the protocol
/// tests parse a minimal envelope per entry to prove the table matches
/// what `parse_v2` actually dispatches (so it cannot drift from the
/// `match`).
pub const WIRE_OPS: &[&str] = &[
    "hello",
    "stats",
    "set_inputs",
    "sweep",
    "site",
    "epp",
    "monte_carlo",
    "mc",
    "multi_cycle",
    "whatif",
    "whatif_revert",
    "cancel",
    "batch",
];

// ---------------------------------------------------------------------
// Structured errors
// ---------------------------------------------------------------------

/// The closed set of protocol error codes. Codes are the machine-
/// readable half of every error object; messages are for humans and
/// carry no stability guarantee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not well-formed JSON (or is truncated).
    Parse,
    /// The envelope names a protocol version this server cannot serve.
    UnsupportedVersion,
    /// The envelope's `op` is not one this server knows.
    UnknownOp,
    /// A parameter is missing, mistyped, out of range, or not read by
    /// the op (unread fields fail loudly rather than silently).
    BadRequest,
    /// A named netlist file or circuit node does not exist.
    NotFound,
    /// Session compilation failed (cyclic circuit, SP divergence).
    Compile,
    /// The simulation leg failed structurally.
    Simulation,
    /// The request asked for more work than the service's configured
    /// ceiling allows (`max_vectors` / `max_cycles` / `max_runs`).
    CapExceeded,
    /// The connection has not presented the server's shared secret.
    Unauthorized,
    /// The connection exhausted its per-client request quota.
    QuotaExceeded,
    /// The request was aborted by an explicit `cancel` op before it
    /// completed. Partial results were dropped; no cache was touched.
    Cancelled,
    /// The request's `deadline_ms` passed before it completed. Same
    /// clean-abort contract as `cancelled`.
    DeadlineExceeded,
    /// The server failed internally (I/O mid-request, a worker died).
    Internal,
}

impl ErrorCode {
    /// The wire spelling of this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownOp => "unknown_op",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::NotFound => "not_found",
            ErrorCode::Compile => "compile",
            ErrorCode::Simulation => "simulation",
            ErrorCode::CapExceeded => "cap_exceeded",
            ErrorCode::Unauthorized => "unauthorized",
            ErrorCode::QuotaExceeded => "quota_exceeded",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::Internal => "internal",
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A structured wire error: `{code, message}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Creates an error.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            message: message.into(),
        }
    }

    /// Renders the error *object* (`{"code": ..., "message": ...}`) —
    /// the payload both dialects embed in their error lines.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "{{\"code\": \"{}\", \"message\": \"{}\"}}",
            self.code,
            json_escape(&self.message)
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl From<&ServiceError> for WireError {
    fn from(e: &ServiceError) -> Self {
        let code = match e {
            ServiceError::Compile(_) => ErrorCode::Compile,
            ServiceError::SiteOutOfRange { .. } => ErrorCode::NotFound,
            ServiceError::InvalidRequest(_) => ErrorCode::BadRequest,
            ServiceError::CapExceeded { .. } => ErrorCode::CapExceeded,
            ServiceError::Simulation(_) => ErrorCode::Simulation,
            ServiceError::Cancelled(CancelCause::Cancelled) => ErrorCode::Cancelled,
            ServiceError::Cancelled(CancelCause::DeadlineExceeded) => ErrorCode::DeadlineExceeded,
            ServiceError::Internal(_) => ErrorCode::Internal,
        };
        WireError::new(code, e.to_string())
    }
}

impl From<ServiceError> for WireError {
    fn from(e: ServiceError) -> Self {
        WireError::from(&e)
    }
}

// ---------------------------------------------------------------------
// Envelope parsing
// ---------------------------------------------------------------------

/// A parsed request line: a versioned envelope, or a v1 job line
/// recognized by the absence of a `"v"` field.
#[derive(Debug, Clone, PartialEq)]
pub enum ParsedLine {
    /// A v2 envelope.
    V2(WireRequest),
    /// An old-dialect job line, to be served through the shim.
    V1(JobSpec),
}

/// One parsed v2 envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// The client's request id, echoed on every frame of the reply —
    /// and, while the request is in flight, the handle a concurrent
    /// `cancel` op (from any connection) targets.
    pub id: Option<String>,
    /// The operation.
    pub op: WireOp,
    /// Server-side deadline, milliseconds from receipt. Honored on
    /// every op: once it passes, the request aborts at its next
    /// cooperative checkpoint with a `deadline_exceeded` error frame.
    pub deadline_ms: Option<u64>,
}

/// A v2 operation with its parameters (node/input names unresolved —
/// resolution against the loaded circuit happens at dispatch).
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Connection handshake; carries the shared secret when the server
    /// requires one.
    Hello {
        /// The shared secret, if the client presents one.
        token: Option<String>,
    },
    /// Service counters (sessions, caches) — closes the ROADMAP's
    /// "expose `stats` on the wire" item.
    Stats,
    /// Re-derive a circuit's input distribution (the wire form of
    /// [`SerService::set_inputs`]).
    SetInputs(SetInputsOp),
    /// Whole-circuit (or subset) analytical sweep.
    Sweep(SweepOp),
    /// Single-site analytical EPP.
    Site(SiteOp),
    /// Single-cycle Monte-Carlo; streams progress when sequential.
    MonteCarlo(MonteCarloOp),
    /// Multi-cycle frame expansion with an optional nested simulation
    /// config.
    MultiCycle(MultiCycleOp),
    /// Apply one incremental edit to a netlist's warm what-if stack
    /// and stream the dirty-region per-site deltas.
    WhatIf(WhatIfOp),
    /// Pop the most recent edit of a netlist's what-if stack.
    WhatIfRevert(WhatIfRevertOp),
    /// Trip the cancel token of an in-flight request by its client id.
    /// Races cleanly with completion: a `cancel` that arrives after the
    /// target's result frame reports `found: false` and changes
    /// nothing.
    Cancel(CancelOp),
    /// A nested array of analysis jobs served as one envelope: every
    /// job's executor parts interleave on the shared workers, each job
    /// answers with its own id-echoed frames, and a final batch result
    /// frame summarizes the outcome.
    Batch(BatchOp),
}

/// Parameters of a v2 `cancel`.
#[derive(Debug, Clone, PartialEq)]
pub struct CancelOp {
    /// The client-chosen `id` of the request to cancel.
    pub target: String,
}

/// Parameters of a v2 `batch`.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOp {
    /// The analysis jobs (sweep / site / monte_carlo / multi_cycle
    /// only), each a nested envelope without a `"v"` field. A job's
    /// `id` scopes its frames and its cancel handle; the batch
    /// envelope's `id` cancels every job at once.
    pub jobs: Vec<WireRequest>,
}

impl BatchOp {
    /// Most jobs one `batch` envelope may carry; larger workloads
    /// split across envelopes (the executor interleaves them anyway).
    pub const MAX_JOBS: usize = 256;
}

/// Parameters of a v2 `sweep`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepOp {
    /// Netlist path.
    pub netlist: String,
    /// Explicit site-name list (`None` = every node).
    pub sites: Option<Vec<String>>,
    /// Polarity handling (default tracked — the paper's method).
    pub polarity: PolarityMode,
    /// Ranking length in the result frame (default 5).
    pub top: Option<usize>,
    /// When set, page every site's `p_sensitized` into `chunk` frames
    /// of this many sites before the result frame.
    pub chunk_sites: Option<usize>,
    /// Emit `progress` frames as sweep parts complete (default off —
    /// sweeps are usually fast; opt in for huge circuits).
    pub progress: bool,
}

/// Parameters of a v2 `site`.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteOp {
    /// Netlist path.
    pub netlist: String,
    /// Site name.
    pub node: String,
}

/// Parameters of a v2 `monte_carlo`.
#[derive(Debug, Clone, PartialEq)]
pub struct MonteCarloOp {
    /// Netlist path.
    pub netlist: String,
    /// Site name.
    pub node: String,
    /// Vector budget (fixed count) or cap (sequential rule).
    pub vectors: Option<u64>,
    /// Mendo normalized-error target; switches to the sequential rule.
    pub target_error: Option<f64>,
    /// PRNG seed.
    pub seed: Option<u64>,
    /// Stream `progress` frames while a sequential run is under way
    /// (default on; meaningless without `target_error`).
    pub progress: bool,
}

/// Parameters of a v2 `multi_cycle`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCycleOp {
    /// Netlist path.
    pub netlist: String,
    /// Site name.
    pub node: String,
    /// Clock cycles to follow the error through (≥ 1).
    pub cycles: usize,
    /// The nested simulation-leg config, when requested.
    pub monte_carlo: Option<MultiCycleMcOp>,
    /// Stream `progress` frames while a sequential simulation leg is
    /// under way (default on; meaningless without
    /// `monte_carlo.target_error`) — the same doubling-threshold run
    /// counters the single-cycle `monte_carlo` op reports.
    pub progress: bool,
}

/// The nested `"monte_carlo"` object of a v2 `multi_cycle`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCycleMcOp {
    /// Fixed run count, or the sequential rule's cap.
    pub runs: u64,
    /// Mendo normalized-error target.
    pub target_error: Option<f64>,
    /// PRNG seed.
    pub seed: Option<u64>,
}

/// Parameters of a v2 `whatif` — one incremental edit against the
/// netlist's warm what-if stack. Node names resolve against the
/// stack's **current** (possibly already-edited) circuit, so a client
/// can TMR a replica it created one edit ago.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfOp {
    /// Netlist path (names the *base* circuit; the stack is keyed by
    /// its structural hash).
    pub netlist: String,
    /// The edit to apply.
    pub edit: WhatIfEditOp,
    /// Per-site deltas per `chunk` frame (default 256).
    pub chunk_sites: usize,
}

/// The `"edit"` of a v2 `whatif`, discriminated by the envelope's
/// `"edit"` string.
#[derive(Debug, Clone, PartialEq)]
pub enum WhatIfEditOp {
    /// `"edit": "tmr"` — protect `node` with triple modular redundancy.
    Tmr {
        /// Gate name, resolved against the stack's current circuit.
        node: String,
    },
    /// `"edit": "swap_kind"` — replace `node`'s gate function in place.
    SwapKind {
        /// Gate name, resolved against the stack's current circuit.
        node: String,
        /// The replacement function.
        kind: GateKind,
    },
    /// `"edit": "set_inputs"` — a new input distribution (same nested
    /// `"inputs"` object as the `set_inputs` op).
    SetInputs {
        /// Probability for inputs without an override.
        default_p: f64,
        /// Per-input overrides, by node name.
        overrides: Vec<(String, f64)>,
    },
}

impl WhatIfEditOp {
    /// The wire spelling echoed in the result frame.
    #[must_use]
    pub fn kind_str(&self) -> &'static str {
        match self {
            WhatIfEditOp::Tmr { .. } => "tmr",
            WhatIfEditOp::SwapKind { .. } => "swap_kind",
            WhatIfEditOp::SetInputs { .. } => "set_inputs",
        }
    }
}

/// Parameters of a v2 `whatif_revert`.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfRevertOp {
    /// Netlist path (names the base circuit whose stack to pop).
    pub netlist: String,
}

/// Parameters of a v2 `set_inputs`.
#[derive(Debug, Clone, PartialEq)]
pub struct SetInputsOp {
    /// Netlist path.
    pub netlist: String,
    /// Probability for inputs without an override (default 0.5).
    pub default_p: f64,
    /// Per-input overrides, by node name.
    pub overrides: Vec<(String, f64)>,
}

/// Parses one request line into a v2 envelope or a v1 job spec.
///
/// # Errors
///
/// Returns a structured [`WireError`]: `parse` for malformed JSON,
/// `unsupported_version` for a `"v"` this server cannot serve,
/// `unknown_op` / `bad_request` for envelope-level problems.
pub fn parse_wire_line(line: &str) -> Result<ParsedLine, WireError> {
    let pairs = json::parse_object(line).map_err(|e| WireError::new(ErrorCode::Parse, e))?;
    let Some(version) = pairs.iter().find(|(k, _)| k == "v").map(|(_, v)| v) else {
        // No version field: the v1 dialect. Flatness is enforced the
        // way PR 3 enforced it (one shared rule in `jobs`).
        return jobs::reject_nested(&pairs)
            .and_then(|()| jobs::spec_from_pairs(pairs))
            .map(ParsedLine::V1)
            .map_err(|e| WireError::new(ErrorCode::BadRequest, e));
    };
    match version.as_count() {
        Some(v) if v == PROTOCOL_VERSION => {}
        Some(1) => {
            return Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                "protocol v1 lines are unversioned — drop the \"v\" field to use the shim",
            ))
        }
        Some(v) => {
            return Err(WireError::new(
                ErrorCode::UnsupportedVersion,
                format!("this server speaks v{PROTOCOL_VERSION} (got v{v})"),
            ))
        }
        None => {
            return Err(WireError::new(
                ErrorCode::BadRequest,
                format!("\"v\" must be an integer, got {}", version.type_name()),
            ))
        }
    }
    parse_v2(pairs).map(ParsedLine::V2)
}

/// Field cursor over an envelope's pairs: every field must be taken by
/// the op's parser, or the envelope is rejected — the v1 dialect's
/// "unknown keys fail loudly" contract, kept under v2.
struct Fields {
    pairs: Vec<(String, Option<JsonValue>)>,
}

impl Fields {
    fn new(pairs: Vec<(String, JsonValue)>) -> Self {
        Fields {
            pairs: pairs.into_iter().map(|(k, v)| (k, Some(v))).collect(),
        }
    }

    fn take(&mut self, key: &str) -> Option<JsonValue> {
        self.pairs
            .iter_mut()
            .find(|(k, v)| k == key && v.is_some())
            .and_then(|(_, v)| v.take())
    }

    fn take_str(&mut self, key: &str) -> Result<Option<String>, WireError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Str(s)) => Ok(Some(s)),
            Some(other) => Err(bad(format!(
                "`{key}` must be a string, got {}",
                other.type_name()
            ))),
        }
    }

    fn need_str(&mut self, key: &str, op: &str) -> Result<String, WireError> {
        self.take_str(key)?
            .ok_or_else(|| bad(format!("`{key}` is required for op `{op}`")))
    }

    fn take_count(&mut self, key: &str) -> Result<Option<u64>, WireError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v.as_count().map(Some).ok_or_else(|| {
                bad(format!(
                    "`{key}` must be a non-negative integer, got {}",
                    v.type_name()
                ))
            }),
        }
    }

    fn take_f64(&mut self, key: &str) -> Result<Option<f64>, WireError> {
        match self.take(key) {
            None => Ok(None),
            Some(JsonValue::Num(n)) => Ok(Some(n)),
            Some(JsonValue::Null) => Ok(None),
            Some(other) => Err(bad(format!(
                "`{key}` must be a number, got {}",
                other.type_name()
            ))),
        }
    }

    fn take_bool(&mut self, key: &str, default: bool) -> Result<bool, WireError> {
        match self.take(key) {
            None => Ok(default),
            Some(JsonValue::Bool(b)) => Ok(b),
            Some(other) => Err(bad(format!(
                "`{key}` must be a boolean, got {}",
                other.type_name()
            ))),
        }
    }

    /// Every key must have been taken; leftovers fail loudly.
    fn finish(self, op: &str) -> Result<(), WireError> {
        match self.pairs.iter().find(|(_, v)| v.is_some()) {
            None => Ok(()),
            Some((key, _)) => Err(bad(format!("`{key}` is not read by op `{op}`"))),
        }
    }
}

fn bad(message: impl Into<String>) -> WireError {
    WireError::new(ErrorCode::BadRequest, message)
}

fn parse_v2(pairs: Vec<(String, JsonValue)>) -> Result<WireRequest, WireError> {
    let mut fields = Fields::new(pairs);
    let _ = fields.take("v");
    let id = fields.take_str("id")?;
    let deadline_ms = fields.take_count("deadline_ms")?;
    let op_name = fields.need_str("op", "<envelope>")?;
    let op = match op_name.as_str() {
        "hello" => WireOp::Hello {
            token: fields.take_str("token")?,
        },
        "stats" => WireOp::Stats,
        "set_inputs" => {
            let netlist = fields.need_str("netlist", "set_inputs")?;
            let (default_p, overrides) = parse_inputs_object(fields.take("inputs"))?;
            WireOp::SetInputs(SetInputsOp {
                netlist,
                default_p,
                overrides,
            })
        }
        "sweep" => {
            let netlist = fields.need_str("netlist", "sweep")?;
            let sites = match fields.take("sites") {
                None => None,
                Some(JsonValue::Arr(items)) => {
                    let mut names = Vec::with_capacity(items.len());
                    for item in items {
                        match item {
                            JsonValue::Str(name) => names.push(name),
                            other => {
                                return Err(bad(format!(
                                    "`sites` entries must be node-name strings, got {}",
                                    other.type_name()
                                )))
                            }
                        }
                    }
                    if names.is_empty() {
                        return Err(bad("`sites` must not be empty (omit it for all nodes)"));
                    }
                    Some(names)
                }
                Some(other) => {
                    return Err(bad(format!(
                        "`sites` must be an array, got {}",
                        other.type_name()
                    )))
                }
            };
            let polarity = match fields.take_str("polarity")?.as_deref() {
                None | Some("tracked") => PolarityMode::Tracked,
                Some("merged") => PolarityMode::Merged,
                Some(other) => {
                    return Err(bad(format!(
                        "`polarity` must be \"tracked\" or \"merged\", got \"{other}\""
                    )))
                }
            };
            let chunk_sites = fields.take_count("chunk_sites")?.map(|n| n as usize);
            if chunk_sites == Some(0) {
                return Err(bad("`chunk_sites` must be ≥ 1"));
            }
            WireOp::Sweep(SweepOp {
                netlist,
                sites,
                polarity,
                top: fields.take_count("top")?.map(|n| n as usize),
                chunk_sites,
                progress: fields.take_bool("progress", false)?,
            })
        }
        "site" | "epp" => WireOp::Site(SiteOp {
            netlist: fields.need_str("netlist", "site")?,
            node: fields.need_str("node", "site")?,
        }),
        "monte_carlo" | "mc" => WireOp::MonteCarlo(MonteCarloOp {
            netlist: fields.need_str("netlist", "monte_carlo")?,
            node: fields.need_str("node", "monte_carlo")?,
            vectors: fields.take_count("vectors")?,
            target_error: fields.take_f64("target_error")?,
            seed: fields.take_count("seed")?,
            progress: fields.take_bool("progress", true)?,
        }),
        "multi_cycle" => {
            let netlist = fields.need_str("netlist", "multi_cycle")?;
            let node = fields.need_str("node", "multi_cycle")?;
            let cycles = fields
                .take_count("cycles")?
                .ok_or_else(|| bad("`cycles` is required for multi_cycle"))?
                as usize;
            let monte_carlo = match fields.take("monte_carlo") {
                None | Some(JsonValue::Null) => None,
                Some(JsonValue::Obj(inner)) => {
                    let mut mc = Fields::new(inner);
                    let parsed = MultiCycleMcOp {
                        runs: mc
                            .take_count("runs")?
                            .ok_or_else(|| bad("`monte_carlo.runs` is required"))?,
                        target_error: mc.take_f64("target_error")?,
                        seed: mc.take_count("seed")?,
                    };
                    mc.finish("multi_cycle.monte_carlo")?;
                    Some(parsed)
                }
                Some(other) => {
                    return Err(bad(format!(
                        "`monte_carlo` must be an object, got {}",
                        other.type_name()
                    )))
                }
            };
            WireOp::MultiCycle(MultiCycleOp {
                netlist,
                node,
                cycles,
                monte_carlo,
                progress: fields.take_bool("progress", true)?,
            })
        }
        "whatif" => {
            let netlist = fields.need_str("netlist", "whatif")?;
            let edit = match fields.need_str("edit", "whatif")?.as_str() {
                "tmr" => WhatIfEditOp::Tmr {
                    node: fields.need_str("node", "whatif")?,
                },
                "swap_kind" => WhatIfEditOp::SwapKind {
                    node: fields.need_str("node", "whatif")?,
                    kind: parse_gate_kind(&fields.need_str("kind", "whatif")?)?,
                },
                "set_inputs" => {
                    let (default_p, overrides) = parse_inputs_object(fields.take("inputs"))?;
                    WhatIfEditOp::SetInputs {
                        default_p,
                        overrides,
                    }
                }
                other => {
                    return Err(bad(format!(
                        "`edit` must be \"tmr\", \"swap_kind\" or \"set_inputs\", got \"{other}\""
                    )))
                }
            };
            let chunk_sites = fields.take_count("chunk_sites")?.unwrap_or(256) as usize;
            if chunk_sites == 0 {
                return Err(bad("`chunk_sites` must be ≥ 1"));
            }
            WireOp::WhatIf(WhatIfOp {
                netlist,
                edit,
                chunk_sites,
            })
        }
        "whatif_revert" => WireOp::WhatIfRevert(WhatIfRevertOp {
            netlist: fields.need_str("netlist", "whatif_revert")?,
        }),
        "cancel" => WireOp::Cancel(CancelOp {
            target: fields.need_str("target", "cancel")?,
        }),
        "batch" => {
            let items = match fields.take("jobs") {
                Some(JsonValue::Arr(items)) => items,
                Some(other) => {
                    return Err(bad(format!(
                        "`jobs` must be an array, got {}",
                        other.type_name()
                    )))
                }
                None => return Err(bad("`jobs` is required for op `batch`")),
            };
            if items.is_empty() {
                return Err(bad("`jobs` must not be empty"));
            }
            if items.len() > BatchOp::MAX_JOBS {
                return Err(bad(format!(
                    "`jobs` is capped at {} per batch envelope",
                    BatchOp::MAX_JOBS
                )));
            }
            let mut jobs = Vec::with_capacity(items.len());
            for (idx, item) in items.into_iter().enumerate() {
                let pairs = match item {
                    JsonValue::Obj(pairs) => pairs,
                    other => {
                        return Err(bad(format!(
                            "`jobs[{idx}]` must be an object, got {}",
                            other.type_name()
                        )))
                    }
                };
                let job =
                    parse_v2(pairs).map_err(|e| bad(format!("`jobs[{idx}]`: {}", e.message)))?;
                match job.op {
                    WireOp::Sweep(_)
                    | WireOp::Site(_)
                    | WireOp::MonteCarlo(_)
                    | WireOp::MultiCycle(_) => {}
                    _ => {
                        return Err(bad(format!(
                            "`jobs[{idx}]` must be a sweep/site/monte_carlo/multi_cycle job"
                        )))
                    }
                }
                jobs.push(job);
            }
            WireOp::Batch(BatchOp { jobs })
        }
        other => {
            return Err(WireError::new(
                ErrorCode::UnknownOp,
                format!("unknown op `{other}`"),
            ))
        }
    };
    fields.finish(&op_name)?;
    Ok(WireRequest {
        id,
        op,
        deadline_ms,
    })
}

/// Parses a `whatif` `"kind"` string into the replacement gate
/// function — logic kinds only, because a swap to `input`/`dff`/const
/// is not a function change but a structural rewrite the what-if
/// engine does not model.
fn parse_gate_kind(name: &str) -> Result<GateKind, WireError> {
    match name {
        "and" => Ok(GateKind::And),
        "nand" => Ok(GateKind::Nand),
        "or" => Ok(GateKind::Or),
        "nor" => Ok(GateKind::Nor),
        "not" => Ok(GateKind::Not),
        "buf" => Ok(GateKind::Buf),
        "xor" => Ok(GateKind::Xor),
        "xnor" => Ok(GateKind::Xnor),
        other => Err(bad(format!(
            "`kind` must be a logic gate (and/nand/or/nor/not/buf/xor/xnor), got \"{other}\""
        ))),
    }
}

/// Parses a `set_inputs` `"inputs"` object:
/// `{"default": p, "overrides": {"name": p, ...}}` (both parts
/// optional). Probabilities are validated here so a bad request is a
/// structured error, not a panic deep in `InputProbs`.
fn parse_inputs_object(value: Option<JsonValue>) -> Result<(f64, Vec<(String, f64)>), WireError> {
    let check = |what: &str, p: f64| -> Result<f64, WireError> {
        if p.is_finite() && (0.0..=1.0).contains(&p) {
            Ok(p)
        } else {
            Err(bad(format!("{what} probability {p} outside [0, 1]")))
        }
    };
    match value {
        None => Ok((0.5, Vec::new())),
        Some(JsonValue::Obj(inner)) => {
            let mut fields = Fields::new(inner);
            let default_p = match fields.take_f64("default")? {
                Some(p) => check("`inputs.default`", p)?,
                None => 0.5,
            };
            let overrides = match fields.take("overrides") {
                None => Vec::new(),
                Some(JsonValue::Obj(pairs)) => {
                    let mut out = Vec::with_capacity(pairs.len());
                    for (name, v) in pairs {
                        let p = v.as_f64().ok_or_else(|| {
                            bad(format!(
                                "`inputs.overrides.{name}` must be a number, got {}",
                                v.type_name()
                            ))
                        })?;
                        out.push((name, check("override", p)?));
                    }
                    out
                }
                Some(other) => {
                    return Err(bad(format!(
                        "`inputs.overrides` must be an object, got {}",
                        other.type_name()
                    )))
                }
            };
            fields.finish("set_inputs.inputs")?;
            Ok((default_p, overrides))
        }
        Some(other) => Err(bad(format!(
            "`inputs` must be an object, got {}",
            other.type_name()
        ))),
    }
}

// ---------------------------------------------------------------------
// Frame rendering
// ---------------------------------------------------------------------

/// `{"v": 2, "id": ..., "frame": "<kind>"` — every v2 frame's opening.
fn frame_head(kind: &str, id: Option<&str>) -> String {
    match id {
        Some(id) => format!(
            "{{\"v\": {PROTOCOL_VERSION}, \"id\": \"{}\", \"frame\": \"{kind}\"",
            json_escape(id)
        ),
        None => format!("{{\"v\": {PROTOCOL_VERSION}, \"id\": null, \"frame\": \"{kind}\""),
    }
}

/// Renders a v2 error frame.
#[must_use]
pub fn render_error_frame(id: Option<&str>, error: &WireError) -> String {
    format!(
        "{}, \"error\": {}}}",
        frame_head("error", id),
        error.render()
    )
}

/// Renders a v2 progress frame for a service [`Progress`] event.
#[must_use]
pub fn render_progress_frame(id: Option<&str>, progress: &Progress) -> String {
    let head = frame_head("progress", id);
    match progress {
        Progress::Sweep {
            sites_done,
            sites_total,
        } => format!(
            "{head}, \"op\": \"sweep\", \"sites_done\": {sites_done}, \"sites_total\": {sites_total}}}"
        ),
        Progress::MonteCarlo { vectors, sensitized } => format!(
            "{head}, \"op\": \"monte_carlo\", \"vectors\": {vectors}, \"sensitized\": {sensitized}, \"interim_p\": {}}}",
            fmt_f64(*sensitized as f64 / *vectors as f64)
        ),
    }
}

/// Formats one probability for the wire: v1 keeps its historical
/// 6-decimal form; v2 uses shortest round-trip (bit-identical on
/// parse).
fn fmt_prob(p: f64, full_precision: bool) -> String {
    if full_precision {
        fmt_f64(p)
    } else {
        format!("{p:.6}")
    }
}

/// Renders a served [`Response`]'s meta + payload as the *fields* of a
/// response object (no surrounding braces): both dialects share this —
/// the v1 line wraps it in `{}`, the v2 `result` frame prefixes the
/// envelope head. `top` caps a sweep's ranking (`None` = 5);
/// `full_precision` selects the v2 float form.
#[must_use]
pub fn response_fields(
    top: Option<usize>,
    circuit: &Circuit,
    response: &Response,
    full_precision: bool,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "\"circuit\": \"{}\", \"netlist_hash\": \"{:016x}\", \"warm\": {}, \"wall_us\": {}",
        json_escape(&response.meta.circuit),
        response.meta.netlist_hash,
        response.meta.warm_session,
        response.meta.wall.as_micros()
    );
    match &response.payload {
        ResponsePayload::Sweep(sweep) => {
            let total: f64 = sweep.p_sensitized().iter().sum();
            let _ = write!(
                out,
                ", \"op\": \"sweep\", \"nodes\": {}, \"total_p_sensitized\": {}",
                sweep.len(),
                fmt_prob(total, full_precision)
            );
            let top = top.unwrap_or(5);
            if top > 0 {
                let mut ranked: Vec<usize> = (0..sweep.len()).collect();
                ranked
                    .sort_by(|&a, &b| sweep.p_sensitized()[b].total_cmp(&sweep.p_sensitized()[a]));
                out.push_str(", \"top\": [");
                for (i, &pos) in ranked.iter().take(top).enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let site = sweep.get(pos);
                    let _ = write!(
                        out,
                        "{{\"node\": \"{}\", \"p_sensitized\": {}}}",
                        json_escape(circuit.node(site.site()).name()),
                        fmt_prob(site.p_sensitized(), full_precision)
                    );
                }
                out.push(']');
            }
        }
        ResponsePayload::Site(site) => {
            let _ = write!(
                out,
                ", \"op\": \"site\", \"node\": \"{}\", \"p_sensitized\": {}, \"on_path_gates\": {}",
                json_escape(circuit.node(site.site()).name()),
                fmt_prob(site.p_sensitized(), full_precision),
                site.on_path_gates()
            );
        }
        ResponsePayload::MonteCarlo(est) => {
            let _ = write!(
                out,
                ", \"op\": \"monte_carlo\", \"node\": \"{}\", \"p_sensitized\": {}, \"vectors\": {}",
                json_escape(circuit.node(est.site).name()),
                fmt_prob(est.p_sensitized, full_precision),
                est.vectors
            );
        }
        ResponsePayload::MultiCycle {
            analytic,
            monte_carlo,
        } => {
            let join = |values: &[f64]| {
                values
                    .iter()
                    .map(|&p| fmt_prob(p, full_precision))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let _ = write!(
                out,
                ", \"op\": \"multi_cycle\", \"node\": \"{}\", \"cumulative\": [{}]",
                json_escape(circuit.node(analytic.site).name()),
                join(&analytic.cumulative)
            );
            if let Some(mc) = monte_carlo {
                let _ = write!(
                    out,
                    ", \"mc_cumulative\": [{}], \"mc_runs\": {}, \"mc_stopped_by_rule\": {}",
                    join(&mc.cumulative),
                    mc.runs,
                    mc.stopped_by_rule
                );
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Transport abstraction
// ---------------------------------------------------------------------

/// A blocking source of request lines from one client.
pub trait LineStream: Send {
    /// The next line (without its terminator); `Ok(None)` when the
    /// client is done. A final unterminated fragment is returned as a
    /// line — the parser turns a truncated frame into a `parse` error
    /// rather than dropping it silently.
    fn next_line(&mut self) -> io::Result<Option<String>>;
}

/// The write half of a connection: a cloneable, thread-safe sink of
/// response frames. Executor workers hold clones so sequential
/// Monte-Carlo progress streams out *while the request runs*; the
/// mutex keeps every frame line atomic on the wire.
///
/// A sink that errors once is **dead**: every later [`send`]
/// fails fast without touching the writer. Combined with the TCP
/// transport's write timeout, this bounds how long a client that has
/// stopped reading can block a shared executor worker mid-stream — one
/// stalled write, then nothing.
///
/// [`send`]: FrameSink::send
#[derive(Clone)]
pub struct FrameSink {
    writer: Arc<Mutex<Box<dyn Write + Send>>>,
    dead: Arc<std::sync::atomic::AtomicBool>,
}

impl std::fmt::Debug for FrameSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrameSink").finish_non_exhaustive()
    }
}

impl FrameSink {
    /// Wraps a writer.
    #[must_use]
    pub fn new(writer: impl Write + Send + 'static) -> Self {
        FrameSink {
            writer: Arc::new(Mutex::new(Box::new(writer))),
            dead: Arc::default(),
        }
    }

    /// Replaces the sink's writer with `wrap(old_writer)` — the hook
    /// the chaos harness uses to interpose a fault-injecting writer
    /// (byte-split writes, mid-frame failures) between the protocol
    /// engine and the transport without either knowing. Frames sent
    /// while the swap runs wait on the sink's own mutex, so no frame
    /// is ever split across the old and new writer.
    pub fn wrap_writer(&self, wrap: impl FnOnce(Box<dyn Write + Send>) -> Box<dyn Write + Send>) {
        let mut w = lock_clean(&self.writer);
        let inner = std::mem::replace(&mut *w, Box::new(io::sink()));
        *w = wrap(inner);
    }

    /// Writes one frame as a line and flushes (line-buffered framing:
    /// a client may act on every line as it arrives). The frame and
    /// its terminator go down in a **single** write, so an unbuffered
    /// writer (a TCP socket) sends one packet per frame — two writes
    /// would tickle Nagle vs delayed-ACK into a ~40ms stall per reply.
    ///
    /// # Errors
    ///
    /// Propagates the underlying writer's first error; every send
    /// after an error fails immediately (the sink is dead — a partial
    /// frame may be on the wire, so nothing coherent can follow it).
    pub fn send(&self, frame: &str) -> io::Result<()> {
        use std::sync::atomic::Ordering;
        if self.dead.load(Ordering::Acquire) {
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "frame sink is dead after an earlier write failure",
            ));
        }
        let mut line = String::with_capacity(frame.len() + 1);
        line.push_str(frame);
        line.push('\n');
        let mut w = self
            .writer
            .lock()
            .map_err(|_| io::Error::other("frame sink poisoned"))?;
        let result = w.write_all(line.as_bytes()).and_then(|()| w.flush());
        if result.is_err() {
            self.dead.store(true, Ordering::Release);
        }
        result
    }
}

/// One client connection: a line source, a frame sink, and a label for
/// diagnostics.
pub struct Connection {
    /// Incoming request lines.
    pub lines: Box<dyn LineStream>,
    /// Outgoing frames.
    pub sink: FrameSink,
    /// Who this is (peer address, or `"stdio"`).
    pub peer: String,
}

impl std::fmt::Debug for Connection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Connection")
            .field("peer", &self.peer)
            .finish_non_exhaustive()
    }
}

/// A source of client connections — the I/O half the protocol engine
/// is decoupled from. Two implementations ship: [`StdioTransport`]
/// (one connection over stdin/stdout, the PR 3 framing) and
/// [`TcpTransport`](crate::net::TcpTransport).
pub trait Transport {
    /// Blocks for the next client; `Ok(None)` when the transport is
    /// closed (stdio after its single connection, TCP after shutdown).
    fn accept(&mut self) -> io::Result<Option<Connection>>;
}

/// The stdin/stdout transport: exactly one connection, then end of
/// transport. Keeps `ser-cli serve` wire-compatible with PR 3 while
/// sharing every byte of protocol logic with the TCP front door.
#[derive(Debug, Default)]
pub struct StdioTransport {
    served: bool,
}

impl StdioTransport {
    /// Creates the transport.
    #[must_use]
    pub fn new() -> Self {
        StdioTransport::default()
    }
}

struct StdinLines;

impl LineStream for StdinLines {
    fn next_line(&mut self) -> io::Result<Option<String>> {
        let mut buf = String::new();
        if io::stdin().lock().read_line(&mut buf)? == 0 {
            return Ok(None);
        }
        while buf.ends_with('\n') || buf.ends_with('\r') {
            buf.pop();
        }
        Ok(Some(buf))
    }
}

impl Transport for StdioTransport {
    fn accept(&mut self) -> io::Result<Option<Connection>> {
        if self.served {
            return Ok(None);
        }
        self.served = true;
        Ok(Some(Connection {
            lines: Box::new(StdinLines),
            sink: FrameSink::new(io::stdout()),
            peer: "stdio".to_owned(),
        }))
    }
}

/// Runs the engine over a transport: each accepted connection is
/// served on its own thread until the transport closes, then every
/// connection thread is joined — the graceful-shutdown path for the
/// TCP front door (stop accepting, finish in-flight clients, return).
///
/// # Errors
///
/// Propagates transport `accept` failures; per-connection I/O errors
/// only end their own connection.
pub fn serve(transport: &mut dyn Transport, engine: &Arc<ProtocolEngine>) -> io::Result<()> {
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while let Some(conn) = transport.accept()? {
        let engine = Arc::clone(engine);
        handles.push(std::thread::spawn(move || {
            // A client that vanishes mid-reply is routine, not fatal.
            let _ = engine.serve_connection(conn);
        }));
        handles.retain(|h| !h.is_finished());
    }
    for handle in handles {
        let _ = handle.join();
    }
    Ok(())
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// Tuning knobs of a [`ProtocolEngine`].
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// When set, every connection must open with a `hello` op carrying
    /// this token before anything else is served.
    pub auth_token: Option<String>,
    /// Per-client request quota: after this many served ops (anything
    /// but `hello`), further requests get `quota_exceeded` and the
    /// connection closes. `None` = unlimited.
    pub quota: Option<u64>,
    /// Server-wide cap on concurrently executing requests; arrivals
    /// beyond it wait their turn (backpressure, not rejection). `0` =
    /// unlimited.
    pub max_inflight: usize,
}

/// Counting gate bounding concurrently executing requests.
#[derive(Debug)]
struct InflightGate {
    limit: usize,
    active: Mutex<usize>,
    freed: Condvar,
}

impl InflightGate {
    fn acquire(&self) -> InflightPermit<'_> {
        if self.limit > 0 {
            let mut active = lock_clean(&self.active);
            while *active >= self.limit {
                active = wait_clean(&self.freed, active);
            }
            *active += 1;
        }
        InflightPermit { gate: self }
    }
}

struct InflightPermit<'a> {
    gate: &'a InflightGate,
}

impl Drop for InflightPermit<'_> {
    fn drop(&mut self) {
        if self.gate.limit > 0 {
            *lock_clean(&self.gate.active) -= 1;
            self.gate.freed.notify_one();
        }
    }
}

/// Per-connection protocol state.
#[derive(Debug, Default)]
struct ConnState {
    /// 1-based line counter (for v1 error lines).
    line: usize,
    /// Lines served (for the quota).
    served: u64,
    /// Whether the shared secret has been presented.
    authed: bool,
    /// Whether the one quota-free handshake has been spent.
    greeted: bool,
}

/// Whether the connection continues after a line.
enum Flow {
    Continue,
    Close,
}

/// The transport-agnostic request engine: parses envelope (or v1) job
/// lines, dispatches them onto a shared [`SerService`], and writes the
/// framed reply — including mid-request progress frames — through the
/// connection's [`FrameSink`]. One engine serves every connection of a
/// server, so the session/response caches and the netlist cache are
/// shared across clients.
#[derive(Debug)]
pub struct ProtocolEngine {
    service: Arc<SerService>,
    config: EngineConfig,
    circuits: Mutex<NetlistCache>,
    inflight: InflightGate,
    /// In-flight cancel handles, keyed by client request id. Engine-
    /// wide on purpose: a connection's serve loop is sequential, so a
    /// `cancel` necessarily arrives on a *different* connection than
    /// the request it targets. Ids map to a `Vec` because a batch
    /// registers every job token under the batch id, and because
    /// nothing stops two clients from picking the same id.
    cancels: Mutex<HashMap<String, Vec<CancelToken>>>,
}

/// RAII deregistration of cancel-registry entries: however a request
/// ends — result, error, panic unwinding past the dispatch — its
/// tokens leave the registry, so a late `cancel` for a reused id can
/// never trip a *future* request. Removal is by token identity
/// ([`CancelToken::ptr_eq`]), not by id, so a concurrent request that
/// chose the same id keeps its own registration.
struct CancelGuard<'a> {
    registry: &'a Mutex<HashMap<String, Vec<CancelToken>>>,
    entries: Vec<(String, CancelToken)>,
}

impl<'a> CancelGuard<'a> {
    fn register(
        registry: &'a Mutex<HashMap<String, Vec<CancelToken>>>,
        entries: Vec<(String, CancelToken)>,
    ) -> Self {
        {
            let mut map = lock_clean(registry);
            for (id, token) in &entries {
                map.entry(id.clone()).or_default().push(token.clone());
            }
        }
        CancelGuard { registry, entries }
    }
}

impl Drop for CancelGuard<'_> {
    fn drop(&mut self) {
        let mut map = lock_clean(self.registry);
        for (id, token) in &self.entries {
            if let Some(tokens) = map.get_mut(id) {
                tokens.retain(|t| !t.ptr_eq(token));
                if tokens.is_empty() {
                    map.remove(id);
                }
            }
        }
    }
}

impl ProtocolEngine {
    /// Creates an engine over a service.
    #[must_use]
    pub fn new(service: Arc<SerService>, config: EngineConfig) -> Self {
        ProtocolEngine {
            inflight: InflightGate {
                limit: config.max_inflight,
                active: Mutex::new(0),
                freed: Condvar::new(),
            },
            service,
            config,
            circuits: Mutex::new(NetlistCache::default()),
            cancels: Mutex::new(HashMap::new()),
        }
    }

    /// The shared service.
    #[must_use]
    pub fn service(&self) -> &Arc<SerService> {
        &self.service
    }

    /// Requests currently holding an inflight permit. The chaos tests
    /// assert this returns to zero after every fault schedule — a
    /// leaked permit would eventually wedge the gate shut.
    #[must_use]
    pub fn inflight_active(&self) -> usize {
        *lock_clean(&self.inflight.active)
    }

    /// Request ids with live cancel registrations. Like
    /// [`inflight_active`](Self::inflight_active), must drain to zero
    /// once no request is in flight — the registry is RAII-guarded.
    #[must_use]
    pub fn cancel_registrations(&self) -> usize {
        lock_clean(&self.cancels).len()
    }

    /// Serves one client connection to completion: reads lines,
    /// answers frames, enforces auth and quota, stops at end of
    /// stream or on a fatal protocol violation.
    ///
    /// # Errors
    ///
    /// Returns the first unrecoverable I/O error (client gone).
    pub fn serve_connection(&self, conn: Connection) -> io::Result<()> {
        let mut lines = conn.lines;
        let sink = conn.sink;
        let mut state = ConnState::default();
        while let Some(line) = lines.next_line()? {
            state.line += 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            match self.handle_line(trimmed, &mut state, &sink)? {
                Flow::Continue => {}
                Flow::Close => break,
            }
        }
        Ok(())
    }

    /// Parses and dispatches one request line, writing every frame of
    /// the reply.
    fn handle_line(&self, line: &str, state: &mut ConnState, sink: &FrameSink) -> io::Result<Flow> {
        let parsed = parse_wire_line(line);

        // Auth gate first — it covers unparseable lines too, so an
        // unauthenticated client cannot elicit unlimited error replies
        // by sending garbage: with a token configured, the first line
        // must be a valid hello, and anything else (including a line
        // that does not parse) closes the connection.
        if self.config.auth_token.is_some() && !state.authed {
            if let Ok(ParsedLine::V2(WireRequest {
                id,
                op: WireOp::Hello { token },
                ..
            })) = &parsed
            {
                if token.as_deref() == self.config.auth_token.as_deref() {
                    state.authed = true;
                    state.greeted = true;
                    sink.send(&hello_frame(id.as_deref()))?;
                    return Ok(Flow::Continue);
                }
                sink.send(&render_error_frame(
                    id.as_deref(),
                    &WireError::new(ErrorCode::Unauthorized, "bad or missing token"),
                ))?;
                return Ok(Flow::Close);
            }
            sink.send(&render_error_frame(
                None,
                &WireError::new(
                    ErrorCode::Unauthorized,
                    "this server requires a hello op with a token first",
                ),
            ))?;
            return Ok(Flow::Close);
        }

        // The first hello is the quota-free handshake; repeats fall
        // through to the quota gate like any other op, so a hello loop
        // cannot elicit unlimited replies.
        if let Ok(ParsedLine::V2(WireRequest {
            id,
            op: WireOp::Hello { .. },
            ..
        })) = &parsed
        {
            if !state.greeted {
                state.authed = true;
                state.greeted = true;
                sink.send(&hello_frame(id.as_deref()))?;
                return Ok(Flow::Continue);
            }
        }

        // Quota gate: every post-handshake line counts, parseable or
        // not — a quota that garbage lines bypassed would be no quota.
        if let Some(quota) = self.config.quota {
            if state.served >= quota {
                let id = match &parsed {
                    Ok(ParsedLine::V2(req)) => req.id.clone(),
                    _ => None,
                };
                sink.send(&render_error_frame(
                    id.as_deref(),
                    &WireError::new(
                        ErrorCode::QuotaExceeded,
                        format!("request quota ({quota}) exhausted for this connection"),
                    ),
                ))?;
                return Ok(Flow::Close);
            }
        }
        state.served += 1;

        let parsed = match parsed {
            Ok(parsed) => parsed,
            Err(e) => {
                // Dialect unknown when the line didn't parse: the v2
                // error frame carries the same `error` key v1 clients
                // look for.
                sink.send(&render_error_frame(None, &e))?;
                return Ok(Flow::Continue);
            }
        };

        match parsed {
            ParsedLine::V1(spec) => {
                let line_no = state.line;
                match self.dispatch_v1(&spec) {
                    Ok(reply) => sink.send(&reply)?,
                    Err(e) => sink.send(&format!(
                        "{{\"line\": {line_no}, \"error\": {}}}",
                        e.render()
                    ))?,
                }
            }
            ParsedLine::V2(req) => {
                let id = req.id.as_deref();
                if let Err(e) = self.dispatch_v2(&req, sink)? {
                    sink.send(&render_error_frame(id, &e))?;
                }
            }
        }
        Ok(Flow::Continue)
    }

    /// Serves a v1 job line; the reply is the old one-line response.
    fn dispatch_v1(&self, spec: &JobSpec) -> Result<String, WireError> {
        let circuit = self.load_circuit(&spec.netlist)?;
        let request = spec.to_request(&circuit).map_err(classify_request_error)?;
        let _permit = self.inflight.acquire();
        let response = self.service.submit(&circuit, request)?;
        Ok(jobs::v1_response_json(spec.top, &circuit, &response))
    }

    /// Serves a v2 op, writing progress/chunk/result frames. The outer
    /// `io::Result` is transport failure; the inner result reports a
    /// protocol-level error for the caller to frame.
    fn dispatch_v2(
        &self,
        req: &WireRequest,
        sink: &FrameSink,
    ) -> io::Result<Result<(), WireError>> {
        let id = req.id.as_deref();
        // A token exists whenever the request carries an id (so a
        // concurrent `cancel` can find it) or a deadline; ops that
        // never reach a compute leg still honor it via the pre-check.
        let token = match (&req.id, req.deadline_ms) {
            (None, None) => None,
            (_, Some(ms)) => Some(CancelToken::with_timeout(Duration::from_millis(ms))),
            (Some(_), None) => Some(CancelToken::new()),
        };
        let _guard = match (&req.id, &token) {
            (Some(rid), Some(token)) => Some(CancelGuard::register(
                &self.cancels,
                vec![(rid.clone(), token.clone())],
            )),
            _ => None,
        };
        if let Some(token) = &token {
            if let Err(cause) = token.check() {
                return Ok(Err((&ServiceError::Cancelled(cause)).into()));
            }
        }
        let cancel = token.as_ref();
        match &req.op {
            // Only *repeated* hellos land here (the first is answered
            // quota-free before dispatch); they count like any op.
            WireOp::Hello { .. } => {
                sink.send(&hello_frame(id))?;
                Ok(Ok(()))
            }
            WireOp::Stats => {
                let s = self.service.stats();
                sink.send(&format!(
                    "{}, \"op\": \"stats\", \"session_hits\": {}, \"session_misses\": {}, \
                     \"evictions\": {}, \"sessions_cached\": {}, \"sweep_cache_hits\": {}, \
                     \"sweep_cache_misses\": {}, \"sweep_responses_cached\": {}, \
                     \"requests_cancelled\": {}, \"idle_reaped\": {}}}",
                    frame_head("result", id),
                    s.session_hits,
                    s.session_misses,
                    s.evictions,
                    s.sessions_cached,
                    s.sweep_cache_hits,
                    s.sweep_cache_misses,
                    s.sweep_responses_cached,
                    s.requests_cancelled,
                    s.idle_reaped
                ))?;
                Ok(Ok(()))
            }
            WireOp::SetInputs(op) => match self.run_set_inputs(op) {
                Ok((circuit, revision)) => {
                    sink.send(&format!(
                        "{}, \"op\": \"set_inputs\", \"circuit\": \"{}\", \
                         \"netlist_hash\": \"{:016x}\", \"revision\": {revision}}}",
                        frame_head("result", id),
                        json_escape(circuit.name()),
                        circuit.structural_hash()
                    ))?;
                    Ok(Ok(()))
                }
                Err(e) => Ok(Err(e)),
            },
            WireOp::Sweep(op) => self.run_sweep(id, op, sink, cancel),
            WireOp::Site(op) => match self.run_simple(
                id,
                &op.netlist,
                |circuit| {
                    Ok(Request::Site(SiteRequest {
                        site: resolve_node(circuit, &op.node)?,
                    }))
                },
                cancel,
            ) {
                Ok(frame) => {
                    sink.send(&frame)?;
                    Ok(Ok(()))
                }
                Err(e) => Ok(Err(e)),
            },
            WireOp::MonteCarlo(op) => self.run_monte_carlo(id, op, sink, cancel),
            WireOp::MultiCycle(op) => self.run_multi_cycle(id, op, sink, cancel),
            WireOp::WhatIf(op) => self.run_whatif(id, op, sink, cancel),
            WireOp::Cancel(op) => {
                let found = {
                    let map = lock_clean(&self.cancels);
                    match map.get(&op.target) {
                        Some(tokens) => {
                            for token in tokens {
                                token.cancel();
                            }
                            true
                        }
                        None => false,
                    }
                };
                sink.send(&format!(
                    "{}, \"op\": \"cancel\", \"target\": \"{}\", \"found\": {found}}}",
                    frame_head("result", id),
                    json_escape(&op.target)
                ))?;
                Ok(Ok(()))
            }
            WireOp::Batch(op) => self.run_batch(id, op, req.deadline_ms, sink),
            WireOp::WhatIfRevert(op) => match self.run_whatif_revert(op) {
                Ok((circuit, depth, total)) => {
                    sink.send(&format!(
                        "{}, \"op\": \"whatif_revert\", \"circuit\": \"{}\", \
                         \"netlist_hash\": \"{:016x}\", \"total_ser\": {}, \"depth\": {depth}}}",
                        frame_head("result", id),
                        json_escape(circuit.name()),
                        circuit.structural_hash(),
                        fmt_f64(total)
                    ))?;
                    Ok(Ok(()))
                }
                Err(e) => Ok(Err(e)),
            },
        }
    }

    /// One-frame ops: resolve, submit, render the result frame.
    fn run_simple(
        &self,
        id: Option<&str>,
        netlist: &str,
        build: impl FnOnce(&Circuit) -> Result<Request, WireError>,
        cancel: Option<&CancelToken>,
    ) -> Result<String, WireError> {
        let circuit = self.load_circuit(netlist)?;
        let request = build(&circuit)?;
        let _permit = self.inflight.acquire();
        let response = self
            .service
            .submit_cancellable(&circuit, request, None, cancel.cloned())?;
        Ok(format!(
            "{}, {}}}",
            frame_head("result", id),
            response_fields(None, &circuit, &response, true)
        ))
    }

    fn run_set_inputs(&self, op: &SetInputsOp) -> Result<(Arc<Circuit>, u64), WireError> {
        let circuit = self.load_circuit(&op.netlist)?;
        let mut inputs = InputProbs::uniform(op.default_p);
        for (name, p) in &op.overrides {
            inputs = inputs.with(resolve_node(&circuit, name)?, *p);
        }
        let _permit = self.inflight.acquire();
        let revision = self.service.set_inputs(&circuit, inputs)?;
        Ok((circuit, revision))
    }

    fn run_sweep(
        &self,
        id: Option<&str>,
        op: &SweepOp,
        sink: &FrameSink,
        cancel: Option<&CancelToken>,
    ) -> io::Result<Result<(), WireError>> {
        let circuit = match self.load_circuit(&op.netlist) {
            Ok(c) => c,
            Err(e) => return Ok(Err(e)),
        };
        let sites: Option<Vec<NodeId>> = match &op.sites {
            None => None,
            Some(names) => {
                let mut ids = Vec::with_capacity(names.len());
                for name in names {
                    match resolve_node(&circuit, name) {
                        Ok(id) => ids.push(id),
                        Err(e) => return Ok(Err(e)),
                    }
                }
                Some(ids)
            }
        };
        let request = Request::Sweep(SweepRequest {
            sites,
            polarity: op.polarity,
        });
        let _permit = self.inflight.acquire();
        let progress = op.progress.then(|| -> ProgressFn {
            let sink = sink.clone();
            let id: Option<String> = id.map(str::to_owned);
            Arc::new(move |p: Progress| {
                let _ = sink.send(&render_progress_frame(id.as_deref(), &p));
            })
        });
        let response =
            self.service
                .submit_cancellable(&circuit, request, progress, cancel.cloned());
        let response = match response {
            Ok(r) => r,
            Err(e) => return Ok(Err(e.into())),
        };

        // Page per-site values into chunk frames before the result.
        let mut chunks = 0usize;
        if let (Some(chunk_sites), ResponsePayload::Sweep(sweep)) =
            (op.chunk_sites, &response.payload)
        {
            chunks = send_sweep_chunks(sink, id, &circuit, sweep, chunk_sites)?;
        }
        let chunk_note = if op.chunk_sites.is_some() {
            format!(", \"chunks\": {chunks}")
        } else {
            String::new()
        };
        sink.send(&format!(
            "{}, {}{chunk_note}}}",
            frame_head("result", id),
            response_fields(op.top, &circuit, &response, true)
        ))?;
        Ok(Ok(()))
    }

    fn run_monte_carlo(
        &self,
        id: Option<&str>,
        op: &MonteCarloOp,
        sink: &FrameSink,
        cancel: Option<&CancelToken>,
    ) -> io::Result<Result<(), WireError>> {
        let circuit = match self.load_circuit(&op.netlist) {
            Ok(c) => c,
            Err(e) => return Ok(Err(e)),
        };
        let site = match resolve_node(&circuit, &op.node) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        let request = Request::MonteCarlo(MonteCarloRequest {
            site,
            vectors: op.vectors.unwrap_or(JobSpec::DEFAULT_VECTORS),
            target_error: op.target_error,
            seed: op.seed.unwrap_or(JobSpec::DEFAULT_SEED),
        });
        let _permit = self.inflight.acquire();
        let streaming = op.progress && op.target_error.is_some();
        let progress = streaming.then(|| -> ProgressFn {
            let sink = sink.clone();
            let id: Option<String> = id.map(str::to_owned);
            Arc::new(move |p: Progress| {
                let _ = sink.send(&render_progress_frame(id.as_deref(), &p));
            })
        });
        let response =
            self.service
                .submit_cancellable(&circuit, request, progress, cancel.cloned());
        match response {
            Ok(response) => {
                sink.send(&format!(
                    "{}, {}}}",
                    frame_head("result", id),
                    response_fields(None, &circuit, &response, true)
                ))?;
                Ok(Ok(()))
            }
            Err(e) => Ok(Err(e.into())),
        }
    }

    fn run_multi_cycle(
        &self,
        id: Option<&str>,
        op: &MultiCycleOp,
        sink: &FrameSink,
        cancel: Option<&CancelToken>,
    ) -> io::Result<Result<(), WireError>> {
        let circuit = match self.load_circuit(&op.netlist) {
            Ok(c) => c,
            Err(e) => return Ok(Err(e)),
        };
        let site = match resolve_node(&circuit, &op.node) {
            Ok(s) => s,
            Err(e) => return Ok(Err(e)),
        };
        let request = Request::MultiCycle(MultiCycleRequest {
            site,
            cycles: op.cycles,
            monte_carlo: op.monte_carlo.as_ref().map(|mc| MultiCycleMcRequest {
                runs: mc.runs,
                target_error: mc.target_error,
                seed: mc.seed.unwrap_or(JobSpec::DEFAULT_SEED),
            }),
        });
        let _permit = self.inflight.acquire();
        // Progress only makes sense when the simulation leg runs under
        // the sequential stopping rule (data-dependent runtime).
        let streaming = op.progress
            && op
                .monte_carlo
                .as_ref()
                .is_some_and(|mc| mc.target_error.is_some());
        let progress = streaming.then(|| -> ProgressFn {
            let sink = sink.clone();
            let id: Option<String> = id.map(str::to_owned);
            Arc::new(move |p: Progress| {
                let _ = sink.send(&render_progress_frame(id.as_deref(), &p));
            })
        });
        let response =
            self.service
                .submit_cancellable(&circuit, request, progress, cancel.cloned());
        match response {
            Ok(response) => {
                sink.send(&format!(
                    "{}, {}}}",
                    frame_head("result", id),
                    response_fields(None, &circuit, &response, true)
                ))?;
                Ok(Ok(()))
            }
            Err(e) => Ok(Err(e.into())),
        }
    }

    /// Serves a `whatif` op: applies the edit to the netlist's warm
    /// stack, pages the dirty-region per-site deltas into `chunk`
    /// frames (`old_p` is `null` for sites the edit introduced), then
    /// sends a result frame with the new total and the re-sweep
    /// telemetry. The incremental engine guarantees the spliced state
    /// is bit-identical to a from-scratch analysis, so the wire totals
    /// can be compared bitwise against a full `sweep` of the edited
    /// circuit.
    fn run_whatif(
        &self,
        id: Option<&str>,
        op: &WhatIfOp,
        sink: &FrameSink,
        cancel: Option<&CancelToken>,
    ) -> io::Result<Result<(), WireError>> {
        let circuit = match self.load_circuit(&op.netlist) {
            Ok(c) => c,
            Err(e) => return Ok(Err(e)),
        };
        let _permit = self.inflight.acquire();
        // The resolver runs against the stack's *current* circuit; a
        // resolution failure is stashed so its error code (not_found /
        // bad_request) survives the trip through `ServiceError`.
        let mut resolve_err: Option<WireError> = None;
        let result = self.service.whatif_apply_cancellable(
            &circuit,
            |current| {
                build_whatif_edit(current, &op.edit).map_err(|e| {
                    let msg = e.message.clone();
                    resolve_err = Some(e);
                    ServiceError::InvalidRequest(msg)
                })
            },
            cancel,
        );
        let outcome: WhatIfOutcome = match result {
            Ok(o) => o,
            Err(e) => {
                return Ok(Err(match resolve_err {
                    Some(wire) => wire,
                    None => e.into(),
                }))
            }
        };

        let mut chunks = 0usize;
        for (seq, chunk) in outcome.deltas.chunks(op.chunk_sites).enumerate() {
            let mut frame = format!("{}, \"seq\": {seq}, \"deltas\": [", frame_head("chunk", id));
            for (i, delta) in chunk.iter().enumerate() {
                if i > 0 {
                    frame.push_str(", ");
                }
                let old = match delta.old_p {
                    Some(p) => fmt_f64(p),
                    None => "null".to_owned(),
                };
                frame.push_str(&format!(
                    "{{\"node\": \"{}\", \"old_p\": {old}, \"new_p\": {}}}",
                    json_escape(&delta.name),
                    fmt_f64(delta.new_p)
                ));
            }
            frame.push_str("]}");
            sink.send(&frame)?;
            chunks = seq + 1;
        }
        sink.send(&format!(
            "{}, \"op\": \"whatif\", \"circuit\": \"{}\", \"netlist_hash\": \"{:016x}\", \
             \"edit\": \"{}\", \"total_ser\": {}, \"previous_ser\": {}, \"dirty_sites\": {}, \
             \"resweep_planned\": {}, \"resweep_reference\": {}, \"total_sites\": {}, \
             \"depth\": {}, \"elapsed_us\": {}, \"chunks\": {chunks}}}",
            frame_head("result", id),
            json_escape(circuit.name()),
            circuit.structural_hash(),
            op.edit.kind_str(),
            fmt_f64(outcome.total),
            fmt_f64(outcome.previous_total),
            outcome.dirty_sites,
            outcome.resweep_planned,
            outcome.resweep_reference,
            outcome.total_sites,
            outcome.depth,
            outcome.elapsed.as_micros()
        ))?;
        Ok(Ok(()))
    }

    fn run_whatif_revert(
        &self,
        op: &WhatIfRevertOp,
    ) -> Result<(Arc<Circuit>, usize, f64), WireError> {
        let circuit = self.load_circuit(&op.netlist)?;
        let _permit = self.inflight.acquire();
        let (depth, total) = self.service.whatif_revert(&circuit)?;
        Ok((circuit, depth, total))
    }

    /// Serves a `batch` op: every job is resolved up front (any
    /// resolution failure rejects the whole batch before any work is
    /// enqueued), then all jobs are submitted together so their
    /// executor parts interleave on the shared workers. Each job
    /// answers with its own id-echoed progress/chunk/result (or error)
    /// frames, in job order, then one batch-level result frame closes
    /// the envelope. One inflight permit covers the whole batch — it
    /// is one wire request.
    ///
    /// Cancellation: each job's token registers under the job's own id
    /// *and* under the batch envelope's id, so a client can cancel one
    /// job surgically or the whole batch at once; a batch-level
    /// `deadline_ms` combines with per-job deadlines (earlier wins).
    fn run_batch(
        &self,
        id: Option<&str>,
        op: &BatchOp,
        deadline_ms: Option<u64>,
        sink: &FrameSink,
    ) -> io::Result<Result<(), WireError>> {
        let mut jobs = Vec::with_capacity(op.jobs.len());
        for job in &op.jobs {
            match self.resolve_batch_job(job, deadline_ms, sink) {
                Ok(j) => jobs.push(j),
                Err(e) => return Ok(Err(e)),
            }
        }
        let mut entries = Vec::new();
        for (job, spec) in op.jobs.iter().zip(&jobs) {
            if let Some(jid) = &job.id {
                entries.push((jid.clone(), spec.token.clone()));
            }
            if let Some(bid) = id {
                entries.push((bid.to_owned(), spec.token.clone()));
            }
        }
        let _guard = CancelGuard::register(&self.cancels, entries);
        let _permit = self.inflight.acquire();
        let results = self.service.submit_batch_cancellable(
            jobs.iter()
                .map(|j| {
                    (
                        Arc::clone(&j.circuit),
                        j.request.clone(),
                        j.progress.clone(),
                        Some(j.token.clone()),
                    )
                })
                .collect(),
        );
        let mut errors = 0usize;
        for ((job, spec), result) in op.jobs.iter().zip(&jobs).zip(results) {
            let jid = job.id.as_deref();
            match result {
                Ok(response) => {
                    let mut chunks = 0usize;
                    if let (Some(chunk_sites), ResponsePayload::Sweep(sweep)) =
                        (spec.chunk_sites, &response.payload)
                    {
                        chunks = send_sweep_chunks(sink, jid, &spec.circuit, sweep, chunk_sites)?;
                    }
                    let chunk_note = if spec.chunk_sites.is_some() {
                        format!(", \"chunks\": {chunks}")
                    } else {
                        String::new()
                    };
                    sink.send(&format!(
                        "{}, {}{chunk_note}}}",
                        frame_head("result", jid),
                        response_fields(spec.top, &spec.circuit, &response, true)
                    ))?;
                }
                Err(e) => {
                    errors += 1;
                    sink.send(&render_error_frame(jid, &WireError::from(&e)))?;
                }
            }
        }
        sink.send(&format!(
            "{}, \"op\": \"batch\", \"jobs\": {}, \"errors\": {errors}}}",
            frame_head("result", id),
            jobs.len()
        ))?;
        Ok(Ok(()))
    }

    /// Resolves one `batch` job into a submittable request plus its
    /// render/cancel bookkeeping.
    fn resolve_batch_job(
        &self,
        job: &WireRequest,
        batch_deadline_ms: Option<u64>,
        sink: &FrameSink,
    ) -> Result<BatchJob, WireError> {
        let effective_ms = match (batch_deadline_ms, job.deadline_ms) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let token = match effective_ms {
            Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let progress_sink = |want: bool| -> Option<ProgressFn> {
            want.then(|| -> ProgressFn {
                let sink = sink.clone();
                let id: Option<String> = job.id.clone();
                Arc::new(move |p: Progress| {
                    let _ = sink.send(&render_progress_frame(id.as_deref(), &p));
                })
            })
        };
        match &job.op {
            WireOp::Sweep(op) => {
                let circuit = self.load_circuit(&op.netlist)?;
                let sites = match &op.sites {
                    None => None,
                    Some(names) => {
                        let mut ids = Vec::with_capacity(names.len());
                        for name in names {
                            ids.push(resolve_node(&circuit, name)?);
                        }
                        Some(ids)
                    }
                };
                Ok(BatchJob {
                    request: Request::Sweep(SweepRequest {
                        sites,
                        polarity: op.polarity,
                    }),
                    progress: progress_sink(op.progress),
                    top: op.top,
                    chunk_sites: op.chunk_sites,
                    circuit,
                    token,
                })
            }
            WireOp::Site(op) => {
                let circuit = self.load_circuit(&op.netlist)?;
                let site = resolve_node(&circuit, &op.node)?;
                Ok(BatchJob {
                    request: Request::Site(SiteRequest { site }),
                    progress: None,
                    top: None,
                    chunk_sites: None,
                    circuit,
                    token,
                })
            }
            WireOp::MonteCarlo(op) => {
                let circuit = self.load_circuit(&op.netlist)?;
                let site = resolve_node(&circuit, &op.node)?;
                Ok(BatchJob {
                    request: Request::MonteCarlo(MonteCarloRequest {
                        site,
                        vectors: op.vectors.unwrap_or(JobSpec::DEFAULT_VECTORS),
                        target_error: op.target_error,
                        seed: op.seed.unwrap_or(JobSpec::DEFAULT_SEED),
                    }),
                    progress: progress_sink(op.progress && op.target_error.is_some()),
                    top: None,
                    chunk_sites: None,
                    circuit,
                    token,
                })
            }
            WireOp::MultiCycle(op) => {
                let circuit = self.load_circuit(&op.netlist)?;
                let site = resolve_node(&circuit, &op.node)?;
                let streaming = op.progress
                    && op
                        .monte_carlo
                        .as_ref()
                        .is_some_and(|mc| mc.target_error.is_some());
                Ok(BatchJob {
                    request: Request::MultiCycle(MultiCycleRequest {
                        site,
                        cycles: op.cycles,
                        monte_carlo: op.monte_carlo.as_ref().map(|mc| MultiCycleMcRequest {
                            runs: mc.runs,
                            target_error: mc.target_error,
                            seed: mc.seed.unwrap_or(JobSpec::DEFAULT_SEED),
                        }),
                    }),
                    progress: progress_sink(streaming),
                    top: None,
                    chunk_sites: None,
                    circuit,
                    token,
                })
            }
            // Unreachable in practice: the parser rejects other ops.
            _ => Err(bad(
                "batch jobs are sweep/site/monte_carlo/multi_cycle only",
            )),
        }
    }

    /// Loads (or reuses) a netlist by path. The cache is engine-wide:
    /// every connection shares one parse and one `Arc<Circuit>` per
    /// path, which also keeps the service's session cache keyed
    /// consistently.
    fn load_circuit(&self, path: &str) -> Result<Arc<Circuit>, WireError> {
        if let Some(c) = lock_clean(&self.circuits).get(path) {
            return Ok(c);
        }
        let text = std::fs::read_to_string(path).map_err(|e| {
            WireError::new(ErrorCode::NotFound, format!("cannot read `{path}`: {e}"))
        })?;
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("circuit");
        let circuit = if path.ends_with(".v") || path.ends_with(".sv") {
            parse_verilog(&text)
        } else {
            parse_bench(&text, stem)
        }
        .map_err(|e| {
            WireError::new(ErrorCode::BadRequest, format!("cannot parse `{path}`: {e}"))
        })?;
        let circuit = Arc::new(circuit);
        lock_clean(&self.circuits).insert(path, &circuit);
        Ok(circuit)
    }
}

/// The engine-wide netlist cache: one parse and one `Arc<Circuit>`
/// per path, shared by every connection — **bounded**, with the same
/// LRU discipline as the service's session/response caches, so a
/// daemon fed ever-fresh paths cannot grow without limit. Eviction
/// only drops the cache's own handle; sessions already compiled from
/// an evicted circuit keep their `Arc`s.
#[derive(Debug, Default)]
struct NetlistCache {
    entries: HashMap<String, (Arc<Circuit>, u64)>,
    tick: u64,
}

impl NetlistCache {
    /// A daemon legitimately serving more distinct netlists than this
    /// at once is running a batch workload through the wrong front
    /// end; re-parsing the overflow is correct, just slower.
    const CAPACITY: usize = 64;

    fn get(&mut self, path: &str) -> Option<Arc<Circuit>> {
        self.tick += 1;
        let tick = self.tick;
        let (circuit, last_used) = self.entries.get_mut(path)?;
        *last_used = tick;
        Some(Arc::clone(circuit))
    }

    fn insert(&mut self, path: &str, circuit: &Arc<Circuit>) {
        self.tick += 1;
        let tick = self.tick;
        crate::service::evict_lru_at_capacity(
            &mut self.entries,
            &path.to_owned(),
            Self::CAPACITY,
            |&(_, last_used)| last_used,
        );
        self.entries
            .entry(path.to_owned())
            .or_insert((Arc::clone(circuit), tick));
    }
}

fn hello_frame(id: Option<&str>) -> String {
    format!(
        "{}, \"op\": \"hello\", \"protocol\": {PROTOCOL_VERSION}, \"server\": \"ser-service\"}}",
        frame_head("result", id)
    )
}

/// Resolves a wire-level what-if edit against the stack's current
/// circuit into the engine's typed [`Edit`].
fn build_whatif_edit(circuit: &Circuit, edit: &WhatIfEditOp) -> Result<Edit, WireError> {
    match edit {
        WhatIfEditOp::Tmr { node } => Ok(Edit::Tmr(resolve_node(circuit, node)?)),
        WhatIfEditOp::SwapKind { node, kind } => {
            Ok(Edit::SwapKind(resolve_node(circuit, node)?, *kind))
        }
        WhatIfEditOp::SetInputs {
            default_p,
            overrides,
        } => {
            let mut inputs = InputProbs::uniform(*default_p);
            for (name, p) in overrides {
                inputs = inputs.with(resolve_node(circuit, name)?, *p);
            }
            Ok(Edit::SetInputs(inputs))
        }
    }
}

/// One resolved job of a `batch` envelope, ready to submit: the loaded
/// circuit, the typed request, and the render/cancel bookkeeping the
/// reply loop needs after the executor returns.
struct BatchJob {
    circuit: Arc<Circuit>,
    request: Request,
    progress: Option<ProgressFn>,
    token: CancelToken,
    top: Option<usize>,
    chunk_sites: Option<usize>,
}

/// Pages a sweep's per-site values into id-echoed `chunk` frames
/// (shared by the solo `sweep` op and each sweep job of a `batch`);
/// returns the number of chunk frames sent.
fn send_sweep_chunks(
    sink: &FrameSink,
    id: Option<&str>,
    circuit: &Circuit,
    sweep: &SweepResults,
    chunk_sites: usize,
) -> io::Result<usize> {
    let mut chunks = 0usize;
    for (seq, first) in (0..sweep.len()).step_by(chunk_sites).enumerate() {
        let mut frame = format!(
            "{}, \"seq\": {seq}, \"first\": {first}, \"sites\": [",
            frame_head("chunk", id)
        );
        for pos in first..(first + chunk_sites).min(sweep.len()) {
            if pos > first {
                frame.push_str(", ");
            }
            let site = sweep.get(pos);
            frame.push_str(&format!(
                "{{\"node\": \"{}\", \"p_sensitized\": {}}}",
                json_escape(circuit.node(site.site()).name()),
                fmt_f64(site.p_sensitized())
            ));
        }
        frame.push_str("]}");
        sink.send(&frame)?;
        chunks = seq + 1;
    }
    Ok(chunks)
}

fn resolve_node(circuit: &Circuit, name: &str) -> Result<NodeId, WireError> {
    circuit.find(name).ok_or_else(|| {
        WireError::new(
            ErrorCode::NotFound,
            format!("no node named `{name}` in `{}`", circuit.name()),
        )
    })
}

/// v1 request-conversion errors are "not found" when they name a
/// missing node, "bad request" otherwise — the split the structured
/// codes need from the shim's prose errors.
fn classify_request_error(message: String) -> WireError {
    if message.starts_with("no node named") {
        WireError::new(ErrorCode::NotFound, message)
    } else {
        WireError::new(ErrorCode::BadRequest, message)
    }
}
