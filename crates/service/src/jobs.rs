//! The **v1 compatibility shim**: the line-oriented job dialect PR 3's
//! `ser-cli serve`/`batch` spoke, kept wire-compatible.
//!
//! One job per line, as a flat JSON object of scalar values — the
//! versioned envelope protocol (see [`crate::protocol`]) recognizes a
//! line *without* a `"v"` field as this dialect, parses it here, and
//! answers **success** responses in the exact v1 shape (no envelope,
//! no frames). One deliberate departure: error replies now carry the
//! structured `{code, message}` object everywhere (`{"line": N,
//! "error": {...}}` here; an envelope `error` frame for lines that
//! don't parse at all), so a v1 client that reads `"error"` as a bare
//! string must update its error path — its request lines and its
//! success parsing need no change:
//!
//! ```text
//! {"op": "sweep",       "netlist": "s953.bench", "top": 5}
//! {"op": "site",        "netlist": "s953.bench", "node": "G125"}
//! {"op": "monte_carlo", "netlist": "s953.bench", "node": "G125", "vectors": 20000, "target_error": 0.1}
//! {"op": "multi_cycle", "netlist": "s953.bench", "node": "G125", "cycles": 4, "runs": 10000}
//! ```
//!
//! Unknown keys are rejected (a typo'd option should fail loudly, not
//! silently fall back to a default), and nested containers stay
//! rejected in this dialect exactly as PR 3 rejected them — new,
//! structured options belong to the v2 envelope.

use ser_netlist::Circuit;

use crate::json::{self, JsonValue};
use crate::request::{
    MonteCarloRequest, MultiCycleMcRequest, MultiCycleRequest, Request, Response, SiteRequest,
    SweepRequest,
};

pub use crate::json::json_escape;

/// Parses one **flat** JSON object (`{"key": scalar, ...}`) into
/// key/value pairs in declaration order — the v1 dialect's shape.
///
/// # Errors
///
/// Returns a human-readable message for malformed input, nested
/// containers, or duplicate keys.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let pairs = json::parse_object(line)?;
    reject_nested(&pairs)?;
    Ok(pairs)
}

/// Enforces the v1 dialect's flatness on already-parsed pairs — the
/// one copy of the rule, shared by [`parse_flat_object`] and the
/// protocol layer's v1 detection path.
pub(crate) fn reject_nested(pairs: &[(String, JsonValue)]) -> Result<(), String> {
    match pairs.iter().find(|(_, v)| !v.is_scalar()) {
        None => Ok(()),
        Some((key, value)) => Err(format!(
            "nested containers are not part of the v1 job protocol (`{key}` is {}); \
             send a versioned envelope ({{\"v\": 2, ...}}) instead",
            value.type_name()
        )),
    }
}

/// The operation a [`JobSpec`] requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOp {
    /// Whole-circuit analytical sweep.
    Sweep,
    /// Single-site analytical EPP.
    Site,
    /// Single-cycle Monte-Carlo baseline.
    MonteCarlo,
    /// Multi-cycle frame expansion (+ optional simulation).
    MultiCycle,
}

/// One parsed job line, still in name/path form (nodes are resolved
/// against the loaded circuit by [`JobSpec::to_request`]).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// What to run.
    pub op: JobOp,
    /// Path of the netlist file (`.bench` or `.v`).
    pub netlist: String,
    /// Site name, for single-site operations.
    pub node: Option<String>,
    /// Cycles, for `multi_cycle`.
    pub cycles: Option<usize>,
    /// Vector budget / cap, for `monte_carlo`.
    pub vectors: Option<u64>,
    /// Simulation runs, for `multi_cycle` (enables the simulation leg).
    pub runs: Option<u64>,
    /// Mendo normalized-error target for the sequential stopping rule.
    pub target_error: Option<f64>,
    /// PRNG seed.
    pub seed: Option<u64>,
    /// How many top-ranked sites a sweep response should print.
    pub top: Option<usize>,
}

impl JobSpec {
    /// Default Monte-Carlo vector budget when a job does not set one.
    pub const DEFAULT_VECTORS: u64 = 10_000;
    /// Default PRNG seed (the simulator crate's customary seed).
    pub const DEFAULT_SEED: u64 = 0xE5EED;

    /// Resolves this spec against a loaded circuit into a typed
    /// [`Request`].
    ///
    /// # Errors
    ///
    /// Returns a message if a required field is missing, a field was
    /// set that this op does not read (a silently dropped option would
    /// silently change results — e.g. `runs` on a `monte_carlo` job,
    /// where the intended budget is spelled `vectors`), or a node name
    /// does not exist in the circuit.
    pub fn to_request(&self, circuit: &Circuit) -> Result<Request, String> {
        self.reject_unread_fields()?;
        let node = |spec: &JobSpec| -> Result<ser_netlist::NodeId, String> {
            let name = spec
                .node
                .as_deref()
                .ok_or_else(|| "`node` is required for this op".to_owned())?;
            circuit
                .find(name)
                .ok_or_else(|| format!("no node named `{name}` in `{}`", circuit.name()))
        };
        match self.op {
            JobOp::Sweep => Ok(Request::Sweep(SweepRequest::default())),
            JobOp::Site => Ok(Request::Site(SiteRequest { site: node(self)? })),
            JobOp::MonteCarlo => Ok(Request::MonteCarlo(MonteCarloRequest {
                site: node(self)?,
                vectors: self.vectors.unwrap_or(Self::DEFAULT_VECTORS),
                target_error: self.target_error,
                seed: self.seed.unwrap_or(Self::DEFAULT_SEED),
            })),
            JobOp::MultiCycle => Ok(Request::MultiCycle(MultiCycleRequest {
                site: node(self)?,
                cycles: self
                    .cycles
                    .ok_or_else(|| "`cycles` is required for multi_cycle".to_owned())?,
                monte_carlo: self.runs.map(|runs| MultiCycleMcRequest {
                    runs,
                    target_error: self.target_error,
                    seed: self.seed.unwrap_or(Self::DEFAULT_SEED),
                }),
            })),
        }
    }

    /// Fails when a field was set that [`to_request`](Self::to_request)
    /// would not read for this op — the "fail loudly" contract extends
    /// from unknown keys to known-but-irrelevant ones.
    fn reject_unread_fields(&self) -> Result<(), String> {
        let op_name = match self.op {
            JobOp::Sweep => "sweep",
            JobOp::Site => "site",
            JobOp::MonteCarlo => "monte_carlo",
            JobOp::MultiCycle => "multi_cycle",
        };
        // Per op: the optional fields the conversion actually consumes.
        let allowed: &[&str] = match self.op {
            JobOp::Sweep => &["top"],
            JobOp::Site => &["node"],
            JobOp::MonteCarlo => &["node", "vectors", "target_error", "seed"],
            JobOp::MultiCycle => &["node", "cycles", "runs", "target_error", "seed"],
        };
        let set: [(&str, bool); 7] = [
            ("node", self.node.is_some()),
            ("cycles", self.cycles.is_some()),
            ("vectors", self.vectors.is_some()),
            ("runs", self.runs.is_some()),
            ("target_error", self.target_error.is_some()),
            ("seed", self.seed.is_some()),
            ("top", self.top.is_some()),
        ];
        for (field, is_set) in set {
            if is_set && !allowed.contains(&field) {
                return Err(format!(
                    "`{field}` is not read by op `{op_name}` (allowed: {})",
                    allowed.join(", ")
                ));
            }
        }
        // target_error without a simulation leg would also be dropped.
        if self.op == JobOp::MultiCycle && self.target_error.is_some() && self.runs.is_none() {
            return Err(
                "`target_error` on multi_cycle needs `runs` (the simulation leg's cap)".to_owned(),
            );
        }
        Ok(())
    }
}

/// Builds a [`JobSpec`] from already-parsed **flat** key/value pairs.
/// Shared by [`parse_job_line`] and the protocol layer's v1 detection
/// path (which has already parsed the line once and must not parse it
/// twice).
///
/// # Errors
///
/// Returns a message for unknown ops/keys or values of the wrong type.
pub(crate) fn spec_from_pairs(pairs: Vec<(String, JsonValue)>) -> Result<JobSpec, String> {
    let mut spec = JobSpec {
        op: JobOp::Sweep,
        netlist: String::new(),
        node: None,
        cycles: None,
        vectors: None,
        runs: None,
        target_error: None,
        seed: None,
        top: None,
    };
    let mut saw_op = false;
    let mut saw_netlist = false;
    for (key, value) in pairs {
        match (key.as_str(), value) {
            ("op", JsonValue::Str(op)) => {
                spec.op = match op.as_str() {
                    "sweep" => JobOp::Sweep,
                    "site" | "epp" => JobOp::Site,
                    "monte_carlo" | "mc" => JobOp::MonteCarlo,
                    "multi_cycle" => JobOp::MultiCycle,
                    other => return Err(format!("unknown op `{other}`")),
                };
                saw_op = true;
            }
            ("netlist", JsonValue::Str(path)) => {
                spec.netlist = path;
                saw_netlist = true;
            }
            ("node", JsonValue::Str(name)) => spec.node = Some(name),
            ("cycles", JsonValue::Num(n)) => spec.cycles = Some(as_count(&key, n)? as usize),
            ("vectors", JsonValue::Num(n)) => spec.vectors = Some(as_count(&key, n)?),
            ("runs", JsonValue::Num(n)) => spec.runs = Some(as_count(&key, n)?),
            ("seed", JsonValue::Num(n)) => spec.seed = Some(as_count(&key, n)?),
            ("top", JsonValue::Num(n)) => spec.top = Some(as_count(&key, n)? as usize),
            ("target_error", JsonValue::Num(e)) => spec.target_error = Some(e),
            ("target_error", JsonValue::Null) => spec.target_error = None,
            (k, v) => return Err(format!("unknown or mistyped field `{k}` = {v:?}")),
        }
    }
    if !saw_op {
        return Err("missing required field `op`".to_owned());
    }
    if !saw_netlist {
        return Err("missing required field `netlist`".to_owned());
    }
    Ok(spec)
}

/// Parses one JSONL job line into a [`JobSpec`].
///
/// # Errors
///
/// Returns a message for malformed JSON, unknown ops/keys, or values
/// of the wrong type.
pub fn parse_job_line(line: &str) -> Result<JobSpec, String> {
    spec_from_pairs(parse_flat_object(line)?)
}

fn as_count(key: &str, n: f64) -> Result<u64, String> {
    JsonValue::Num(n)
        .as_count()
        .ok_or_else(|| format!("`{key}` must be a non-negative integer, got {n}"))
}

/// Renders one served response in the v1 shape — a single flat-ish
/// JSON line, no envelope, no frames; `top` caps a sweep's ranking
/// (`None` = the dialect's customary 5). Bit-for-bit the PR 3 format,
/// so recorded v1 clients keep parsing.
#[must_use]
pub fn v1_response_json(top: Option<usize>, circuit: &Circuit, response: &Response) -> String {
    format!(
        "{{{}}}",
        crate::protocol::response_fields(top, circuit, response, false)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    #[test]
    fn parses_a_full_job_line() {
        let spec = parse_job_line(
            r#"{"op": "monte_carlo", "netlist": "a.bench", "node": "y", "vectors": 5000, "target_error": 0.1, "seed": 7}"#,
        )
        .unwrap();
        assert_eq!(spec.op, JobOp::MonteCarlo);
        assert_eq!(spec.netlist, "a.bench");
        assert_eq!(spec.node.as_deref(), Some("y"));
        assert_eq!(spec.vectors, Some(5000));
        assert_eq!(spec.target_error, Some(0.1));
        assert_eq!(spec.seed, Some(7));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_job_line("").is_err());
        assert!(parse_job_line("{}").is_err(), "missing op/netlist");
        assert!(parse_job_line(r#"{"op": "sweep"}"#).is_err(), "no netlist");
        assert!(parse_job_line(r#"{"op": "warp", "netlist": "x"}"#).is_err());
        assert!(
            parse_job_line(r#"{"op": "sweep", "netlist": "x", "bogus": 1}"#).is_err(),
            "unknown keys fail loudly"
        );
        assert!(
            parse_job_line(r#"{"op": "sweep", "netlist": "x", "op": "site"}"#).is_err(),
            "duplicate keys rejected"
        );
        assert!(
            parse_job_line(r#"{"op": "sweep", "netlist": "x"} trailing"#).is_err(),
            "trailing input rejected"
        );
        assert!(
            parse_job_line(r#"{"op": "sweep", "netlist": "x", "vectors": 1.5}"#).is_err(),
            "fractional counts rejected"
        );
        // Nested containers stay out of the v1 dialect.
        let err =
            parse_job_line(r#"{"op": "sweep", "netlist": "x", "sites": ["G0"]}"#).unwrap_err();
        assert!(err.contains("nested containers"), "{err}");
    }

    #[test]
    fn string_escapes_round_trip() {
        let pairs =
            parse_flat_object(r#"{"a": "q\"\\\nA", "b": true, "c": null, "d": -2.5e1}"#).unwrap();
        assert_eq!(pairs[0].1, JsonValue::Str("q\"\\\nA".to_owned()));
        assert_eq!(pairs[1].1, JsonValue::Bool(true));
        assert_eq!(pairs[2].1, JsonValue::Null);
        assert_eq!(pairs[3].1, JsonValue::Num(-25.0));
        assert_eq!(json_escape("q\"\\\n"), "q\\\"\\\\\\n");
    }

    #[test]
    fn to_request_resolves_nodes() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let spec = parse_job_line(r#"{"op": "site", "netlist": "t.bench", "node": "y"}"#).unwrap();
        let req = spec.to_request(&c).unwrap();
        assert!(matches!(req, Request::Site(s) if s.site == c.find("y").unwrap()));
        let bad = parse_job_line(r#"{"op": "site", "netlist": "t.bench", "node": "zz"}"#).unwrap();
        assert!(bad.to_request(&c).is_err());
        // multi_cycle without cycles is rejected at conversion time.
        let mc =
            parse_job_line(r#"{"op": "multi_cycle", "netlist": "t.bench", "node": "y"}"#).unwrap();
        assert!(mc.to_request(&c).is_err());
    }

    #[test]
    fn fields_the_op_does_not_read_are_rejected() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        // `runs` on monte_carlo would silently lose the intended budget
        // (monte_carlo spells it `vectors`): fail loudly instead.
        let spec = parse_job_line(
            r#"{"op": "monte_carlo", "netlist": "t.bench", "node": "y", "runs": 50000}"#,
        )
        .unwrap();
        let err = spec.to_request(&c).unwrap_err();
        assert!(err.contains("`runs` is not read"), "{err}");
        // `node` on a sweep, `top` on a site query: same contract.
        let spec = parse_job_line(r#"{"op": "sweep", "netlist": "t.bench", "node": "y"}"#).unwrap();
        assert!(spec.to_request(&c).is_err());
        let spec = parse_job_line(r#"{"op": "site", "netlist": "t.bench", "node": "y", "top": 3}"#)
            .unwrap();
        assert!(spec.to_request(&c).is_err());
        // target_error on multi_cycle without the simulation leg.
        let spec = parse_job_line(
            r#"{"op": "multi_cycle", "netlist": "t.bench", "node": "y", "cycles": 2, "target_error": 0.1}"#,
        )
        .unwrap();
        let err = spec.to_request(&c).unwrap_err();
        assert!(err.contains("needs `runs`"), "{err}");
    }
}
