//! The std-only TCP front door.
//!
//! [`TcpTransport`] implements [`Transport`] over a plain
//! `std::net::TcpListener`: each accepted socket becomes one
//! [`Connection`] served on its own thread by
//! [`serve`](crate::protocol::serve), all sharing one
//! [`ProtocolEngine`](crate::protocol::ProtocolEngine) — and through
//! it one warm [`SerService`](crate::SerService), so every client
//! benefits from every other client's compiled sessions and cached
//! responses. The suite is offline and dependency-free by
//! construction, so there is no async runtime and no TLS here: just
//! blocking sockets, a read timeout, and threads.
//!
//! Graceful shutdown is cooperative: [`TcpShutdownHandle::shutdown`]
//! raises a flag and pokes the listener awake. The accept loop stops
//! handing out connections, in-flight requests run to completion, and
//! per-connection readers (which poll the flag on a short read
//! timeout) close within [`SHUTDOWN_POLL`] — after which `serve`
//! joins every connection thread and returns.

use std::io::{self, BufRead, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::protocol::{Connection, FrameSink, LineStream, Transport};

/// How long a blocked connection read waits before re-checking the
/// shutdown flag. The bound on how stale a shutdown can look to an
/// idle client.
pub const SHUTDOWN_POLL: Duration = Duration::from_millis(200);

/// Back-off before retrying a failed `accept` — long enough that an
/// out-of-file-descriptors condition doesn't busy-spin, short enough
/// that recovery is prompt once fds free up.
pub const ACCEPT_RETRY_DELAY: Duration = Duration::from_millis(100);

/// How long one frame write may stall before the connection is
/// declared dead. Progress frames are written from shared executor
/// workers, so a client that stops reading (full receive window)
/// would otherwise block a worker indefinitely; with this timeout the
/// worker stalls **at most once** per connection — the first failed
/// write kills the [`FrameSink`] and every later send fails fast.
pub const WRITE_STALL_LIMIT: Duration = Duration::from_secs(10);

/// A TCP server socket serving protocol connections. See the
/// [module docs](self).
///
/// # Examples
///
/// ```no_run
/// use std::sync::Arc;
/// use ser_service::{serve, EngineConfig, ProtocolEngine, SerService, TcpTransport};
///
/// let service = Arc::new(SerService::with_defaults());
/// let engine = Arc::new(ProtocolEngine::new(service, EngineConfig::default()));
/// let mut transport = TcpTransport::bind("127.0.0.1:7453")?;
/// let handle = transport.shutdown_handle(); // keep, to stop the server later
/// serve(&mut transport, &engine)?;          // blocks until handle.shutdown()
/// # drop(handle);
/// # Ok::<(), std::io::Error>(())
/// ```
#[derive(Debug)]
pub struct TcpTransport {
    listener: TcpListener,
    local: SocketAddr,
    shutdown: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
    idle_reaped: Arc<AtomicU64>,
}

/// Stops a [`TcpTransport`] from another thread. Cloneable; any clone
/// can shut the server down, all observe the same flag.
#[derive(Debug, Clone)]
pub struct TcpShutdownHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl TcpShutdownHandle {
    /// Initiates a graceful shutdown: no new connections are accepted,
    /// in-flight requests finish, connection readers close within
    /// [`SHUTDOWN_POLL`]. Idempotent.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the accept call; the dummy connection is recognized
        // (flag already set) and dropped, never served. A wildcard
        // bind address (0.0.0.0 / ::) is not connectable everywhere,
        // so the poke targets loopback on the bound port instead.
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            poke.set_ip(match poke {
                SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect_timeout(&poke, SHUTDOWN_POLL);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }
}

impl TcpTransport {
    /// Binds the listener. Use port 0 to let the OS pick (read it back
    /// with [`local_addr`](Self::local_addr)).
    ///
    /// # Errors
    ///
    /// Propagates bind failures (port in use, permission).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        Ok(TcpTransport {
            listener,
            local,
            shutdown: Arc::new(AtomicBool::new(false)),
            idle_timeout: None,
            idle_reaped: Arc::new(AtomicU64::new(0)),
        })
    }

    /// Reap connections that go `timeout` without delivering a single
    /// byte: the reader returns end-of-stream, the serve loop closes
    /// the connection, and `reaped` (typically
    /// [`SerService::idle_reap_counter`](crate::SerService::idle_reap_counter),
    /// so reaps surface in [`ServiceStats`](crate::ServiceStats)) is
    /// incremented. The timer resets on every received byte, so a
    /// slow-trickling client is *not* idle; a request already in
    /// flight is unaffected — reaping only interrupts the wait for the
    /// **next** line.
    #[must_use]
    pub fn with_idle_timeout(mut self, timeout: Duration, reaped: Arc<AtomicU64>) -> Self {
        self.idle_timeout = Some(timeout);
        self.idle_reaped = reaped;
        self
    }

    /// The bound address (with the OS-assigned port resolved).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// A handle that can stop this server from any thread.
    #[must_use]
    pub fn shutdown_handle(&self) -> TcpShutdownHandle {
        TcpShutdownHandle {
            addr: self.local,
            shutdown: Arc::clone(&self.shutdown),
        }
    }
}

impl Transport for TcpTransport {
    /// Blocks for the next client. A daemon's accept loop must outlive
    /// transient failures: `ECONNABORTED` (a client reset between
    /// connect and accept), `EMFILE`/`ENFILE` (fd pressure under
    /// thread-per-connection load) and per-socket setup errors drop
    /// *that* connection attempt — after a short back-off for the
    /// resource-exhaustion cases — and keep accepting; only shutdown
    /// ends the loop.
    fn accept(&mut self) -> io::Result<Option<Connection>> {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(None);
            }
            let (stream, peer) = match self.listener.accept() {
                Ok(accepted) => accepted,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Back off so an out-of-fds condition doesn't spin,
                    // then retry (re-checking the shutdown flag).
                    std::thread::sleep(ACCEPT_RETRY_DELAY);
                    continue;
                }
            };
            if self.shutdown.load(Ordering::Acquire) {
                // The shutdown poke (or a client racing it): drop it.
                return Ok(None);
            }
            let configured = (|| -> io::Result<TcpStream> {
                // Frames are small and latency-bound: without NODELAY,
                // Nagle on the reply side plus the client's delayed ACK
                // costs ~40ms per round trip on loopback.
                stream.set_nodelay(true)?;
                // A reply write that cannot make progress (client
                // stopped reading) fails after this bound instead of
                // pinning an executor worker forever.
                stream.set_write_timeout(Some(WRITE_STALL_LIMIT))?;
                // The read half polls the shutdown flag; one socket,
                // two handles (reads and writes don't contend).
                stream.set_read_timeout(Some(SHUTDOWN_POLL))?;
                stream.try_clone()
            })();
            let reader = match configured {
                Ok(reader) => reader,
                // A socket that fails setup (already reset, fd clone
                // refused) is this connection's problem, not the
                // daemon's: drop it and accept the next client.
                Err(_) => continue,
            };
            return Ok(Some(Connection {
                lines: Box::new(TcpLines {
                    reader: BufReader::new(reader),
                    pending: Vec::new(),
                    shutdown: Arc::clone(&self.shutdown),
                    idle_timeout: self.idle_timeout,
                    last_activity: Instant::now(),
                    reaped: Arc::clone(&self.idle_reaped),
                }),
                sink: FrameSink::new(stream),
                peer: peer.to_string(),
            }));
        }
    }
}

/// Line reader over a TCP stream with a read timeout, so a connection
/// blocked on an idle client still notices shutdown.
struct TcpLines {
    reader: BufReader<TcpStream>,
    /// Partial line carried across timeouts, as **raw bytes**: a
    /// `String`-based `read_line` would discard consumed bytes when a
    /// timeout lands mid-multibyte-character (its UTF-8 guard rolls
    /// the buffer back, but the socket has already given the bytes
    /// up); `read_until` into a byte buffer preserves every consumed
    /// byte across timeout windows and TCP segment boundaries, and
    /// UTF-8 is validated once per complete line.
    pending: Vec<u8>,
    shutdown: Arc<AtomicBool>,
    /// Reap this connection once no byte has arrived for this long
    /// (`None` = never). Checked on the same [`SHUTDOWN_POLL`] wakeups
    /// that watch the shutdown flag, so reaping needs no extra thread
    /// and lands within one poll interval of the deadline.
    idle_timeout: Option<Duration>,
    /// When the last byte arrived (or the connection was accepted).
    last_activity: Instant,
    /// Server-wide count of idle-reaped connections.
    reaped: Arc<AtomicU64>,
}

impl TcpLines {
    /// Takes the accumulated bytes as one line (terminator stripped).
    /// Invalid UTF-8 becomes replacement characters, which the JSON
    /// parser then reports as a structured `parse` error — bad bytes
    /// are the client's bug to hear about, not grounds to kill the
    /// connection.
    fn take_line(&mut self) -> String {
        let bytes = std::mem::take(&mut self.pending);
        let mut line = String::from_utf8_lossy(&bytes).into_owned();
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        line
    }
}

impl LineStream for TcpLines {
    fn next_line(&mut self) -> io::Result<Option<String>> {
        // The idle clock measures the wait for *this* line, so it
        // starts now — time spent serving the previous request does
        // not count as idleness.
        self.last_activity = Instant::now();
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return Ok(None);
            }
            let before = self.pending.len();
            match self.reader.read_until(b'\n', &mut self.pending) {
                // EOF. A final unterminated fragment is still a line —
                // the parser reports the truncation instead of the
                // server swallowing it.
                Ok(0) => {
                    if self.pending.is_empty() {
                        return Ok(None);
                    }
                    return Ok(Some(self.take_line()));
                }
                Ok(_) => return Ok(Some(self.take_line())),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Timeout: whatever was read so far stays in
                    // `pending`. Any byte that did arrive this window
                    // resets the idle timer — only true silence reaps.
                    if self.pending.len() > before {
                        self.last_activity = Instant::now();
                    }
                    if let Some(limit) = self.idle_timeout {
                        if self.last_activity.elapsed() >= limit {
                            self.reaped.fetch_add(1, Ordering::Relaxed);
                            return Ok(None);
                        }
                    }
                    continue;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}
