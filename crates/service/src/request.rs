//! Typed requests and responses of the [`SerService`](crate::SerService).
//!
//! Requests name sites by [`NodeId`] (resolve names with
//! [`Circuit::find`](ser_netlist::Circuit::find) first) and responses
//! return the engines' native result types — the sweep response keeps
//! its results in the flat [`SweepResults`] arena rather than exploding
//! them into per-site heap objects.

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use ser_epp::{MultiCycleMcEstimate, MultiCycleResult, PolarityMode, SiteEpp, SweepResults};
use ser_netlist::NodeId;
use ser_sim::SiteEstimate;
use ser_sp::SpError;

/// One unit of work against one circuit.
#[derive(Debug, Clone)]
pub enum Request {
    /// Analytical EPP over many sites (the whole circuit by default).
    Sweep(SweepRequest),
    /// Analytical EPP for a single site.
    Site(SiteRequest),
    /// Multi-cycle frame expansion for a single site, optionally
    /// cross-checked by differential sequential simulation.
    MultiCycle(MultiCycleRequest),
    /// Single-cycle Monte-Carlo baseline for a single site.
    MonteCarlo(MonteCarloRequest),
}

/// Analytical sweep request.
#[derive(Debug, Clone)]
pub struct SweepRequest {
    /// Explicit site list, or `None` for every node of the circuit.
    pub sites: Option<Vec<NodeId>>,
    /// Polarity handling; [`PolarityMode::Tracked`] is the paper's
    /// method and the default.
    pub polarity: PolarityMode,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            sites: None,
            polarity: PolarityMode::Tracked,
        }
    }
}

/// Single-site analytical request.
#[derive(Debug, Clone, Copy)]
pub struct SiteRequest {
    /// The error site.
    pub site: NodeId,
}

/// Multi-cycle request: analytical frame expansion, plus an optional
/// simulation cross-check.
#[derive(Debug, Clone, Copy)]
pub struct MultiCycleRequest {
    /// The error site.
    pub site: NodeId,
    /// Clock cycles to follow the error through (≥ 1; cycle 0 is the
    /// SEU cycle).
    pub cycles: usize,
    /// When set, also run the differential sequential simulation.
    pub monte_carlo: Option<MultiCycleMcRequest>,
}

/// Simulation leg of a [`MultiCycleRequest`].
#[derive(Debug, Clone, Copy)]
pub struct MultiCycleMcRequest {
    /// Fixed run count — or, when [`target_error`](Self::target_error)
    /// is set, the hard cap of the sequential stopping rule.
    pub runs: u64,
    /// Mendo normalized-error target; `Some(ε)` switches from a fixed
    /// run count to the inverse-binomial stopping rule.
    pub target_error: Option<f64>,
    /// PRNG seed (responses are deterministic given a seed).
    pub seed: u64,
}

/// Single-cycle Monte-Carlo request.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloRequest {
    /// The error site.
    pub site: NodeId,
    /// Fixed vector count — or, when [`target_error`](Self::target_error)
    /// is set, the hard cap of the sequential stopping rule.
    pub vectors: u64,
    /// Mendo normalized-error target; `Some(ε)` uses
    /// [`SequentialMonteCarlo`](ser_sim::SequentialMonteCarlo) instead
    /// of a fixed vector count.
    pub target_error: Option<f64>,
    /// PRNG seed (responses are deterministic given a seed).
    pub seed: u64,
}

/// Everything the service reports about how a request was served.
#[derive(Debug, Clone)]
pub struct ResponseMeta {
    /// Name of the circuit the request ran against.
    pub circuit: String,
    /// The session cache key ([`Circuit::structural_hash`](ser_netlist::Circuit::structural_hash)).
    pub netlist_hash: u64,
    /// `true` when the request hit an already-compiled warm session;
    /// `false` when this request paid the compile.
    pub warm_session: bool,
    /// Wall-clock time from submission to assembled response.
    pub wall: Duration,
}

/// A served request: provenance plus the engine's native result.
#[derive(Debug, Clone)]
pub struct Response {
    /// How the request was served.
    pub meta: ResponseMeta,
    /// The result payload.
    pub payload: ResponsePayload,
}

/// The result payload of a [`Response`].
#[derive(Debug, Clone)]
pub enum ResponsePayload {
    /// Sweep results, arena-backed (one allocation pool for all sites),
    /// behind an `Arc` so the service's cross-request response cache
    /// serves repeat whole-circuit sweeps without copying the arena.
    Sweep(Arc<SweepResults>),
    /// Single-site analytical result.
    Site(SiteEpp),
    /// Multi-cycle results.
    MultiCycle {
        /// The analytical frame expansion.
        analytic: MultiCycleResult,
        /// The simulation cross-check, when requested.
        monte_carlo: Option<MultiCycleMcEstimate>,
    },
    /// Monte-Carlo estimate.
    MonteCarlo(SiteEstimate),
}

impl Response {
    /// The sweep arena, if this was a sweep response.
    #[must_use]
    pub fn as_sweep(&self) -> Option<&SweepResults> {
        match &self.payload {
            ResponsePayload::Sweep(results) => Some(results.as_ref()),
            _ => None,
        }
    }

    /// The single-site result, if this was a site response.
    #[must_use]
    pub fn as_site(&self) -> Option<&SiteEpp> {
        match &self.payload {
            ResponsePayload::Site(site) => Some(site),
            _ => None,
        }
    }

    /// The Monte-Carlo estimate, if this was a Monte-Carlo response.
    #[must_use]
    pub fn as_monte_carlo(&self) -> Option<&SiteEstimate> {
        match &self.payload {
            ResponsePayload::MonteCarlo(estimate) => Some(estimate),
            _ => None,
        }
    }
}

/// Why a request could not be served.
#[derive(Debug)]
pub enum ServiceError {
    /// Session compilation failed (bad circuit, SP divergence).
    Compile(SpError),
    /// A request named a site outside the circuit.
    SiteOutOfRange {
        /// The offending site.
        site: NodeId,
        /// Number of nodes in the circuit.
        len: usize,
    },
    /// A request parameter was out of range.
    InvalidRequest(String),
    /// A request asked for more work than the operator-configured
    /// ceiling allows ([`SerServiceConfig`](crate::SerServiceConfig)'s
    /// `max_vectors` / `max_cycles` / `max_runs`). Rejected up front,
    /// before the request reaches the executor.
    CapExceeded {
        /// Which knob was exceeded (`"vectors"`, `"cycles"`, `"runs"`).
        what: &'static str,
        /// What the request asked for.
        requested: u64,
        /// The configured ceiling.
        cap: u64,
    },
    /// The simulation leg failed structurally.
    Simulation(ser_netlist::NetlistError),
    /// The request was aborted at a cooperative checkpoint: an
    /// explicit `cancel` or an expired deadline. Partial results were
    /// dropped, never cached or spliced.
    Cancelled(ser_netlist::CancelCause),
    /// The service itself failed: a worker thread died before
    /// reporting its parts. The request is lost but the daemon keeps
    /// serving — this maps to the wire's `internal` code instead of
    /// panicking the collector thread.
    Internal(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Compile(e) => write!(f, "session compilation failed: {e}"),
            ServiceError::SiteOutOfRange { site, len } => {
                write!(f, "site {site} out of range for a {len}-node circuit")
            }
            ServiceError::InvalidRequest(msg) => write!(f, "invalid request: {msg}"),
            ServiceError::CapExceeded {
                what,
                requested,
                cap,
            } => {
                write!(
                    f,
                    "requested {requested} {what} exceeds the service cap of {cap}"
                )
            }
            ServiceError::Simulation(e) => write!(f, "simulation failed: {e}"),
            ServiceError::Cancelled(cause) => write!(f, "request aborted: {cause}"),
            ServiceError::Internal(msg) => write!(f, "internal service failure: {msg}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Compile(e) => Some(e),
            ServiceError::Simulation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpError> for ServiceError {
    fn from(e: SpError) -> Self {
        ServiceError::Compile(e)
    }
}
