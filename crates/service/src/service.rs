//! The multi-circuit batch front-end.
//!
//! [`SerService`] is the ROADMAP's "heavy traffic" loop made concrete:
//! compiled [`AnalysisSession`]s are kept warm in a bounded LRU keyed
//! by [`Circuit::structural_hash`], and every request — sweep, site,
//! multi-cycle, Monte-Carlo — runs as small jobs on **one shared
//! executor**, so concurrent requests against different circuits
//! interleave across the worker pool instead of serializing.
//!
//! The service exists because the session layer became *owned*: an
//! `Arc<AnalysisSession>` is `Send + Sync + 'static`, so it can sit in
//! a cache, be handed to any number of concurrent requests, and be
//! moved into executor closures — none of which the old
//! `AnalysisSession<'circuit>` could do.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use ser_epp::{
    multi_cycle_monte_carlo, multi_cycle_monte_carlo_sequential_cancellable, AnalysisSession, Edit,
    MultiCycleMcAbort, MultiCycleMcEstimate, MultiCycleResult, PolarityMode, SiteEpp, SweepResults,
    WhatIfAbort, WhatIfOutcome, WhatIfSession,
};
use ser_netlist::{CancelToken, Circuit, NodeId, PlanCache};
use ser_sim::{MonteCarlo, SequentialMonteCarlo, SiteEstimate};
use ser_sp::{InputProbs, SpVector};

use crate::executor::Executor;
use crate::request::{
    MultiCycleRequest, Request, Response, ResponseMeta, ResponsePayload, ServiceError, SiteRequest,
};
use crate::sync::lock_clean;

/// Tuning knobs of a [`SerService`].
#[derive(Debug, Clone)]
pub struct SerServiceConfig {
    /// Warm sessions kept in the LRU; the least-recently-used session
    /// is evicted when a new circuit arrives at capacity. Must be ≥ 1.
    pub max_sessions: usize,
    /// Executor worker threads. Must be ≥ 1.
    pub threads: usize,
    /// Sites per executor job when a sweep is fanned out. Smaller
    /// batches interleave better with concurrent requests; larger
    /// batches have less queue overhead. Must be ≥ 1.
    pub sweep_batch_sites: usize,
    /// Whole-circuit sweep responses kept in the cross-request cache
    /// (LRU, keyed by `(netlist hash, inputs revision, polarity)`).
    /// `0` disables response caching.
    pub max_sweep_responses: usize,
    /// Directory of the persistent compile-artifact cache
    /// ([`PlanCache`]). When set, session compilation first tries the
    /// cached cone plans for the circuit's structural hash (skipping
    /// plan compilation entirely on a hit) and persists freshly built
    /// plans on a miss — so a restarted or newly spawned replica pays
    /// cold plan compile at most once per circuit, ever. `None`
    /// disables persistence.
    pub plan_cache_dir: Option<PathBuf>,
    /// Byte budget for the persistent plan cache directory. When set,
    /// every store evicts least-recently-used `.serplan` entries
    /// (oldest mtime first; loads re-date their entry) until the
    /// directory fits — so a long-lived fleet's cache disk stays
    /// bounded. `None` (the default) leaves the directory unbounded.
    /// Ignored when `plan_cache_dir` is `None`.
    pub plan_cache_max_bytes: Option<u64>,
    /// Largest Monte-Carlo vector count one request may ask for
    /// (fixed-count or sequential-rule cap alike). Requests over the
    /// ceiling are rejected with [`ServiceError::CapExceeded`] *before*
    /// any executor job is enqueued, so one greedy client cannot pin a
    /// worker for hours. Must be ≥ 1.
    pub max_vectors: u64,
    /// Largest multi-cycle frame-expansion depth one request may ask
    /// for. Same up-front rejection discipline. Must be ≥ 1.
    pub max_cycles: usize,
    /// Largest multi-cycle simulation run count one request may ask
    /// for. Same up-front rejection discipline. Must be ≥ 1.
    pub max_runs: u64,
    /// What-if sessions kept warm, one per base netlist (LRU, keyed by
    /// [`Circuit::structural_hash`]). Each holds the edit stack and the
    /// dense base sweep that make incremental re-analysis cheap. Must
    /// be ≥ 1.
    pub max_whatif_sessions: usize,
}

impl Default for SerServiceConfig {
    fn default() -> Self {
        SerServiceConfig {
            max_sessions: 8,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            sweep_batch_sites: 256,
            max_sweep_responses: 32,
            plan_cache_dir: None,
            plan_cache_max_bytes: None,
            // Permissive but finite: far above anything the benches or
            // the paper's experiments ask for, low enough that a typo'd
            // `1e18` cannot wedge a worker.
            max_vectors: 1_000_000_000,
            max_cycles: 4_096,
            max_runs: 1_000_000_000,
            max_whatif_sessions: 4,
        }
    }
}

/// Counters the service keeps (monotonic over its lifetime).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests that found a warm session in the cache.
    pub session_hits: u64,
    /// Requests that had to compile a session.
    pub session_misses: u64,
    /// Sessions evicted to make room.
    pub evictions: u64,
    /// Sessions currently cached.
    pub sessions_cached: usize,
    /// Whole-circuit sweep requests served straight from the
    /// cross-request response cache (no executor jobs at all).
    pub sweep_cache_hits: u64,
    /// Cacheable sweep requests that had to run (and then populated
    /// the cache).
    pub sweep_cache_misses: u64,
    /// Sweep responses currently cached.
    pub sweep_responses_cached: usize,
    /// Session compiles whose cone plans were loaded from the
    /// persistent artifact cache (plan compilation skipped).
    pub plan_cache_hits: u64,
    /// Session compiles that built plans fresh while a persistent
    /// cache was configured (the entry was absent, stale or invalid;
    /// the built plans were persisted for next time).
    pub plan_cache_misses: u64,
    /// Persistent-cache entries evicted by the byte cap
    /// ([`SerServiceConfig::plan_cache_max_bytes`]) across every store
    /// this service performed. Always 0 on an unbounded cache.
    pub plan_cache_evictions: u64,
    /// What-if sessions currently warm (one per base netlist).
    pub whatif_sessions_cached: usize,
    /// Requests aborted at a cooperative checkpoint — an explicit
    /// cancel or an expired deadline. Partial work was dropped; no
    /// cache was populated from a cancelled request.
    pub requests_cancelled: u64,
    /// Connections the TCP front door reaped for idling past the
    /// configured idle timeout (see
    /// [`TcpTransport::with_idle_timeout`](crate::TcpTransport::with_idle_timeout)).
    pub idle_reaped: u64,
}

struct CacheEntry {
    session: Arc<AnalysisSession>,
    last_used: u64,
}

struct SessionCache {
    entries: HashMap<u64, CacheEntry>,
    /// Logical clock for LRU recency.
    tick: u64,
}

/// Cross-request sweep-response cache key: `(netlist hash, polarity)`.
/// The *inputs* dimension is not part of the key — every entry pins
/// the exact `Arc<SpVector>` its sweep was computed under, and lookups
/// require pointer identity with the resolved session's current SP
/// vector. That is what makes invalidation airtight: session revision
/// numbers are per-clone counters that diverged clones (or an
/// evict-recompile cycle) can collide on, but an SP *allocation* is
/// unique per distribution for as long as anything references it —
/// and the entry itself keeps it alive, so pointer reuse is
/// impossible. [`SerService::set_inputs`] additionally purges the
/// hash's entries so stale arenas don't linger until overwritten.
type SweepKey = (u64, PolarityMode);

struct SweepCacheEntry {
    /// The SP vector the cached sweep was computed under (identity is
    /// the validity check — see [`SweepKey`]).
    sp: Arc<SpVector>,
    results: Arc<SweepResults>,
    last_used: u64,
}

/// Evicts the least-recently-used entry when `entries` sits at
/// `capacity` and does not already contain `key`. Shared by the
/// session cache, the sweep-response cache, `set_inputs` and the
/// protocol engine's netlist cache — one eviction policy, written
/// once. Returns whether an entry was evicted.
pub(crate) fn evict_lru_at_capacity<K: std::hash::Hash + Eq + Clone, V>(
    entries: &mut HashMap<K, V>,
    key: &K,
    capacity: usize,
    last_used: impl Fn(&V) -> u64,
) -> bool {
    if entries.contains_key(key) || entries.len() < capacity {
        return false;
    }
    let lru = entries
        .iter()
        .min_by_key(|(_, e)| last_used(e))
        .map(|(k, _)| k.clone());
    match lru {
        Some(lru) => {
            entries.remove(&lru);
            true
        }
        // Capacity 0 with an empty map: there is nothing to evict and
        // nothing to make room for — inserting is the caller's call.
        None => false,
    }
}

struct SweepCache {
    entries: HashMap<SweepKey, SweepCacheEntry>,
    tick: u64,
}

/// One warm what-if session per base netlist. The entry is an
/// `Arc<Mutex<…>>` so the edit/revert critical section is **per
/// netlist**: a long re-sweep of one circuit's what-if stack never
/// blocks edits against another circuit (the outer map lock is held
/// only for the lookup).
struct WhatIfEntry {
    /// The *base* (unedited) circuit the stack grew from — the
    /// collision guard, exactly like the session cache's `same_circuit`
    /// check: a hash-colliding different netlist must never be handed
    /// another circuit's edit stack.
    base: Arc<Circuit>,
    session: Arc<Mutex<WhatIfSession>>,
    last_used: u64,
}

struct WhatIfCache {
    entries: HashMap<u64, WhatIfEntry>,
    tick: u64,
}

impl std::fmt::Debug for WhatIfCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WhatIfCache")
            .field("sessions", &self.entries.len())
            .finish()
    }
}

/// The multi-circuit SER service. See the [module docs](self).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ser_netlist::parse_bench;
/// use ser_service::{Request, SerService, SweepRequest};
///
/// let c: Arc<_> = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?.into();
/// let service = SerService::with_defaults();
/// let response = service.submit(&c, Request::Sweep(SweepRequest::default()))?;
/// let sweep = response.as_sweep().unwrap();
/// assert_eq!(sweep.len(), c.len());
/// assert!(!response.meta.warm_session, "first request compiles");
/// // Same netlist again: served from the warm cache.
/// let again = service.submit(&c, Request::Sweep(SweepRequest::default()))?;
/// assert!(again.meta.warm_session);
/// assert_eq!(again.as_sweep().unwrap(), sweep);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct SerService {
    config: SerServiceConfig,
    executor: Executor,
    cache: Mutex<SessionCache>,
    sweep_cache: Mutex<SweepCache>,
    /// Last `set_inputs` distribution per netlist hash — consulted when
    /// a session is (re)compiled, so eviction cannot silently revert a
    /// circuit to default inputs.
    inputs_overrides: Mutex<HashMap<u64, InputProbs>>,
    /// Persistent compile-artifact cache (`None` when not configured).
    plan_cache: Option<PlanCache>,
    /// Warm what-if sessions, one per base netlist hash.
    whatif: Mutex<WhatIfCache>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    sweep_hits: AtomicU64,
    sweep_misses: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    plan_evictions: AtomicU64,
    cancelled: AtomicU64,
    /// Shared with the TCP transport's per-connection line streams —
    /// they bump it when an idle connection is reaped, the service
    /// only reads it for [`stats`](Self::stats).
    idle_reaped: Arc<AtomicU64>,
}

impl std::fmt::Debug for SessionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionCache")
            .field("sessions", &self.entries.len())
            .finish()
    }
}

impl std::fmt::Debug for SweepCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepCache")
            .field("responses", &self.entries.len())
            .finish()
    }
}

/// A progress event emitted while a streaming-capable request runs —
/// the service-level signal the wire protocol turns into `progress`
/// frames. Events are advisory: they never change what the final
/// [`Response`] contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// A sweep's executor parts completing; `sites_done` is cumulative.
    Sweep {
        /// Sites evaluated so far.
        sites_done: usize,
        /// Sites the sweep will evaluate in total.
        sites_total: usize,
    },
    /// A sequential (Mendo-rule) Monte-Carlo run's trial counters, at
    /// doubling vector thresholds starting at
    /// [`MC_PROGRESS_FIRST_AT`](SerService::MC_PROGRESS_FIRST_AT).
    MonteCarlo {
        /// Vectors simulated so far.
        vectors: u64,
        /// Sensitized observations so far.
        sensitized: u64,
    },
}

/// A progress callback. Invoked from executor workers (Monte-Carlo)
/// and from the collecting thread (sweep parts), so it must be
/// `Send + Sync`; keep it cheap — it runs on the request's hot path.
pub type ProgressFn = Arc<dyn Fn(Progress) + Send + Sync>;

/// One job of a cancellable batch
/// ([`SerService::submit_batch_cancellable`]): the circuit, the typed
/// request, an optional per-job progress sink and an optional per-job
/// cancel token.
pub type BatchJob = (
    Arc<Circuit>,
    Request,
    Option<ProgressFn>,
    Option<CancelToken>,
);

/// One executor job's output, tagged `(job, part)` for reassembly.
enum Part {
    Sweep(SweepResults),
    Site(SiteEpp),
    MultiCycle(MultiCycleResult, Option<MultiCycleMcEstimate>),
    MonteCarlo(SiteEstimate),
}

/// `(job, part, result, completed_at)` — the timestamp is taken by the
/// worker the moment the part finishes, so per-job wall time never
/// includes time spent preparing or collecting *other* jobs.
type PartMsg = (usize, usize, Result<Part, ServiceError>, Instant);

/// A validated job waiting for its parts.
struct Prepared {
    session: Arc<AnalysisSession>,
    warm: bool,
    started: Instant,
    /// Number of executor jobs this request fans out to.
    parts: usize,
    request: Request,
    /// A response served straight from the sweep cache (no parts).
    cached: Option<ResponsePayload>,
    /// When set, the assembled sweep response populates the cache
    /// under this key, pinned to this SP vector.
    cache_key: Option<(SweepKey, Arc<SpVector>)>,
    /// Progress sink, when the submitter asked for streaming.
    progress: Option<ProgressFn>,
    /// Total sweep sites (for [`Progress::Sweep`] events; 0 for
    /// non-sweep requests).
    sweep_sites_total: usize,
}

impl SerService {
    /// Creates a service with an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if any configuration field is 0.
    #[must_use]
    pub fn new(config: SerServiceConfig) -> Self {
        assert!(config.max_sessions > 0, "cache at least one session");
        assert!(
            config.sweep_batch_sites > 0,
            "batches need at least one site"
        );
        assert!(config.max_vectors > 0, "allow at least one vector");
        assert!(config.max_cycles > 0, "allow at least one cycle");
        assert!(config.max_runs > 0, "allow at least one run");
        assert!(
            config.max_whatif_sessions > 0,
            "cache at least one what-if session"
        );
        SerService {
            executor: Executor::new(config.threads),
            plan_cache: config
                .plan_cache_dir
                .clone()
                .map(|dir| PlanCache::new(dir).with_max_bytes(config.plan_cache_max_bytes)),
            config,
            cache: Mutex::new(SessionCache {
                entries: HashMap::new(),
                tick: 0,
            }),
            sweep_cache: Mutex::new(SweepCache {
                entries: HashMap::new(),
                tick: 0,
            }),
            whatif: Mutex::new(WhatIfCache {
                entries: HashMap::new(),
                tick: 0,
            }),
            inputs_overrides: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            sweep_hits: AtomicU64::new(0),
            sweep_misses: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_evictions: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            idle_reaped: Arc::default(),
        }
    }

    /// Creates a service with [`SerServiceConfig::default`].
    #[must_use]
    pub fn with_defaults() -> Self {
        SerService::new(SerServiceConfig::default())
    }

    /// The configuration in force.
    #[must_use]
    pub fn config(&self) -> &SerServiceConfig {
        &self.config
    }

    /// Current cache/request counters.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            session_hits: self.hits.load(Ordering::Relaxed),
            session_misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            sessions_cached: lock_clean(&self.cache).entries.len(),
            sweep_cache_hits: self.sweep_hits.load(Ordering::Relaxed),
            sweep_cache_misses: self.sweep_misses.load(Ordering::Relaxed),
            sweep_responses_cached: lock_clean(&self.sweep_cache).entries.len(),
            plan_cache_hits: self.plan_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_misses.load(Ordering::Relaxed),
            plan_cache_evictions: self.plan_evictions.load(Ordering::Relaxed),
            whatif_sessions_cached: lock_clean(&self.whatif).entries.len(),
            requests_cancelled: self.cancelled.load(Ordering::Relaxed),
            idle_reaped: self.idle_reaped.load(Ordering::Relaxed),
        }
    }

    /// The shared idle-reap counter the TCP transport bumps when it
    /// reaps an idle connection; surfaced as
    /// [`ServiceStats::idle_reaped`].
    #[must_use]
    pub fn idle_reap_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.idle_reaped)
    }

    /// Looks up a cached whole-circuit sweep response, refreshing its
    /// LRU recency on hit. `sp` must be the resolved session's current
    /// SP vector: an entry computed under any other vector — stale
    /// inputs, a diverged clone, even a hash-colliding circuit — fails
    /// the pointer-identity check and reads as a miss.
    fn sweep_cache_get(&self, key: &SweepKey, sp: &Arc<SpVector>) -> Option<Arc<SweepResults>> {
        let mut cache = lock_clean(&self.sweep_cache);
        cache.tick += 1;
        let tick = cache.tick;
        let entry = cache.entries.get_mut(key)?;
        if !Arc::ptr_eq(&entry.sp, sp) {
            return None;
        }
        entry.last_used = tick;
        Some(Arc::clone(&entry.results))
    }

    /// Inserts a whole-circuit sweep response pinned to the SP vector
    /// it was computed under, evicting the least-recently-used entry
    /// at capacity.
    fn sweep_cache_put(&self, key: SweepKey, sp: Arc<SpVector>, results: Arc<SweepResults>) {
        if self.config.max_sweep_responses == 0 {
            return;
        }
        let mut cache = lock_clean(&self.sweep_cache);
        cache.tick += 1;
        let tick = cache.tick;
        let SweepCache { entries, .. } = &mut *cache;
        evict_lru_at_capacity(entries, &key, self.config.max_sweep_responses, |e| {
            e.last_used
        });
        entries.insert(
            key,
            SweepCacheEntry {
                sp,
                results,
                last_used: tick,
            },
        );
    }

    /// Re-derives the signal probabilities of `circuit`'s warm session
    /// under a new input distribution — the service-level
    /// `set_inputs`: the session keeps its structural artifacts, cone
    /// plans, compiled simulator and scratch pool, its revision is
    /// bumped, and every cached sweep response for this netlist is
    /// dropped. The distribution is also **recorded per netlist hash**,
    /// so if the session is later LRU-evicted, its recompilation
    /// restores the same inputs instead of silently reverting to the
    /// defaults. Returns the new session revision (informational —
    /// response-cache validity is keyed by SP-vector identity, not by
    /// this number).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Compile`] when the session cannot be
    /// compiled or the new probabilities do not converge; the warm
    /// session, the response cache and the recorded inputs are left
    /// untouched in that case.
    pub fn set_inputs(
        &self,
        circuit: &Arc<Circuit>,
        inputs: InputProbs,
    ) -> Result<u64, ServiceError> {
        let (session, _) = self.session(circuit)?;
        let mut updated = (*session).clone();
        updated.set_inputs(inputs.clone())?;
        let revision = updated.revision();
        let key = circuit.structural_hash();

        // Record the distribution so eviction + recompile restores it…
        lock_clean(&self.inputs_overrides).insert(key, inputs);

        // …purge this netlist's cached sweep responses…
        lock_clean(&self.sweep_cache)
            .entries
            .retain(|&(hash, _), _| hash != key);

        // …then swap the updated session in (same eviction discipline
        // as `session`, in case the entry vanished between the locks).
        let mut cache = lock_clean(&self.cache);
        cache.tick += 1;
        let tick = cache.tick;
        let SessionCache { entries, .. } = &mut *cache;
        if evict_lru_at_capacity(entries, &key, self.config.max_sessions, |e| e.last_used) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.insert(
            key,
            CacheEntry {
                session: Arc::new(updated),
                last_used: tick,
            },
        );
        Ok(revision)
    }

    /// The warm what-if session for `circuit`: the per-netlist edit
    /// stack behind [`whatif_apply`](Self::whatif_apply) /
    /// [`whatif_revert`](Self::whatif_revert). Created on first use by
    /// cloning the warm [`AnalysisSession`] (so the what-if loop never
    /// pays a cold compile while the analysis session is cached) and
    /// seeding the dense base sweep from the cross-request response
    /// cache when its arena is still valid for the session's current SP
    /// vector — a client that swept first starts editing without
    /// re-sweeping at all.
    fn whatif_session(
        &self,
        circuit: &Arc<Circuit>,
        cancel: Option<&CancelToken>,
    ) -> Result<Arc<Mutex<WhatIfSession>>, ServiceError> {
        let key = circuit.structural_hash();
        {
            let mut cache = lock_clean(&self.whatif);
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(&key) {
                if same_circuit(&entry.base, circuit) {
                    entry.last_used = tick;
                    return Ok(Arc::clone(&entry.session));
                }
                // Hash collision between different netlists: the slot
                // is contended, never shared (see the session cache).
                cache.entries.remove(&key);
            }
        }

        // Build outside the lock — the base sweep can be expensive.
        let (session, _) = self.session_cancellable(circuit, cancel)?;
        let sp = Arc::clone(session.signal_probabilities_arc());
        let wf = match self.sweep_cache_get(&(key, PolarityMode::Tracked), &sp) {
            Some(results) => {
                WhatIfSession::with_base_results((*session).clone(), results, self.config.threads)
            }
            None => WhatIfSession::new((*session).clone(), self.config.threads),
        };
        let wf = Arc::new(Mutex::new(wf));

        let mut cache = lock_clean(&self.whatif);
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(&key) {
            if same_circuit(&entry.base, circuit) {
                // Lost a build race; adopt the winner (its stack may
                // already hold edits this caller wants to extend).
                entry.last_used = tick;
                return Ok(Arc::clone(&entry.session));
            }
            cache.entries.remove(&key);
        }
        let WhatIfCache { entries, .. } = &mut *cache;
        evict_lru_at_capacity(entries, &key, self.config.max_whatif_sessions, |e| {
            e.last_used
        });
        entries.insert(
            key,
            WhatIfEntry {
                base: Arc::clone(circuit),
                session: Arc::clone(&wf),
                last_used: tick,
            },
        );
        Ok(wf)
    }

    /// Applies one incremental edit to `circuit`'s what-if stack and
    /// returns the engine's outcome: new total SER, per-site deltas
    /// over the dirty region, and the re-sweep tier split. The first
    /// call against a netlist creates the stack from the warm session
    /// (see [`whatif_session`](Self::whatif_session)); later calls pay
    /// only the dirty-region re-analysis.
    ///
    /// `edit` is a *resolver*, not an [`Edit`]: it receives the stack's
    /// **current** (possibly already-edited) circuit, because that is
    /// the circuit names must resolve against — after a TMR edit the
    /// interesting nodes (`u__r0`, voter internals) do not exist in the
    /// base netlist the caller loaded.
    ///
    /// # Errors
    ///
    /// Whatever `edit` returns, or [`ServiceError::Compile`] when the
    /// edited circuit's signal probabilities cannot be computed (the
    /// stack is left untouched).
    pub fn whatif_apply(
        &self,
        circuit: &Arc<Circuit>,
        edit: impl FnOnce(&Circuit) -> Result<Edit, ServiceError>,
    ) -> Result<WhatIfOutcome, ServiceError> {
        self.whatif_apply_cancellable(circuit, edit, None)
    }

    /// [`whatif_apply`](Self::whatif_apply) with a cooperative
    /// [`CancelToken`]: the token is polled at the session compile's
    /// plan-build checkpoints and at the re-sweep's tier boundaries
    /// (SP recompute → reference tier → planned tier → splice). A trip
    /// leaves the edit stack exactly as it was — the partially
    /// re-analyzed state is dropped, never pushed.
    ///
    /// # Errors
    ///
    /// Everything [`whatif_apply`](Self::whatif_apply) returns, plus
    /// [`ServiceError::Cancelled`] when the token trips.
    pub fn whatif_apply_cancellable(
        &self,
        circuit: &Arc<Circuit>,
        edit: impl FnOnce(&Circuit) -> Result<Edit, ServiceError>,
        cancel: Option<&CancelToken>,
    ) -> Result<WhatIfOutcome, ServiceError> {
        let wf = self.whatif_session(circuit, cancel)?;
        let mut wf = lock_clean(&wf);
        let edit = edit(wf.circuit())?;
        wf.apply_cancellable(edit, cancel).map_err(|e| match e {
            WhatIfAbort::Compile(e) => ServiceError::Compile(e),
            WhatIfAbort::Cancelled(cause) => {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                ServiceError::Cancelled(cause)
            }
        })
    }

    /// Pops the most recent what-if edit of `circuit`'s stack and
    /// returns `(remaining depth, restored total SER)`. Reverting never
    /// recomputes anything — the previous state was kept verbatim.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidRequest`] when the netlist has no what-if
    /// stack or the stack is already at its base state.
    pub fn whatif_revert(&self, circuit: &Arc<Circuit>) -> Result<(usize, f64), ServiceError> {
        let key = circuit.structural_hash();
        let wf = {
            let mut cache = lock_clean(&self.whatif);
            cache.tick += 1;
            let tick = cache.tick;
            match cache.entries.get_mut(&key) {
                Some(entry) if same_circuit(&entry.base, circuit) => {
                    entry.last_used = tick;
                    Arc::clone(&entry.session)
                }
                _ => {
                    return Err(ServiceError::InvalidRequest(
                        "no what-if session for this netlist — apply an edit first".into(),
                    ))
                }
            }
        };
        let mut wf = lock_clean(&wf);
        match wf.revert() {
            Some(total) => Ok((wf.depth(), total)),
            None => Err(ServiceError::InvalidRequest(
                "what-if stack is at the base state — nothing to revert".into(),
            )),
        }
    }

    /// The warm session for `circuit`: cached if its netlist hash is
    /// known, compiled (session + cone plans) and cached otherwise.
    /// Returns the session and whether it was warm.
    ///
    /// Compilation happens outside the cache lock, so a slow compile
    /// never blocks requests against other circuits; if two threads
    /// race to compile the same netlist, the first insert wins and the
    /// loser adopts it.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Compile`] when the circuit cannot be
    /// compiled (cyclic, SP divergence).
    pub fn session(
        &self,
        circuit: &Arc<Circuit>,
    ) -> Result<(Arc<AnalysisSession>, bool), ServiceError> {
        self.session_cancellable(circuit, None)
    }

    /// [`session`](Self::session) with a cooperative [`CancelToken`]:
    /// on a cache miss the cone-plan compile polls the token at its
    /// merge/anchor checkpoints and a trip aborts the compile with
    /// [`ServiceError::Cancelled`]. The session cache is left without
    /// an entry (nothing partial is inserted) and the session's plan
    /// slot stays cold, so the next — uncancelled — request compiles
    /// from scratch and gets bit-identical plans.
    ///
    /// # Errors
    ///
    /// Everything [`session`](Self::session) returns, plus
    /// [`ServiceError::Cancelled`] when the token trips mid-compile.
    pub fn session_cancellable(
        &self,
        circuit: &Arc<Circuit>,
        cancel: Option<&CancelToken>,
    ) -> Result<(Arc<AnalysisSession>, bool), ServiceError> {
        let key = circuit.structural_hash();
        {
            let mut cache = lock_clean(&self.cache);
            cache.tick += 1;
            let tick = cache.tick;
            if let Some(entry) = cache.entries.get_mut(&key) {
                if same_circuit(entry.session.circuit_arc(), circuit) {
                    entry.last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(&entry.session), true));
                }
                // A 64-bit hash collision between two *different*
                // netlists: never serve the wrong session. The colliding
                // circuits contend for one slot (correct, just not warm
                // for both); fall through and recompile.
                cache.entries.remove(&key);
            }
        }

        // Miss: compile outside the lock, under the last distribution
        // `set_inputs` recorded for this netlist (if any) so an LRU
        // eviction never silently reverts a circuit to default inputs.
        // Cone plans are forced here so a "warm" session really is
        // warm — the first sweep against it pays no plan build.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let override_inputs = lock_clean(&self.inputs_overrides).get(&key).cloned();
        let session = Arc::new(match override_inputs {
            Some(inputs) => AnalysisSession::with_inputs(Arc::clone(circuit), inputs)?,
            None => AnalysisSession::new(Arc::clone(circuit))?,
        });
        // Try the persistent artifact cache first: a valid entry primes
        // the session's plan slot and the force below returns it without
        // compiling. Absent/corrupt/stale entries read as a miss; the
        // freshly built plans are then persisted (best-effort) so the
        // next cold process skips the compile.
        let primed = match &self.plan_cache {
            Some(cache) => match cache.load(key) {
                // `load` verified version, key and checksum; the length
                // check below guards the residual 64-bit fingerprint
                // collision (a different circuit of identical size would
                // produce wrong plans undetected, but so would any other
                // fingerprint consumer — the session cache's equality
                // check already gates reuse of *sessions* across
                // colliding netlists).
                Some(plans) if plans.len() == circuit.len() => {
                    self.plan_hits.fetch_add(1, Ordering::Relaxed);
                    session.epp().artifacts().prime_cone_plans(Arc::new(plans))
                }
                _ => {
                    self.plan_misses.fetch_add(1, Ordering::Relaxed);
                    false
                }
            },
            None => false,
        };
        {
            let epp = session.epp();
            let built = epp
                .artifacts()
                .cone_plans_cancellable(circuit, cancel)
                .map_err(ServiceError::Cancelled)?;
            if !primed {
                if let (Some(cache), Some(plans)) = (&self.plan_cache, built) {
                    // Best-effort persist; the eviction count is the
                    // only part of a failed store worth surfacing.
                    if let Ok(outcome) = cache.store(key, plans) {
                        self.plan_evictions
                            .fetch_add(outcome.evicted as u64, Ordering::Relaxed);
                    }
                }
            }
        }

        let mut cache = lock_clean(&self.cache);
        cache.tick += 1;
        let tick = cache.tick;
        if let Some(entry) = cache.entries.get_mut(&key) {
            if same_circuit(entry.session.circuit_arc(), circuit) {
                // Lost a compile race; adopt the winner.
                entry.last_used = tick;
                return Ok((Arc::clone(&entry.session), true));
            }
            cache.entries.remove(&key);
        }
        let SessionCache { entries, .. } = &mut *cache;
        if evict_lru_at_capacity(entries, &key, self.config.max_sessions, |e| e.last_used) {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        entries.insert(
            key,
            CacheEntry {
                session: Arc::clone(&session),
                last_used: tick,
            },
        );
        Ok((session, false))
    }

    /// Serves one request. Equivalent to a one-element
    /// [`submit_batch`](Self::submit_batch); the request's jobs still
    /// fan out across the shared executor.
    ///
    /// # Errors
    ///
    /// See [`ServiceError`].
    pub fn submit(
        &self,
        circuit: &Arc<Circuit>,
        request: Request,
    ) -> Result<Response, ServiceError> {
        self.submit_batch(vec![(Arc::clone(circuit), request)])
            .pop()
            .unwrap_or_else(|| {
                Err(ServiceError::Internal(
                    "batch returned no response for its one job".into(),
                ))
            })
    }

    /// Serves one request, streaming [`Progress`] events into
    /// `on_progress` while it runs: sweep part completions as they are
    /// collected, and — for sequential Monte-Carlo requests — interim
    /// trial counters from the worker at doubling vector thresholds
    /// (first at [`MC_PROGRESS_FIRST_AT`](Self::MC_PROGRESS_FIRST_AT),
    /// so short runs stay quiet and long runs emit O(log n) events).
    ///
    /// The response is **identical** to [`submit`](Self::submit) with
    /// the same arguments: progress reporting observes the run, it
    /// never reshapes it. Requests served straight from the response
    /// cache complete without any progress events.
    ///
    /// # Errors
    ///
    /// See [`ServiceError`].
    pub fn submit_streaming(
        &self,
        circuit: &Arc<Circuit>,
        request: Request,
        on_progress: ProgressFn,
    ) -> Result<Response, ServiceError> {
        self.submit_cancellable(circuit, request, Some(on_progress), None)
    }

    /// Serves one request under an optional progress sink and an
    /// optional cooperative [`CancelToken`] — the fully general single
    /// submit. The token is polled between executor parts (sweep site
    /// batches), between Monte-Carlo observation blocks, at the
    /// multi-cycle simulation's block boundaries and inside a cold
    /// session's plan compile; a trip aborts the request with
    /// [`ServiceError::Cancelled`], drops every partial part, and
    /// populates **no** cache. Requests without a token are unaffected.
    ///
    /// # Errors
    ///
    /// See [`ServiceError`]; [`ServiceError::Cancelled`] when the
    /// token trips before the request completes.
    pub fn submit_cancellable(
        &self,
        circuit: &Arc<Circuit>,
        request: Request,
        on_progress: Option<ProgressFn>,
        cancel: Option<CancelToken>,
    ) -> Result<Response, ServiceError> {
        self.submit_batch_cancellable(vec![(Arc::clone(circuit), request, on_progress, cancel)])
            .pop()
            .unwrap_or_else(|| {
                Err(ServiceError::Internal(
                    "batch returned no response for its one job".into(),
                ))
            })
    }

    /// Serves a batch of requests, possibly against different circuits.
    /// Every request's jobs are enqueued up front, so sweeps on
    /// distinct circuits run interleaved on the shared workers; the
    /// responses come back in submission order.
    ///
    /// Results are **bit-identical** to running each request directly
    /// on its session: the sweep fan-out re-partitions sites across
    /// jobs, but each site is evaluated by the same plan kernel over
    /// the same shared artifacts.
    #[must_use]
    pub fn submit_batch(
        &self,
        jobs: Vec<(Arc<Circuit>, Request)>,
    ) -> Vec<Result<Response, ServiceError>> {
        self.submit_batch_with(
            jobs.into_iter()
                .map(|(circuit, request)| (circuit, request, None))
                .collect(),
        )
    }

    /// [`submit_batch`](Self::submit_batch) with an optional progress
    /// sink per job (see [`submit_streaming`](Self::submit_streaming)).
    #[must_use]
    pub fn submit_batch_with(
        &self,
        jobs: Vec<(Arc<Circuit>, Request, Option<ProgressFn>)>,
    ) -> Vec<Result<Response, ServiceError>> {
        self.submit_batch_cancellable(
            jobs.into_iter()
                .map(|(circuit, request, progress)| (circuit, request, progress, None))
                .collect(),
        )
    }

    /// [`submit_batch_with`](Self::submit_batch_with) with an optional
    /// cooperative [`CancelToken`] per job (see
    /// [`submit_cancellable`](Self::submit_cancellable)). Tokens are
    /// independent: cancelling one job of a batch never disturbs its
    /// neighbours — their parts keep running and their responses stay
    /// bit-identical to a solo run.
    #[must_use]
    pub fn submit_batch_cancellable(
        &self,
        jobs: Vec<BatchJob>,
    ) -> Vec<Result<Response, ServiceError>> {
        let (tx, rx) = mpsc::channel::<PartMsg>();
        let mut prepared: Vec<Result<Prepared, ServiceError>> = Vec::with_capacity(jobs.len());

        for (job_idx, (circuit, request, progress, cancel)) in jobs.into_iter().enumerate() {
            match self.prepare(&circuit, request, progress, cancel, job_idx, &tx) {
                Ok(p) => prepared.push(Ok(p)),
                Err(e) => prepared.push(Err(e)),
            }
        }
        drop(tx);

        // Collect every part; per-job wall time runs from the job's own
        // submission to the worker-side completion stamp of its slowest
        // part — never inflated by neighbouring jobs' compiles or by
        // when this thread got around to draining the channel.
        let expected: usize = prepared
            .iter()
            .map(|p| p.as_ref().map(|p| p.parts).unwrap_or(0))
            .sum();
        let mut parts: Vec<Vec<(usize, Result<Part, ServiceError>)>> =
            prepared.iter().map(|_| Vec::new()).collect();
        let mut walls: Vec<Duration> = prepared
            .iter()
            .map(|p| match p {
                // Jobs with no executor parts (e.g. an empty site list)
                // are complete as soon as they were prepared.
                Ok(p) if p.parts == 0 => p.started.elapsed(),
                _ => Duration::ZERO,
            })
            .collect();
        let mut sites_done: Vec<usize> = vec![0; prepared.len()];
        for _ in 0..expected {
            // A worker that panics dies without sending; its `tx` clone
            // drops and `recv` errors once the live parts are drained.
            // Stop collecting — the part-count check below converts the
            // shortfall into a structured `Internal` error for the
            // affected job instead of panicking the collector (and,
            // through a poisoned lock, the whole daemon).
            let Ok((job_idx, part_idx, part, completed_at)) = rx.recv() else {
                break;
            };
            if let Ok(prep) = &prepared[job_idx] {
                walls[job_idx] =
                    walls[job_idx].max(completed_at.saturating_duration_since(prep.started));
                // Sweep parts double as progress ticks: report them as
                // they land, from this (collecting) thread.
                if let (Some(sink), Ok(Part::Sweep(results))) = (&prep.progress, &part) {
                    sites_done[job_idx] += results.len();
                    sink(Progress::Sweep {
                        sites_done: sites_done[job_idx],
                        sites_total: prep.sweep_sites_total,
                    });
                }
            }
            parts[job_idx].push((part_idx, part));
        }

        let responses: Vec<Result<Response, ServiceError>> = prepared
            .into_iter()
            .zip(parts)
            .zip(walls)
            .map(|((prep, mut parts), wall)| {
                let prep = prep?;
                let payload = match prep.cached {
                    Some(payload) => payload,
                    None => {
                        if parts.len() != prep.parts {
                            return Err(ServiceError::Internal(format!(
                                "a worker died mid-request: {} of {} parts reported",
                                parts.len(),
                                prep.parts
                            )));
                        }
                        parts.sort_unstable_by_key(|&(idx, _)| idx);
                        let payload = assemble(&prep.request, parts)?;
                        if let (Some((key, sp)), ResponsePayload::Sweep(results)) =
                            (prep.cache_key, &payload)
                        {
                            self.sweep_cache_put(key, sp, Arc::clone(results));
                        }
                        payload
                    }
                };
                Ok(Response {
                    meta: ResponseMeta {
                        circuit: prep.session.circuit().name().to_owned(),
                        netlist_hash: prep.session.circuit().structural_hash(),
                        warm_session: prep.warm,
                        wall,
                    },
                    payload,
                })
            })
            .collect();
        for response in &responses {
            if matches!(response, Err(ServiceError::Cancelled(_))) {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
            }
        }
        responses
    }

    /// First vector threshold at which a streaming sequential
    /// Monte-Carlo run reports [`Progress::MonteCarlo`]; later reports
    /// come at each doubling (512, 1024, …), so a run of `n` vectors
    /// emits ⌈log₂(n / 256)⌉ + 1 events — enough cadence for a client
    /// progress bar, bounded even for million-vector runs.
    pub const MC_PROGRESS_FIRST_AT: u64 = 256;

    /// Validates one request, resolves its session and enqueues its
    /// executor jobs. Returns the bookkeeping needed to reassemble.
    fn prepare(
        &self,
        circuit: &Arc<Circuit>,
        request: Request,
        progress: Option<ProgressFn>,
        cancel: Option<CancelToken>,
        job_idx: usize,
        tx: &mpsc::Sender<PartMsg>,
    ) -> Result<Prepared, ServiceError> {
        let started = Instant::now();
        if let Some(token) = &cancel {
            token.check().map_err(ServiceError::Cancelled)?;
        }
        validate(circuit, &request, &self.config)?;
        let (session, warm) = self.session_cancellable(circuit, cancel.as_ref())?;

        // Whole-circuit sweeps are a pure function of the netlist, the
        // SP vector and the polarity — serve repeats straight from the
        // response cache, enqueueing nothing.
        let mut cache_key = None;
        if let Request::Sweep(req) = &request {
            if req.sites.is_none() && self.config.max_sweep_responses > 0 {
                let key = (circuit.structural_hash(), req.polarity);
                let sp = Arc::clone(session.signal_probabilities_arc());
                if let Some(results) = self.sweep_cache_get(&key, &sp) {
                    self.sweep_hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Prepared {
                        session,
                        warm,
                        started,
                        parts: 0,
                        request,
                        cached: Some(ResponsePayload::Sweep(results)),
                        cache_key: None,
                        progress: None,
                        sweep_sites_total: 0,
                    });
                }
                self.sweep_misses.fetch_add(1, Ordering::Relaxed);
                cache_key = Some((key, sp));
            }
        }

        let mut sweep_sites_total = 0;
        let parts = match &request {
            Request::Sweep(req) => {
                let sites: Vec<NodeId> = match &req.sites {
                    Some(sites) => sites.clone(),
                    None => circuit.node_ids().collect(),
                };
                sweep_sites_total = sites.len();
                let polarity = req.polarity;
                let batches: Vec<Vec<NodeId>> = sites
                    .chunks(self.config.sweep_batch_sites)
                    .map(<[NodeId]>::to_vec)
                    .collect();
                let n_parts = batches.len();
                for (part_idx, batch) in batches.into_iter().enumerate() {
                    let session = Arc::clone(&session);
                    let tx = tx.clone();
                    let cancel = cancel.clone();
                    self.executor.spawn(move || {
                        // Cancelled jobs still send their part — the
                        // collector blocks for exactly `parts` messages,
                        // so a silent return would hang the batch.
                        let part = match check(cancel.as_ref()) {
                            Err(e) => Err(e),
                            Ok(()) => {
                                let epp = session.epp();
                                Ok(Part::Sweep(epp.sweep_sites_with(
                                    &batch,
                                    polarity,
                                    1,
                                    session.workspace_pool(),
                                )))
                            }
                        };
                        let _ = tx.send((job_idx, part_idx, part, Instant::now()));
                    });
                }
                n_parts
            }
            Request::Site(SiteRequest { site }) => {
                let site = *site;
                let session = Arc::clone(&session);
                let tx = tx.clone();
                let cancel = cancel.clone();
                self.executor.spawn(move || {
                    let part = match check(cancel.as_ref()) {
                        Err(e) => Err(e),
                        Ok(()) => Ok(Part::Site(session.site(site))),
                    };
                    let _ = tx.send((job_idx, 0, part, Instant::now()));
                });
                1
            }
            Request::MultiCycle(req) => {
                let req = *req;
                let session = Arc::clone(&session);
                let tx = tx.clone();
                let sink = progress.clone();
                let cancel = cancel.clone();
                self.executor.spawn(move || {
                    let part = run_multi_cycle(&session, &req, sink, cancel.as_ref());
                    let _ = tx.send((job_idx, 0, part, Instant::now()));
                });
                1
            }
            Request::MonteCarlo(req) => {
                let req = *req;
                let session = Arc::clone(&session);
                let tx = tx.clone();
                let sink = progress.clone();
                let cancel = cancel.clone();
                self.executor.spawn(move || {
                    let part = (|| {
                        check(cancel.as_ref())?;
                        let estimate = match req.target_error {
                            Some(eps) => {
                                let rule = SequentialMonteCarlo::new(eps)
                                    .with_seed(req.seed)
                                    .with_max_vectors(req.vectors);
                                // The trial counters are reported at
                                // doubling vector thresholds when
                                // streaming; the observer cannot perturb
                                // the run (bit-identical), and the token
                                // is polled at the same block cadence.
                                let mut next = SerService::MC_PROGRESS_FIRST_AT;
                                rule.estimate_site_cancellable(
                                    session.bit_sim(),
                                    req.site,
                                    cancel.as_ref(),
                                    |vectors, sensitized| {
                                        if let Some(sink) = &sink {
                                            if vectors >= next {
                                                while next <= vectors {
                                                    next = next.saturating_mul(2);
                                                }
                                                sink(Progress::MonteCarlo {
                                                    vectors,
                                                    sensitized,
                                                });
                                            }
                                        }
                                    },
                                )
                                .map_err(ServiceError::Cancelled)?
                            }
                            None => MonteCarlo::new(req.vectors)
                                .with_seed(req.seed)
                                .estimate_site(session.bit_sim(), req.site),
                        };
                        Ok(Part::MonteCarlo(estimate))
                    })();
                    let _ = tx.send((job_idx, 0, part, Instant::now()));
                });
                1
            }
        };
        Ok(Prepared {
            session,
            warm,
            started,
            parts,
            request,
            cached: None,
            cache_key,
            progress,
            sweep_sites_total,
        })
    }
}

/// One executor job's cooperative token poll: `Ok` with no token or a
/// live one, [`ServiceError::Cancelled`] once the token trips.
fn check(cancel: Option<&CancelToken>) -> Result<(), ServiceError> {
    match cancel {
        Some(token) => token.check().map_err(ServiceError::Cancelled),
        None => Ok(()),
    }
}

/// `true` when a cached session's circuit really is the submitted one.
/// The pointer check covers callers that resubmit the same `Arc`; the
/// structural comparison (O(n), still far cheaper than a recompile)
/// guards against 64-bit hash collisions serving the wrong circuit.
fn same_circuit(cached: &Arc<Circuit>, submitted: &Arc<Circuit>) -> bool {
    Arc::ptr_eq(cached, submitted) || cached == submitted
}

/// The multi-cycle leg runs analytic + optional simulation in one job
/// (both are single-site and cheap relative to a sweep). With a
/// progress sink, the sequential (Mendo-rule) simulation reports its
/// run counters at the same doubling thresholds as the single-cycle
/// Monte-Carlo leg — same observer, same cadence, bit-identical result.
fn run_multi_cycle(
    session: &AnalysisSession,
    req: &MultiCycleRequest,
    progress: Option<ProgressFn>,
    cancel: Option<&CancelToken>,
) -> Result<Part, ServiceError> {
    check(cancel)?;
    // The frame-expansion tables are compiled once per session per SP
    // revision (`multi_cycle_cached`), so repeated multi-cycle requests
    // against a warm session skip the per-flip-flop sweep entirely.
    let analytic = session.multi_cycle_cached().site(req.site, req.cycles);
    let monte_carlo = match req.monte_carlo {
        None => None,
        Some(mc) => Some(match mc.target_error {
            Some(eps) => {
                let mut next = SerService::MC_PROGRESS_FIRST_AT;
                multi_cycle_monte_carlo_sequential_cancellable(
                    Arc::clone(session.circuit_arc()),
                    req.site,
                    req.cycles,
                    eps,
                    mc.runs,
                    mc.seed,
                    &mut |runs, successes| {
                        if let Some(sink) = &progress {
                            if runs >= next {
                                while next <= runs {
                                    next = next.saturating_mul(2);
                                }
                                sink(Progress::MonteCarlo {
                                    vectors: runs,
                                    sensitized: successes,
                                });
                            }
                        }
                    },
                    cancel,
                )
                .map_err(|e| match e {
                    MultiCycleMcAbort::Simulation(e) => ServiceError::Simulation(e),
                    MultiCycleMcAbort::Cancelled(cause) => ServiceError::Cancelled(cause),
                })?
            }
            None => {
                let cumulative = multi_cycle_monte_carlo(
                    Arc::clone(session.circuit_arc()),
                    req.site,
                    req.cycles,
                    mc.runs,
                    mc.seed,
                )
                .map_err(ServiceError::Simulation)?;
                MultiCycleMcEstimate {
                    cumulative,
                    runs: mc.runs,
                    stopped_by_rule: false,
                }
            }
        }),
    };
    Ok(Part::MultiCycle(analytic, monte_carlo))
}

/// Rejects malformed requests before any job is enqueued, so executor
/// jobs never panic — and enforces the operator-configured work
/// ceilings (`max_vectors` / `max_cycles` / `max_runs`) at the same
/// chokepoint, so an over-cap request is refused before it costs
/// anything.
fn validate(
    circuit: &Circuit,
    request: &Request,
    config: &SerServiceConfig,
) -> Result<(), ServiceError> {
    let len = circuit.len();
    let check_site = |site: NodeId| {
        if site.index() < len {
            Ok(())
        } else {
            Err(ServiceError::SiteOutOfRange { site, len })
        }
    };
    let check_eps = |eps: Option<f64>| match eps {
        Some(e) if !(e.is_finite() && e > 0.0 && e < 1.0) => Err(ServiceError::InvalidRequest(
            format!("target_error {e} outside (0, 1)"),
        )),
        _ => Ok(()),
    };
    let check_cap = |what: &'static str, requested: u64, cap: u64| {
        if requested > cap {
            Err(ServiceError::CapExceeded {
                what,
                requested,
                cap,
            })
        } else {
            Ok(())
        }
    };
    match request {
        Request::Sweep(req) => {
            for &site in req.sites.iter().flatten() {
                check_site(site)?;
            }
            Ok(())
        }
        Request::Site(req) => check_site(req.site),
        Request::MultiCycle(req) => {
            check_site(req.site)?;
            if req.cycles == 0 {
                return Err(ServiceError::InvalidRequest("cycles must be ≥ 1".into()));
            }
            check_cap("cycles", req.cycles as u64, config.max_cycles as u64)?;
            if let Some(mc) = req.monte_carlo {
                if mc.runs == 0 {
                    return Err(ServiceError::InvalidRequest("runs must be ≥ 1".into()));
                }
                check_cap("runs", mc.runs, config.max_runs)?;
                check_eps(mc.target_error)?;
            }
            Ok(())
        }
        Request::MonteCarlo(req) => {
            check_site(req.site)?;
            if req.vectors == 0 {
                return Err(ServiceError::InvalidRequest("vectors must be ≥ 1".into()));
            }
            check_cap("vectors", req.vectors, config.max_vectors)?;
            check_eps(req.target_error)
        }
    }
}

/// Reassembles a request's parts (already in part order) into its
/// response payload.
fn assemble(
    request: &Request,
    parts: Vec<(usize, Result<Part, ServiceError>)>,
) -> Result<ResponsePayload, ServiceError> {
    match request {
        Request::Sweep(_) => {
            let mut arenas = Vec::with_capacity(parts.len());
            for (_, part) in parts {
                match part? {
                    Part::Sweep(results) => arenas.push(results),
                    _ => unreachable!("sweep jobs produce sweep parts"),
                }
            }
            Ok(ResponsePayload::Sweep(Arc::new(SweepResults::concat(
                arenas,
            ))))
        }
        Request::Site(_) => match single(parts)? {
            Part::Site(site) => Ok(ResponsePayload::Site(site)),
            _ => unreachable!("site jobs produce site parts"),
        },
        Request::MultiCycle(_) => match single(parts)? {
            Part::MultiCycle(analytic, monte_carlo) => Ok(ResponsePayload::MultiCycle {
                analytic,
                monte_carlo,
            }),
            _ => unreachable!("multi-cycle jobs produce multi-cycle parts"),
        },
        Request::MonteCarlo(_) => match single(parts)? {
            Part::MonteCarlo(estimate) => Ok(ResponsePayload::MonteCarlo(estimate)),
            _ => unreachable!("monte-carlo jobs produce monte-carlo parts"),
        },
    }
}

fn single(parts: Vec<(usize, Result<Part, ServiceError>)>) -> Result<Part, ServiceError> {
    debug_assert_eq!(parts.len(), 1, "single-part request");
    match parts.into_iter().next() {
        Some((_, part)) => part,
        None => Err(ServiceError::Internal(
            "single-part request reported no parts".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression: with `capacity == 0` and an empty map there is
    /// nothing to evict — this used to `.expect("non-empty cache")`
    /// on the empty LRU scan and panic the daemon's collector thread.
    #[test]
    fn evict_at_zero_capacity_on_empty_map_does_not_panic() {
        let mut entries: HashMap<String, u64> = HashMap::new();
        assert!(!evict_lru_at_capacity(
            &mut entries,
            &"fresh".to_owned(),
            0,
            |&t| t
        ));
        assert!(entries.is_empty());
    }

    /// The normal path still evicts the least-recently-used entry
    /// when the map is at capacity and the key is new.
    #[test]
    fn evict_drops_lru_at_capacity() {
        let mut entries: HashMap<String, u64> = HashMap::new();
        entries.insert("old".into(), 1);
        entries.insert("new".into(), 2);
        assert!(evict_lru_at_capacity(
            &mut entries,
            &"fresh".to_owned(),
            2,
            |&t| t
        ));
        assert!(!entries.contains_key("old"));
        assert!(entries.contains_key("new"));
        // Present keys never evict, regardless of capacity pressure.
        assert!(!evict_lru_at_capacity(
            &mut entries,
            &"new".to_owned(),
            1,
            |&t| t
        ));
    }
}
