//! # ser-service — the multi-circuit SER estimation daemon
//!
//! The ROADMAP's "heavy traffic" loop: keep many compiled circuits
//! **warm** and serve typed estimation requests against them from one
//! shared worker pool — in-process, over stdin/stdout, or over TCP.
//!
//! The pieces, bottom up:
//!
//! - [`SerService`] — warm [`AnalysisSession`](ser_epp::AnalysisSession)s
//!   in a bounded LRU keyed by
//!   [`Circuit::structural_hash`](ser_netlist::Circuit::structural_hash),
//!   with typed requests ([`SweepRequest`], [`SiteRequest`],
//!   [`MultiCycleRequest`], [`MonteCarloRequest`]), arena-backed
//!   responses, cross-request response caching, streaming
//!   [`Progress`] events ([`SerService::submit_streaming`]), and warm
//!   per-netlist what-if stacks ([`SerService::whatif_apply`] /
//!   [`SerService::whatif_revert`]) for the interactive
//!   rank → harden → re-rank loop.
//! - [`Executor`] — the shared FIFO worker pool every request fans out
//!   onto, so concurrent sweeps on different circuits interleave
//!   instead of serializing.
//! - [`protocol`] — the versioned wire API: envelope requests
//!   (`{"v": 2, "id": ..., "op": ...}` with nested parameters),
//!   framed replies (`progress` / `chunk` / `result` / `error`),
//!   structured `{code, message}` errors, cooperative cancellation
//!   (the `cancel` op and per-request `deadline_ms`, both backed by
//!   [`CancelToken`](ser_netlist::CancelToken)s threaded through every
//!   compute leg), multi-job `batch` envelopes, and the
//!   transport-agnostic [`ProtocolEngine`] behind the [`Transport`]
//!   trait.
//! - [`net`] — the std-only TCP front door ([`TcpTransport`]):
//!   connection threads feeding the shared engine, optional
//!   shared-secret auth, per-client request quotas, a server-wide
//!   in-flight cap, idle-connection reaping, graceful shutdown.
//! - [`chaos`] — deterministic seeded fault injection
//!   ([`ChaosTransport`]): torn writes, mid-frame disconnects,
//!   injected read errors — the harness the robustness tests drive the
//!   whole stack through.
//! - [`jobs`] — the v1 compatibility shim: PR 3's flat JSONL job
//!   dialect, still served (a line without a `"v"` field), answered in
//!   its original shape.
//! - [`json`] — the hand-rolled nested JSON layer both dialects parse
//!   and render with (the suite is offline; no serde).
//!
//! All of it rides on the owned-session redesign: sessions are
//! `Send + Sync + 'static` `Arc` handles, so caching them, sharing them
//! across connection threads and moving them into executor closures is
//! safe by construction.
//!
//! # Examples
//!
//! Two circuits served interleaved from one warm cache:
//!
//! ```
//! use std::sync::Arc;
//! use ser_netlist::parse_bench;
//! use ser_service::{Request, SerService, SweepRequest};
//!
//! let and2: Arc<_> =
//!     parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?.into();
//! let or2: Arc<_> =
//!     parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "or2")?.into();
//! let service = SerService::with_defaults();
//! let responses = service.submit_batch(vec![
//!     (Arc::clone(&and2), Request::Sweep(SweepRequest::default())),
//!     (Arc::clone(&or2), Request::Sweep(SweepRequest::default())),
//! ]);
//! for r in &responses {
//!     assert_eq!(r.as_ref().unwrap().as_sweep().unwrap().len(), 3);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The same service as a TCP daemon (see [`net`] for the client side):
//!
//! ```no_run
//! use std::sync::Arc;
//! use ser_service::{serve, EngineConfig, ProtocolEngine, SerService, TcpTransport};
//!
//! let engine = Arc::new(ProtocolEngine::new(
//!     Arc::new(SerService::with_defaults()),
//!     EngineConfig { auth_token: Some("secret".into()), ..EngineConfig::default() },
//! ));
//! let mut transport = TcpTransport::bind("0.0.0.0:7453")?;
//! serve(&mut transport, &engine)?;
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
mod executor;
pub mod jobs;
pub mod json;
pub mod net;
pub mod protocol;
mod request;
mod service;
mod sync;

pub use chaos::{ChaosLines, ChaosSchedule, ChaosTransport, ChaosWriter};
pub use executor::Executor;
pub use jobs::{json_escape, parse_flat_object, parse_job_line, v1_response_json, JobOp, JobSpec};
pub use json::JsonValue;
pub use net::{TcpShutdownHandle, TcpTransport};
pub use protocol::{
    parse_wire_line, serve, BatchOp, CancelOp, Connection, EngineConfig, ErrorCode, FrameSink,
    LineStream, MonteCarloOp, MultiCycleMcOp, MultiCycleOp, ParsedLine, ProtocolEngine,
    SetInputsOp, SiteOp, StdioTransport, SweepOp, Transport, WhatIfEditOp, WhatIfOp,
    WhatIfRevertOp, WireError, WireOp, WireRequest, PROTOCOL_VERSION, WIRE_OPS,
};
pub use request::{
    MonteCarloRequest, MultiCycleMcRequest, MultiCycleRequest, Request, Response, ResponseMeta,
    ResponsePayload, ServiceError, SiteRequest, SweepRequest,
};
pub use service::{BatchJob, Progress, ProgressFn, SerService, SerServiceConfig, ServiceStats};
