//! # ser-service — the multi-circuit SER batch front-end
//!
//! The ROADMAP's "heavy traffic" loop: keep many compiled circuits
//! **warm** and serve typed estimation requests against them from one
//! shared worker pool.
//!
//! Three pieces:
//!
//! - [`SerService`] — warm [`AnalysisSession`](ser_epp::AnalysisSession)s
//!   in a bounded LRU keyed by
//!   [`Circuit::structural_hash`](ser_netlist::Circuit::structural_hash),
//!   with typed requests ([`SweepRequest`], [`SiteRequest`],
//!   [`MultiCycleRequest`], [`MonteCarloRequest`]) and arena-backed
//!   responses.
//! - [`Executor`] — the shared FIFO worker pool every request fans out
//!   onto, so concurrent sweeps on different circuits interleave
//!   instead of serializing.
//! - [`jobs`] — the JSONL job protocol `ser-cli serve` / `ser-cli
//!   batch` speak (hand-rolled flat-object JSON; the suite is offline).
//!
//! All of it rides on the owned-session redesign: sessions are
//! `Send + Sync + 'static` `Arc` handles, so caching them, sharing them
//! across request threads and moving them into executor closures is
//! safe by construction.
//!
//! # Examples
//!
//! Two circuits served interleaved from one warm cache:
//!
//! ```
//! use std::sync::Arc;
//! use ser_netlist::parse_bench;
//! use ser_service::{Request, SerService, SweepRequest};
//!
//! let and2: Arc<_> =
//!     parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "and2")?.into();
//! let or2: Arc<_> =
//!     parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "or2")?.into();
//! let service = SerService::with_defaults();
//! let responses = service.submit_batch(vec![
//!     (Arc::clone(&and2), Request::Sweep(SweepRequest::default())),
//!     (Arc::clone(&or2), Request::Sweep(SweepRequest::default())),
//! ]);
//! for r in &responses {
//!     assert_eq!(r.as_ref().unwrap().as_sweep().unwrap().len(), 3);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod executor;
pub mod jobs;
mod request;
mod service;

pub use executor::Executor;
pub use jobs::{json_escape, parse_flat_object, parse_job_line, JobOp, JobSpec, JsonValue};
pub use request::{
    MonteCarloRequest, MultiCycleMcRequest, MultiCycleRequest, Request, Response, ResponseMeta,
    ResponsePayload, ServiceError, SiteRequest, SweepRequest,
};
pub use service::{SerService, SerServiceConfig, ServiceStats};
