//! The service's hand-rolled JSON layer.
//!
//! The suite is offline (no serde), so the wire protocol carries its
//! own parser and writer. PR 3's job dialect only needed flat objects
//! of scalars; the versioned protocol needs **nested containers** —
//! `set_inputs` ships an input-distribution object, `multi_cycle` a
//! nested simulation config, sweeps an explicit site array — so this
//! module speaks full JSON: strict (no trailing garbage, no trailing
//! commas, no NaN/Inf, duplicate keys rejected at every level), with a
//! nesting-depth guard because a line deeper than a few levels is
//! corrupt input, not a request.
//!
//! Rendering goes through [`fmt::Display`]: `JsonValue` prints as
//! compact single-line JSON, and numbers use Rust's shortest
//! round-trip float form, so an `f64` survives a
//! render → parse cycle **bit-identically** — the property the wire
//! protocol's "TCP equals in-process" guarantee rests on.

use std::fmt;

/// A parsed JSON value (full JSON; numbers are `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string literal.
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array of values.
    Arr(Vec<JsonValue>),
    /// An object, as key/value pairs in declaration order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// The value under `key`, when this is an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer count, when this
    /// is a number with no fractional part.
    #[must_use]
    pub fn as_count(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// A short name for the value's type, for error messages.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Str(_) => "string",
            JsonValue::Num(_) => "number",
            JsonValue::Bool(_) => "bool",
            JsonValue::Null => "null",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }

    /// `true` for the scalar shapes the v1 job dialect allows.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        !matches!(self, JsonValue::Arr(_) | JsonValue::Obj(_))
    }
}

impl fmt::Display for JsonValue {
    /// Compact single-line JSON. Numbers print in Rust's shortest
    /// round-trip form (parse of the output is bit-identical).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Str(s) => write!(f, "\"{}\"", json_escape(s)),
            JsonValue::Num(n) => write!(f, "{}", fmt_f64(*n)),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Null => f.write_str("null"),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "\"{}\": {v}", json_escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Renders an `f64` as a JSON number in shortest round-trip form.
/// Rust's `{}` float formatting never emits an exponent, `NaN` or
/// `inf` markers for finite values, so the output is always a valid
/// JSON number; non-finite inputs (which the protocol never produces)
/// render as `null`.
#[must_use]
pub fn fmt_f64(n: f64) -> String {
    if n.is_finite() {
        format!("{n}")
    } else {
        "null".to_owned()
    }
}

/// Escapes a string for embedding in JSON output.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses one complete JSON document (usually an object line).
///
/// # Errors
///
/// Returns a human-readable message for malformed or truncated input,
/// trailing garbage, duplicate keys, or nesting deeper than the guard.
pub fn parse_value(src: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        chars: src.chars().peekable(),
        depth: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    match p.peek() {
        None => Ok(value),
        Some(c) => Err(format!("trailing input starting at `{c}`")),
    }
}

/// Parses one JSON object line into its key/value pairs in declaration
/// order. Values may be nested containers.
///
/// # Errors
///
/// As [`parse_value`], plus an error when the document is not an
/// object.
pub fn parse_object(src: &str) -> Result<Vec<(String, JsonValue)>, String> {
    match parse_value(src)? {
        JsonValue::Obj(pairs) => Ok(pairs),
        other => Err(format!("expected an object, got {}", other.type_name())),
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    depth: usize,
}

impl Parser<'_> {
    /// Far deeper than any legitimate request line; a guard, not a
    /// limit real traffic meets.
    const MAX_DEPTH: usize = 32;

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn next(&mut self) -> Option<char> {
        self.chars.next()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.next();
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.next() {
            Some(c) if c == want => Ok(()),
            Some(c) => Err(format!("expected `{want}`, got `{c}`")),
            None => Err(format!("expected `{want}`, got end of input")),
        }
    }

    /// Four hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self
                .next()
                .and_then(|c| c.to_digit(16))
                .ok_or("bad \\u escape")?;
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".to_owned()),
                Some('"') => return Ok(out),
                Some('\\') => match self.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let code = self.hex4()?;
                        match code {
                            // A high surrogate must be followed by a
                            // `\u`-escaped low surrogate (JSON encodes
                            // non-BMP characters as UTF-16 pairs).
                            0xD800..=0xDBFF => {
                                if self.next() != Some('\\') || self.next() != Some('u') {
                                    return Err("unpaired high surrogate in \\u escape".to_owned());
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!(
                                        "\\u{code:04x} must pair with a low surrogate, got \\u{low:04x}"
                                    ));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(char::from_u32(combined).ok_or("bad \\u code point")?);
                            }
                            0xDC00..=0xDFFF => {
                                return Err("unpaired low surrogate in \\u escape".to_owned())
                            }
                            _ => out.push(char::from_u32(code).ok_or("bad \\u code point")?),
                        }
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(c) => out.push(c),
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        if self.depth >= Self::MAX_DEPTH {
            return Err("nesting too deep".to_owned());
        }
        match self.peek() {
            None => Err("unexpected end of input".to_owned()),
            Some('"') => Ok(JsonValue::Str(self.string()?)),
            Some('t' | 'f' | 'n') => {
                let mut word = String::new();
                while matches!(self.peek(), Some(c) if c.is_ascii_alphabetic()) {
                    word.push(self.next().expect("peeked"));
                }
                match word.as_str() {
                    "true" => Ok(JsonValue::Bool(true)),
                    "false" => Ok(JsonValue::Bool(false)),
                    "null" => Ok(JsonValue::Null),
                    other => Err(format!("unknown literal `{other}`")),
                }
            }
            Some(c) if c == '-' || c.is_ascii_digit() => {
                let mut text = String::new();
                while matches!(self.peek(), Some(c) if c == '-' || c == '+' || c == '.'
                    || c == 'e' || c == 'E' || c.is_ascii_digit())
                {
                    text.push(self.next().expect("peeked"));
                }
                let n: f64 = text
                    .parse()
                    .map_err(|e| format!("bad number `{text}`: {e}"))?;
                if !n.is_finite() {
                    return Err(format!("non-finite number `{text}`"));
                }
                Ok(JsonValue::Num(n))
            }
            Some('[') => {
                self.next();
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.next();
                    self.depth -= 1;
                    return Ok(JsonValue::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.next() {
                        Some(',') => continue,
                        Some(']') => break,
                        Some(c) => return Err(format!("expected `,` or `]`, got `{c}`")),
                        None => return Err("unterminated array".to_owned()),
                    }
                }
                self.depth -= 1;
                Ok(JsonValue::Arr(items))
            }
            Some('{') => {
                self.next();
                self.depth += 1;
                let mut pairs: Vec<(String, JsonValue)> = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.next();
                    self.depth -= 1;
                    return Ok(JsonValue::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    if pairs.iter().any(|(k, _)| *k == key) {
                        return Err(format!("duplicate key `{key}`"));
                    }
                    self.skip_ws();
                    self.expect(':')?;
                    self.skip_ws();
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.next() {
                        Some(',') => continue,
                        Some('}') => break,
                        Some(c) => return Err(format!("expected `,` or `}}`, got `{c}`")),
                        None => return Err("unterminated object".to_owned()),
                    }
                }
                self.depth -= 1;
                Ok(JsonValue::Obj(pairs))
            }
            Some(c) => Err(format!("expected a value, got `{c}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_containers() {
        let v = parse_value(
            r#"{"op": "set_inputs", "inputs": {"default": 0.5, "overrides": {"a": 0.9}}, "sites": ["G0", "G1"], "n": -2.5e1}"#,
        )
        .unwrap();
        assert_eq!(
            v.get("inputs").unwrap().get("default").unwrap().as_f64(),
            Some(0.5)
        );
        assert_eq!(
            v.get("inputs")
                .unwrap()
                .get("overrides")
                .unwrap()
                .get("a")
                .unwrap()
                .as_f64(),
            Some(0.9)
        );
        let JsonValue::Arr(sites) = v.get("sites").unwrap() else {
            panic!("array expected");
        };
        assert_eq!(sites[1].as_str(), Some("G1"));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_malformed_and_truncated_input() {
        for bad in [
            "",
            "{",
            "[",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1, 2,]",
            "{\"a\": 1} trailing",
            "{\"a\": 1, \"a\": 2}",
            "{\"a\": {\"b\": 1, \"b\": 2}}",
            "{\"a\": 1e999}",
            "{\"a\": truth}",
            "{\"a\": \"unterminated",
            "{\"a\": [1, 2",
        ] {
            assert!(parse_value(bad).is_err(), "accepted `{bad}`");
        }
        // Every proper prefix of a canonical line is invalid.
        let line = r#"{"v": 2, "op": "sweep", "sites": ["G0"], "cfg": {"top": 3}}"#;
        for cut in 1..line.len() {
            if line.is_char_boundary(cut) {
                assert!(parse_value(&line[..cut]).is_err(), "accepted prefix {cut}");
            }
        }
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_halves_fail() {
        // A stock serializer's ASCII escaping of U+1F600 (😀).
        let v = parse_value(r#"{"s": "\ud83d\ude00"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("\u{1F600}"));
        // And the raw character, which needs no pairing.
        let v = parse_value("{\"s\": \"\u{1F600}\"}").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("\u{1F600}"));
        for bad in [
            r#""\ud83d""#,       // unpaired high surrogate
            r#""\ud83dxy""#,     // high surrogate, no escape follows
            r#""\ud83d\u0041""#, // paired with a non-surrogate
            r#""\ude00""#,       // lone low surrogate
        ] {
            assert!(parse_value(bad).is_err(), "accepted `{bad}`");
        }
    }

    #[test]
    fn depth_guard_rejects_pathological_nesting() {
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert!(parse_value(&deep).unwrap_err().contains("nesting"));
    }

    #[test]
    fn display_round_trips_bit_identically() {
        let v = JsonValue::Obj(vec![
            ("p".to_owned(), JsonValue::Num(0.1 + 0.2)),
            ("tiny".to_owned(), JsonValue::Num(1.0e-300)),
            ("s".to_owned(), JsonValue::Str("q\"\\\nA".to_owned())),
            (
                "arr".to_owned(),
                JsonValue::Arr(vec![JsonValue::Bool(true), JsonValue::Null]),
            ),
        ]);
        let text = v.to_string();
        let back = parse_value(&text).unwrap();
        assert_eq!(back, v, "render/parse round trip: {text}");
        // Bit-identity of the floats specifically.
        assert_eq!(
            back.get("p").unwrap().as_f64().unwrap().to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
        assert_eq!(json_escape("q\"\\\n"), "q\\\"\\\\\\n");
    }

    #[test]
    fn count_accessor_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(5000.0).as_count(), Some(5000));
        assert_eq!(JsonValue::Num(1.5).as_count(), None);
        assert_eq!(JsonValue::Num(-1.0).as_count(), None);
        assert_eq!(JsonValue::Str("5".into()).as_count(), None);
    }
}
