//! The shared work executor every request runs on.
//!
//! One fixed pool of worker threads drains one shared FIFO of jobs.
//! A sweep is fanned out as many small site-batch jobs, so when two
//! sweeps on *different* circuits are submitted together their batches
//! interleave across the workers instead of the second sweep waiting
//! for the first to finish — the property the per-sweep scoped-thread
//! scheduler could not provide. Within one sweep, batch granularity
//! (see [`SerServiceConfig::sweep_batch_sites`](crate::SerServiceConfig))
//! plays the same load-balancing role the per-sweep atomic cursor does
//! in `ser-epp`.
//!
//! Jobs must be `'static` — which the owned-session redesign makes
//! natural: closures capture `Arc<AnalysisSession>` clones, never
//! borrows.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutdown: AtomicBool,
}

/// A fixed-size worker pool over one shared job queue.
///
/// Dropping the executor drains the remaining queue, then joins every
/// worker — no job that was successfully [`spawn`](Executor::spawn)ed
/// is lost.
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.workers.len())
            .field(
                "queued",
                &self.shared.queue.lock().map(|q| q.len()).unwrap_or(0),
            )
            .finish()
    }
}

impl Executor {
    /// Starts `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or the OS refuses to spawn a thread.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one worker");
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ser-service-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Executor { shared, workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one job; a free worker picks it up in FIFO order.
    /// Jobs must not block on other jobs of this executor (they would
    /// deadlock a worker) — the service only submits leaf computations.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        let mut queue = self.shared.queue.lock().expect("executor queue");
        queue.push_back(Box::new(job));
        drop(queue);
        self.shared.ready.notify_one();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("executor queue");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                queue = shared.ready.wait(queue).expect("executor queue");
            }
        };
        // A panicking job must not kill the worker: in a long-lived
        // service a dead worker would strand queued jobs (and with one
        // worker, wedge the whole daemon). The panic payload is dropped;
        // the submitter observes the failure through its result channel
        // closing when the job's sender is dropped mid-panic.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::mpsc;

    #[test]
    fn runs_every_job_across_workers() {
        let ex = Executor::new(4);
        assert_eq!(ex.threads(), 4);
        let (tx, rx) = mpsc::channel();
        for i in 0..100usize {
            let tx = tx.clone();
            ex.spawn(move || tx.send(i).expect("collector alive"));
        }
        drop(tx);
        let mut got: Vec<usize> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drop_drains_pending_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let ex = Executor::new(1);
            for _ in 0..50 {
                let counter = Arc::clone(&counter);
                ex.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Dropped immediately: the queue is still mostly full.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 50, "no job lost on drop");
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let ex = Executor::new(1);
        let (tx, rx) = mpsc::channel();
        ex.spawn(|| panic!("job blew up"));
        let tx2 = tx.clone();
        ex.spawn(move || tx2.send(42u32).expect("collector alive"));
        drop(tx);
        // The single worker survived the first job's panic and ran the
        // second; without isolation this recv would hang forever.
        assert_eq!(rx.recv().expect("worker survived the panic"), 42);
    }

    #[test]
    fn jobs_from_two_submitters_interleave() {
        // Not a strict ordering assertion (that would be flaky) — just
        // that one shared queue serves both submitters to completion.
        let ex = Arc::new(Executor::new(2));
        let (tx, rx) = mpsc::channel();
        let submitters: Vec<_> = (0..2)
            .map(|s| {
                let ex = Arc::clone(&ex);
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..20 {
                        let tx = tx.clone();
                        ex.spawn(move || tx.send((s, i)).expect("collector alive"));
                    }
                })
            })
            .collect();
        for s in submitters {
            s.join().expect("submitter");
        }
        drop(tx);
        assert_eq!(rx.iter().count(), 40);
    }
}
