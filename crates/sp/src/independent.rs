//! The classic topological signal-probability pass (Parker–McCluskey
//! zero-order: every gate's fanins are treated as independent).
//!
//! This is the engine the paper assumes: linear time, exact on fanout-
//! free circuits, approximate under reconvergence. Sequential circuits
//! are handled by fixed-point iteration over the flip-flop probabilities
//! (FF outputs start at 0.5 and are replaced by their D-input
//! probability until convergence).

use ser_netlist::{Circuit, GateKind, NodeId};

use crate::types::{InputProbs, SpEngine, SpError, SpVector};

/// Probability that a gate's output is 1 given independent fanin
/// probabilities. Public because the EPP engine's off-path handling and
/// the correlation engine's leaf cases reuse it.
///
/// # Panics
///
/// Panics (debug) on an illegal fanin count and for
/// [`GateKind::Input`] (inputs have no defining function).
#[must_use]
pub fn gate_output_probability(kind: GateKind, fanin_probs: &[f64]) -> f64 {
    debug_assert!(kind.arity_ok(fanin_probs.len()));
    match kind {
        GateKind::Input => panic!("primary input has no defining function"),
        GateKind::Const0 => 0.0,
        GateKind::Const1 => 1.0,
        GateKind::Dff | GateKind::Buf => fanin_probs[0],
        GateKind::Not => 1.0 - fanin_probs[0],
        GateKind::And => fanin_probs.iter().product(),
        GateKind::Nand => 1.0 - fanin_probs.iter().product::<f64>(),
        GateKind::Or => 1.0 - fanin_probs.iter().map(|p| 1.0 - p).product::<f64>(),
        GateKind::Nor => fanin_probs.iter().map(|p| 1.0 - p).product(),
        // P(odd parity) folds pairwise: p ⊕ q = p(1-q) + q(1-p).
        GateKind::Xor => fanin_probs
            .iter()
            .fold(0.0, |acc, &p| acc * (1.0 - p) + p * (1.0 - acc)),
        GateKind::Xnor => {
            1.0 - fanin_probs
                .iter()
                .fold(0.0, |acc, &p| acc * (1.0 - p) + p * (1.0 - acc))
        }
    }
}

/// The independent (zero-order) topological SP engine.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::{IndependentSp, InputProbs, SpEngine};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let sp = IndependentSp::new().compute(&c, &InputProbs::uniform(0.5))?;
/// let y = c.find("y").unwrap();
/// assert!((sp.get(y) - 0.25).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IndependentSp {
    max_iterations: usize,
    tolerance: f64,
}

impl IndependentSp {
    /// Creates the engine with defaults suited to the ISCAS'89-scale
    /// circuits (at most 50 fixed-point iterations, tolerance `1e-9`).
    #[must_use]
    pub fn new() -> Self {
        IndependentSp {
            max_iterations: 50,
            tolerance: 1e-9,
        }
    }

    /// Sets the maximum number of sequential fixed-point iterations.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    #[must_use]
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        assert!(n > 0, "at least one iteration");
        self.max_iterations = n;
        self
    }

    /// Sets the convergence tolerance on flip-flop probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `tol` is not a positive finite number.
    #[must_use]
    pub fn with_tolerance(mut self, tol: f64) -> Self {
        assert!(tol.is_finite() && tol > 0.0, "tolerance must be positive");
        self.tolerance = tol;
        self
    }

    /// One topological sweep computing every non-source node; PI and FF
    /// slots of `out` must already hold their probabilities.
    fn sweep(circuit: &Circuit, order: &[NodeId], out: &mut [f64]) {
        let mut fanin_buf: Vec<f64> = Vec::with_capacity(8);
        for &id in order {
            let node = circuit.node(id);
            match node.kind() {
                GateKind::Input | GateKind::Dff => {}
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin().iter().map(|f| out[f.index()]));
                    out[id.index()] = gate_output_probability(kind, &fanin_buf);
                }
            }
        }
    }
}

impl IndependentSp {
    /// Frontier-seeded forward recomputation — the what-if engine's
    /// SP-invalidation fast path. Starting from `base` (a vector this
    /// engine previously computed for a circuit that agrees with
    /// `circuit` everywhere outside `frontier`'s forward closure), only
    /// nodes downstream of the frontier are re-evaluated; everything
    /// else keeps its `base` value untouched.
    ///
    /// For a **combinational** circuit the result is bit-for-bit the
    /// vector [`compute_with_order`](SpEngine::compute_with_order)
    /// would produce from scratch: every recomputed node sees bitwise
    /// identical fanin values and applies the identical arithmetic, and
    /// every skipped node is, by the caller's contract, already at its
    /// from-scratch value. For a **sequential** circuit the fixed-point
    /// trajectory is global (every flip-flop participates in the same
    /// convergence test), so this falls back to a full from-scratch
    /// computation — still bitwise identical to the oracle path, just
    /// not incremental.
    ///
    /// The caller owns the contract that `base` is valid outside the
    /// frontier closure: pass every node whose defining function,
    /// fanins or input probability changed (new nodes included).
    ///
    /// # Errors
    ///
    /// Returns [`SpError`] only on the sequential fallback (no
    /// convergence).
    ///
    /// # Panics
    ///
    /// Panics if `base` does not cover exactly `circuit.len()` nodes.
    pub fn recompute_forward(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        order: &[NodeId],
        base: &SpVector,
        frontier: &[NodeId],
    ) -> Result<SpVector, SpError> {
        assert_eq!(
            base.len(),
            circuit.len(),
            "base vector must cover every node"
        );
        if circuit.num_dffs() != 0 {
            return self.compute_with_order(circuit, inputs, order);
        }
        let mut values = base.as_slice().to_vec();
        let mut dirty = vec![false; circuit.len()];
        for &f in frontier {
            dirty[f.index()] = true;
        }
        let mut fanin_buf: Vec<f64> = Vec::with_capacity(8);
        for &id in order {
            let node = circuit.node(id);
            if !dirty[id.index()] && !node.fanin().iter().any(|f| dirty[f.index()]) {
                continue;
            }
            dirty[id.index()] = true;
            match node.kind() {
                GateKind::Input => values[id.index()] = inputs.probability(id),
                GateKind::Dff => unreachable!("combinational circuit has no flip-flops"),
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    values[id.index()] = gate_output_probability(kind, &fanin_buf);
                }
            }
        }
        Ok(SpVector::new(values))
    }
}

impl Default for IndependentSp {
    fn default() -> Self {
        IndependentSp::new()
    }
}

impl SpEngine for IndependentSp {
    fn name(&self) -> &'static str {
        "independent"
    }

    fn compute(&self, circuit: &Circuit, inputs: &InputProbs) -> Result<SpVector, SpError> {
        let order = ser_netlist::topo_order(circuit)?;
        self.compute_with_order(circuit, inputs, &order)
    }

    /// The sort is this engine's only structural pass, so a cached
    /// order makes SP recomputation (e.g. a session's input-probability
    /// invalidation) purely arithmetic.
    fn compute_with_order(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        order: &[NodeId],
    ) -> Result<SpVector, SpError> {
        debug_assert!(
            ser_netlist::is_topo_order(circuit, order),
            "caller-provided order must be a topological order of the circuit"
        );
        let mut values = vec![0.0f64; circuit.len()];
        for &pi in circuit.inputs() {
            values[pi.index()] = inputs.probability(pi);
        }
        for &dff in circuit.dffs() {
            values[dff.index()] = 0.5;
        }
        if circuit.num_dffs() == 0 {
            Self::sweep(circuit, order, &mut values);
            return Ok(SpVector::new(values));
        }
        let mut residual = f64::INFINITY;
        for _ in 0..self.max_iterations {
            Self::sweep(circuit, order, &mut values);
            residual = 0.0f64;
            for &dff in circuit.dffs() {
                let d = circuit.node(dff).fanin()[0];
                let next = values[d.index()];
                residual = residual.max((next - values[dff.index()]).abs());
                values[dff.index()] = next;
            }
            if residual <= self.tolerance {
                // One final sweep so node values reflect converged FFs.
                Self::sweep(circuit, order, &mut values);
                return Ok(SpVector::new(values));
            }
        }
        Err(SpError::NoConvergence {
            iterations: self.max_iterations,
            residual,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    fn sp_of(src: &str, signal: &str) -> f64 {
        let c = parse_bench(src, "t").unwrap();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::uniform(0.5))
            .unwrap();
        sp.get(c.find(signal).unwrap())
    }

    #[test]
    fn basic_gate_probabilities() {
        assert!(
            (sp_of("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "y") - 0.25).abs() < 1e-12
        );
        assert!((sp_of("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "y") - 0.75).abs() < 1e-12);
        assert!(
            (sp_of("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "y") - 0.75).abs() < 1e-12
        );
        assert!(
            (sp_of("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOR(a, b)\n", "y") - 0.25).abs() < 1e-12
        );
        assert!((sp_of("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "y") - 0.5).abs() < 1e-12);
        assert!((sp_of("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "y") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn three_input_and() {
        let y = sp_of(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n",
            "y",
        );
        assert!((y - 0.125).abs() < 1e-12);
    }

    #[test]
    fn weighted_inputs() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let a = c.find("a").unwrap();
        let probs = InputProbs::uniform(0.5).with(a, 0.9);
        let sp = IndependentSp::new().compute(&c, &probs).unwrap();
        let y = c.find("y").unwrap();
        assert!((sp.get(y) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn xor_parity_fold_matches_enumeration() {
        // 3 inputs with p = 0.3 each: P(odd) computed by enumeration.
        let probs = [0.3, 0.3, 0.3];
        let mut want = 0.0;
        for assignment in 0u32..8 {
            let ones = assignment.count_ones();
            if ones % 2 == 1 {
                let mut w = 1.0;
                for (i, p) in probs.iter().enumerate() {
                    w *= if assignment >> i & 1 != 0 {
                        *p
                    } else {
                        1.0 - *p
                    };
                }
                want += w;
            }
        }
        let got = gate_output_probability(GateKind::Xor, &probs);
        assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        let got_n = gate_output_probability(GateKind::Xnor, &probs);
        assert!((got_n - (1.0 - want)).abs() < 1e-12);
    }

    #[test]
    fn reconvergence_is_approximate_by_design() {
        // y = AND(a, a) has true SP 0.5; the independent engine says 0.25.
        // This documented inaccuracy is exactly what the correlation
        // engine and the exact oracle quantify.
        let y = sp_of("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "y");
        assert!((y - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sequential_fixed_point_toggle() {
        // q = DFF(d), d = NOT(q): the steady-state probability of q is 0.5
        // (it toggles forever). The fixed point of p -> 1-p from 0.5 is
        // immediate.
        let c = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n", "tff").unwrap();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let q = c.find("q").unwrap();
        assert!((sp.get(q) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn sequential_and_feedback_converges_to_zero() {
        // q = DFF(d), d = AND(q, x): q's probability decays to 0.
        let c = parse_bench("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = AND(q, x)\n", "decay").unwrap();
        let sp = IndependentSp::new()
            .with_tolerance(1e-12)
            .with_max_iterations(2000)
            .compute(&c, &InputProbs::default())
            .unwrap();
        let q = c.find("q").unwrap();
        assert!(sp.get(q) < 1e-3, "q decayed to {}", sp.get(q));
    }

    #[test]
    fn oscillating_fixed_point_reports_no_convergence() {
        // q = DFF(d), d = NOT(q) converges from 0.5 instantly, but if we
        // bias the input so the map is p -> 1 - p starting *off* the fixed
        // point... the FF starts at 0.5 which IS the fixed point; build a
        // genuinely oscillating system instead: two cross-coupled FFs
        // q1 = DFF(NOT(q2)), q2 = DFF(BUF(q1)) — map (p1,p2) -> (1-p2, p1)
        // has fixed point (0.5, 0.5); starting at (0.5, 0.5) converges.
        // To observe divergence we need asymmetric start, which the engine
        // does not expose — so instead check convergence *succeeds* here
        // and that the iteration cap is honoured via a tiny cap on a slow
        // converger.
        let c = parse_bench("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = AND(q, x)\n", "slow").unwrap();
        let err = IndependentSp::new()
            .with_tolerance(1e-15)
            .with_max_iterations(3)
            .compute(&c, &InputProbs::default())
            .unwrap_err();
        assert!(matches!(err, SpError::NoConvergence { iterations: 3, .. }));
    }

    #[test]
    fn recompute_forward_matches_scratch_bitwise() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\nv = OR(u, c)\ny = XOR(v, a)\n",
            "t",
        )
        .unwrap();
        let order = ser_netlist::topo_order(&c).unwrap();
        let engine = IndependentSp::new();
        let a = c.find("a").unwrap();
        let before = InputProbs::uniform(0.5);
        let after = before.clone().with(a, 0.9);
        let base = engine.compute_with_order(&c, &before, &order).unwrap();
        let scratch = engine.compute_with_order(&c, &after, &order).unwrap();
        let incremental = engine
            .recompute_forward(&c, &after, &order, &base, &[a])
            .unwrap();
        for id in c.node_ids() {
            assert_eq!(
                incremental.get(id).to_bits(),
                scratch.get(id).to_bits(),
                "node {id} must match from-scratch bitwise"
            );
        }
        // Nodes outside the frontier closure keep their base values.
        let b = c.find("b").unwrap();
        assert_eq!(incremental.get(b).to_bits(), base.get(b).to_bits());
    }

    #[test]
    fn recompute_forward_sequential_falls_back_to_scratch() {
        let c = parse_bench("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = AND(q, x)\n", "seq").unwrap();
        let order = ser_netlist::topo_order(&c).unwrap();
        let engine = IndependentSp::new();
        let x = c.find("x").unwrap();
        let before = InputProbs::default();
        let after = InputProbs::uniform(0.5).with(x, 0.25);
        let base = engine.compute_with_order(&c, &before, &order).unwrap();
        let scratch = engine.compute_with_order(&c, &after, &order).unwrap();
        let incremental = engine
            .recompute_forward(&c, &after, &order, &base, &[x])
            .unwrap();
        for id in c.node_ids() {
            assert_eq!(incremental.get(id).to_bits(), scratch.get(id).to_bits());
        }
    }

    #[test]
    fn constants_have_exact_probability() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nk = CONST1()\ny = AND(a, k)\n", "k").unwrap();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        assert_eq!(sp.get(c.find("k").unwrap()), 1.0);
        assert!((sp.get(c.find("y").unwrap()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn engine_reports_name() {
        assert_eq!(IndependentSp::new().name(), "independent");
    }
}
