//! Monte-Carlo signal probability (simulation-based reference engine).

use ser_netlist::Circuit;
use ser_sim::{BitSim, PatternSource, RandomPatterns, SeqSim, WeightedPatterns};

use crate::types::{InputProbs, SpEngine, SpError, SpVector};

/// Estimates signal probabilities by logic simulation.
///
/// Combinational circuits are sampled directly. Sequential circuits are
/// *warmed up* for a number of cycles from the all-zero state (so the
/// flip-flop distribution approaches its steady state) and then sampled
/// over further cycles — the simulation counterpart of the independent
/// engine's fixed-point iteration.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::{InputProbs, MonteCarloSp, SpEngine};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let sp = MonteCarloSp::new(50_000).with_seed(3).compute(&c, &InputProbs::uniform(0.5))?;
/// let y = c.find("y").unwrap();
/// assert!((sp.get(y) - 0.25).abs() < 0.01);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarloSp {
    vectors: u64,
    warmup_cycles: u32,
    seed: u64,
}

impl MonteCarloSp {
    /// Creates the engine with `vectors` sampled patterns (and, for
    /// sequential circuits, 16 warm-up cycles).
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is 0.
    #[must_use]
    pub fn new(vectors: u64) -> Self {
        assert!(vectors > 0, "at least one vector");
        MonteCarloSp {
            vectors,
            warmup_cycles: 16,
            seed: 0x5EED,
        }
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of warm-up cycles for sequential circuits.
    #[must_use]
    pub fn with_warmup(mut self, cycles: u32) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Number of sampled vectors.
    #[must_use]
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    fn input_source(&self, circuit: &Circuit, inputs: &InputProbs) -> Box<dyn PatternSource> {
        // Uniform 0.5 with no overrides has a fast path.
        let uniform_half = circuit
            .inputs()
            .iter()
            .all(|&pi| (inputs.probability(pi) - 0.5).abs() < f64::EPSILON);
        if uniform_half {
            Box::new(RandomPatterns::new(circuit.num_inputs(), self.seed))
        } else {
            let weights = circuit
                .inputs()
                .iter()
                .map(|&pi| inputs.probability(pi))
                .collect();
            Box::new(WeightedPatterns::new(weights, self.seed))
        }
    }

    fn compute_combinational(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
    ) -> Result<SpVector, SpError> {
        let sim = BitSim::new(circuit)?;
        let mut source = self.input_source(circuit, inputs);
        let mut ones = vec![0u64; circuit.len()];
        let mut total = 0u64;
        let mut remaining = self.vectors;
        while remaining > 0 {
            let count = remaining.min(64) as u32;
            let valid = if count == 64 {
                !0u64
            } else {
                (1u64 << count) - 1
            };
            let block = source.next_block().expect("random sources never end");
            let values = sim.run(block.words());
            for (slot, w) in ones.iter_mut().zip(&values) {
                *slot += u64::from((w & valid).count_ones());
            }
            total += u64::from(count);
            remaining -= u64::from(count);
        }
        let probs = ones.into_iter().map(|o| o as f64 / total as f64).collect();
        Ok(SpVector::new(probs))
    }

    fn compute_sequential(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
    ) -> Result<SpVector, SpError> {
        let mut sim = SeqSim::new(circuit)?;
        let mut source = self.input_source(circuit, inputs);
        sim.reset(false);
        for _ in 0..self.warmup_cycles {
            let block = source.next_block().expect("random sources never end");
            let _ = sim.step(block.words());
        }
        let mut ones = vec![0u64; circuit.len()];
        let mut total = 0u64;
        let mut remaining = self.vectors;
        while remaining > 0 {
            let count = remaining.min(64) as u32;
            let valid = if count == 64 {
                !0u64
            } else {
                (1u64 << count) - 1
            };
            let block = source.next_block().expect("random sources never end");
            let values = sim.step(block.words());
            for (slot, w) in ones.iter_mut().zip(&values) {
                *slot += u64::from((w & valid).count_ones());
            }
            total += u64::from(count);
            remaining -= u64::from(count);
        }
        let probs = ones.into_iter().map(|o| o as f64 / total as f64).collect();
        Ok(SpVector::new(probs))
    }
}

impl SpEngine for MonteCarloSp {
    fn name(&self) -> &'static str {
        "monte-carlo"
    }

    fn compute(&self, circuit: &Circuit, inputs: &InputProbs) -> Result<SpVector, SpError> {
        if circuit.is_combinational() {
            self.compute_combinational(circuit, inputs)
        } else {
            self.compute_sequential(circuit, inputs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    #[test]
    fn matches_closed_form_on_tree() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "tree",
        )
        .unwrap();
        let sp = MonteCarloSp::new(100_000)
            .with_seed(42)
            .compute(&c, &InputProbs::uniform(0.5))
            .unwrap();
        // P(u) = 0.25, P(y) = 1 - 0.75*0.5 = 0.625.
        assert!((sp.get(c.find("u").unwrap()) - 0.25).abs() < 0.01);
        assert!((sp.get(c.find("y").unwrap()) - 0.625).abs() < 0.01);
    }

    #[test]
    fn captures_reconvergent_correlation() {
        // y = AND(a, a): truly 0.5 — MC gets this right where the
        // independent engine says 0.25.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "rc").unwrap();
        let sp = MonteCarloSp::new(50_000)
            .with_seed(1)
            .compute(&c, &InputProbs::uniform(0.5))
            .unwrap();
        assert!((sp.get(c.find("y").unwrap()) - 0.5).abs() < 0.01);
    }

    #[test]
    fn weighted_inputs_respected() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "w").unwrap();
        let a = c.find("a").unwrap();
        let sp = MonteCarloSp::new(100_000)
            .with_seed(9)
            .compute(&c, &InputProbs::uniform(0.5).with(a, 0.1))
            .unwrap();
        assert!((sp.get(a) - 0.1).abs() < 0.01);
    }

    #[test]
    fn sequential_toggle_half() {
        let c = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n", "tff").unwrap();
        let sp = MonteCarloSp::new(10_000)
            .with_seed(2)
            .compute(&c, &InputProbs::default())
            .unwrap();
        // A toggling FF spends half its time at 1. (All 64 lanes toggle in
        // lockstep from reset, but sampling over whole cycles averages the
        // 0-phase and 1-phase equally when vector count covers both.)
        let q = c.find("q").unwrap();
        assert!((sp.get(q) - 0.5).abs() < 0.05, "{}", sp.get(q));
    }

    #[test]
    fn deterministic_given_seed() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "d").unwrap();
        let e = MonteCarloSp::new(5_000).with_seed(7);
        let s1 = e.compute(&c, &InputProbs::default()).unwrap();
        let s2 = e.compute(&c, &InputProbs::default()).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn name_is_stable() {
        assert_eq!(MonteCarloSp::new(1).name(), "monte-carlo");
    }
}
