//! Common types for the signal-probability engines.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::ops::Index;

use ser_netlist::{Circuit, NetlistError, NodeId};

/// Input probability assignment: the probability that each primary input
/// is logic 1. The paper's experiments use the customary uniform 0.5;
/// weighted profiles exercise the engines harder.
///
/// # Examples
///
/// ```
/// use ser_sp::InputProbs;
///
/// let uniform = InputProbs::uniform(0.5);
/// assert_eq!(uniform.default_probability(), 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InputProbs {
    default: f64,
    /// Ordered, because [`overrides`](Self::overrides) is *iterated*
    /// (rebuilding an assignment against a re-built circuit, applying
    /// a `set_inputs` wire op) — a hash map here would replay the
    /// overrides in a different order every process, and the
    /// bit-identity contract forbids exactly that class of
    /// nondeterminism (`ser-lint`'s `no-hash-iter` rule).
    overrides: BTreeMap<NodeId, f64>,
}

impl InputProbs {
    /// Every input is 1 with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn uniform(p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p = {p} outside [0,1]"
        );
        InputProbs {
            default: p,
            overrides: BTreeMap::new(),
        }
    }

    /// Overrides the probability of one input.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn with(mut self, input: NodeId, p: f64) -> Self {
        assert!(
            p.is_finite() && (0.0..=1.0).contains(&p),
            "p = {p} outside [0,1]"
        );
        self.overrides.insert(input, p);
        self
    }

    /// The default probability for inputs without an override.
    #[must_use]
    pub fn default_probability(&self) -> f64 {
        self.default
    }

    /// The probability assigned to `input`.
    #[must_use]
    pub fn probability(&self, input: NodeId) -> f64 {
        self.overrides.get(&input).copied().unwrap_or(self.default)
    }

    /// The explicit per-input overrides, in ascending [`NodeId`] order
    /// — what a caller rebuilding the assignment against a re-built
    /// circuit (where node ids shifted but names survived) iterates.
    /// The order is deterministic by construction (`BTreeMap`), so a
    /// replayed `set_inputs` always re-derives bit-identical state.
    pub fn overrides(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.overrides.iter().map(|(&id, &p)| (id, p))
    }
}

impl Default for InputProbs {
    /// The customary uniform 0.5 assignment.
    fn default() -> Self {
        InputProbs::uniform(0.5)
    }
}

/// Signal probabilities for every node of one circuit, indexed by
/// [`NodeId`].
///
/// A vector optionally carries a *session tag* (see
/// [`with_tag`](Self::with_tag)): an opaque revision number stamped by
/// whoever computed it, so a caching layer (`ser-epp`'s
/// `AnalysisSession`) can tell a stale vector from the current one
/// after an input-probability change. The tag is bookkeeping only — it
/// does not participate in equality.
#[derive(Debug, Clone)]
pub struct SpVector {
    values: Vec<f64>,
    tag: u64,
}

impl PartialEq for SpVector {
    /// Value equality; the session tag is deliberately ignored.
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

impl SpVector {
    /// Wraps a dense per-node probability vector (untagged).
    ///
    /// # Panics
    ///
    /// Panics if any value is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn new(values: Vec<f64>) -> Self {
        for (i, &v) in values.iter().enumerate() {
            assert!(
                v.is_finite() && (0.0..=1.0).contains(&v),
                "sp[{i}] = {v} outside [0,1]"
            );
        }
        SpVector { values, tag: 0 }
    }

    /// Stamps the vector with a session revision tag.
    #[must_use]
    pub fn with_tag(mut self, tag: u64) -> Self {
        self.tag = tag;
        self
    }

    /// The session revision this vector was computed under (0 when
    /// untagged).
    #[must_use]
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The probability that node `id` is logic 1.
    #[must_use]
    pub fn get(&self, id: NodeId) -> f64 {
        self.values[id.index()]
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the vector covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw per-node values.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// Largest absolute difference against another vector (used for
    /// engine cross-validation and fixed-point convergence).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    #[must_use]
    pub fn max_abs_diff(&self, other: &SpVector) -> f64 {
        assert_eq!(self.values.len(), other.values.len());
        self.values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<NodeId> for SpVector {
    type Output = f64;

    fn index(&self, id: NodeId) -> &f64 {
        &self.values[id.index()]
    }
}

/// Errors from signal-probability computation.
#[derive(Debug, Clone, PartialEq)]
pub enum SpError {
    /// The circuit's combinational graph is invalid.
    Netlist(NetlistError),
    /// The exact engine was asked to enumerate too many sources.
    TooManySources {
        /// Sources the circuit has.
        got: usize,
        /// The engine's limit.
        limit: usize,
    },
    /// The sequential fixed-point iteration did not converge.
    NoConvergence {
        /// Iterations performed.
        iterations: usize,
        /// Residual after the last iteration.
        residual: f64,
    },
    /// The circuit exceeds an engine's size limit (the correlation
    /// engine's pairwise matrix is quadratic in node count).
    CircuitTooLarge {
        /// Nodes the engine would have to track.
        nodes: usize,
        /// The engine's limit.
        limit: usize,
    },
}

impl fmt::Display for SpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpError::Netlist(e) => write!(f, "netlist error: {e}"),
            SpError::TooManySources { got, limit } => {
                write!(
                    f,
                    "exact enumeration over {got} sources exceeds limit {limit}"
                )
            }
            SpError::NoConvergence {
                iterations,
                residual,
            } => {
                write!(
                    f,
                    "sequential SP fixed point did not converge after {iterations} iterations (residual {residual:.3e})"
                )
            }
            SpError::CircuitTooLarge { nodes, limit } => {
                write!(f, "{nodes} tracked nodes exceed the engine limit {limit}")
            }
        }
    }
}

impl Error for SpError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SpError {
    fn from(e: NetlistError) -> Self {
        SpError::Netlist(e)
    }
}

/// A signal-probability engine: anything that can produce an
/// [`SpVector`] for a circuit under an input assignment.
///
/// The EPP core takes SP as an input (the paper: "leverages the signal
/// probability calculation, which is already used in other steps of the
/// design flow"), so engines are interchangeable — that interchange is
/// one of the suite's ablations.
pub trait SpEngine {
    /// Short engine name for reports (e.g. `"independent"`).
    fn name(&self) -> &'static str;

    /// Computes the probability that each node is logic 1.
    ///
    /// # Errors
    ///
    /// Engine-specific; see [`SpError`].
    fn compute(&self, circuit: &Circuit, inputs: &InputProbs) -> Result<SpVector, SpError>;

    /// Like [`compute`](Self::compute), but reusing a topological order
    /// the caller already has (e.g. from cached
    /// [`TopoArtifacts`](ser_netlist::TopoArtifacts)), so engines whose
    /// only structural pass is the sort skip it entirely.
    ///
    /// The default implementation ignores `order` and delegates to
    /// [`compute`](Self::compute) — correct for engines whose cost is
    /// not dominated by ordering (Monte-Carlo, exact enumeration, BDD).
    ///
    /// # Errors
    ///
    /// Engine-specific; see [`SpError`].
    fn compute_with_order(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
        order: &[NodeId],
    ) -> Result<SpVector, SpError> {
        let _ = order;
        self.compute(circuit, inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::CircuitBuilder;

    #[test]
    fn input_probs_defaults_and_overrides() {
        let mut b = CircuitBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        b.mark_output(x);
        let _ = b.finish().unwrap();
        let p = InputProbs::uniform(0.5).with(x, 0.9);
        assert_eq!(p.probability(x), 0.9);
        assert_eq!(p.probability(y), 0.5);
        assert_eq!(InputProbs::default().default_probability(), 0.5);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn input_probs_rejects_out_of_range() {
        let _ = InputProbs::uniform(1.2);
    }

    #[test]
    fn sp_vector_accessors() {
        let v = SpVector::new(vec![0.0, 0.25, 1.0]);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
        assert_eq!(v.get(NodeId::from_index(1)), 0.25);
        assert_eq!(v[NodeId::from_index(2)], 1.0);
        let w = SpVector::new(vec![0.1, 0.25, 0.9]);
        assert!((v.max_abs_diff(&w) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn sp_vector_rejects_nan_or_range() {
        let _ = SpVector::new(vec![0.5, 1.5]);
    }

    #[test]
    fn error_display() {
        let e = SpError::TooManySources { got: 40, limit: 24 };
        assert!(e.to_string().contains("40"));
        let e = SpError::NoConvergence {
            iterations: 10,
            residual: 0.5,
        };
        assert!(e.to_string().contains("10"));
    }
}
