//! The BDD-backed exact signal-probability engine.
//!
//! Same exactness as [`ExactSp`](crate::ExactSp), different scaling
//! law: enumeration is exponential in *input count*, BDDs are linear in
//! *BDD size* — so wide-but-benign circuits (adders, comparators,
//! random control logic) become tractable. Flip-flop outputs are free
//! 0.5 sources (the suite's combinational view).

use ser_netlist::{Circuit, GateKind, NodeId};

use crate::bdd::{Bdd, BddOverflow, BddRef};
use crate::types::{InputProbs, SpEngine, SpError, SpVector};

/// Exact SP via BDDs.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::{BddSp, InputProbs, SpEngine};
///
/// // 32 inputs: far beyond enumeration, trivial for BDDs.
/// let mut src = String::new();
/// for i in 0..32 { src.push_str(&format!("INPUT(i{i})\n")); }
/// src.push_str("OUTPUT(y)\ny = AND(");
/// src.push_str(&(0..32).map(|i| format!("i{i}")).collect::<Vec<_>>().join(", "));
/// src.push_str(")\n");
/// let c = parse_bench(&src, "wide")?;
/// let sp = BddSp::new().compute(&c, &InputProbs::uniform(0.5))?;
/// let y = c.find("y").unwrap();
/// assert!((sp.get(y) - 0.5f64.powi(32)).abs() < 1e-18);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddSp {
    node_limit: usize,
}

impl BddSp {
    /// Creates the engine with the default node limit (2^21 ≈ 2M BDD
    /// nodes, ~50 MB including tables).
    #[must_use]
    pub fn new() -> Self {
        BddSp {
            node_limit: 1 << 21,
        }
    }

    /// Adjusts the BDD node limit.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn with_node_limit(mut self, n: usize) -> Self {
        assert!(n >= 2, "limit must hold the constants");
        self.node_limit = n;
        self
    }

    /// Builds per-node BDDs for the whole circuit (shared manager).
    /// Exposed so the exact-EPP oracle in the core crate can reuse the
    /// construction.
    ///
    /// Returns the manager, the per-node function handles, and the
    /// per-variable probabilities.
    ///
    /// # Errors
    ///
    /// [`SpError::CircuitTooLarge`] when the node limit is hit;
    /// [`SpError::Netlist`] for cyclic circuits.
    pub fn build(
        &self,
        circuit: &Circuit,
        inputs: &InputProbs,
    ) -> Result<(Bdd, Vec<BddRef>, Vec<f64>), SpError> {
        let order = ser_netlist::topo_order(circuit)?;
        let sources: Vec<NodeId> = circuit
            .inputs()
            .iter()
            .chain(circuit.dffs().iter())
            .copied()
            .collect();
        let var_probs: Vec<f64> = sources
            .iter()
            .map(|&s| {
                if circuit.inputs().contains(&s) {
                    inputs.probability(s)
                } else {
                    0.5
                }
            })
            .collect();
        let mut var_of = vec![usize::MAX; circuit.len()];
        for (v, &s) in sources.iter().enumerate() {
            var_of[s.index()] = v;
        }
        let mut m = Bdd::new(sources.len(), self.node_limit);
        let mut funcs: Vec<BddRef> = vec![BddRef::FALSE; circuit.len()];
        let overflow = |_: BddOverflow| SpError::CircuitTooLarge {
            nodes: self.node_limit,
            limit: self.node_limit,
        };
        for id in order {
            let node = circuit.node(id);
            let f = match node.kind() {
                GateKind::Input | GateKind::Dff => m.var(var_of[id.index()]).map_err(overflow)?,
                GateKind::Const0 => BddRef::FALSE,
                GateKind::Const1 => BddRef::TRUE,
                GateKind::Buf => funcs[node.fanin()[0].index()],
                GateKind::Not => m.not(funcs[node.fanin()[0].index()]).map_err(overflow)?,
                GateKind::And | GateKind::Nand => {
                    let mut acc = funcs[node.fanin()[0].index()];
                    for f in &node.fanin()[1..] {
                        acc = m.and(acc, funcs[f.index()]).map_err(overflow)?;
                    }
                    if node.kind() == GateKind::Nand {
                        m.not(acc).map_err(overflow)?
                    } else {
                        acc
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let mut acc = funcs[node.fanin()[0].index()];
                    for f in &node.fanin()[1..] {
                        acc = m.or(acc, funcs[f.index()]).map_err(overflow)?;
                    }
                    if node.kind() == GateKind::Nor {
                        m.not(acc).map_err(overflow)?
                    } else {
                        acc
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    let mut acc = funcs[node.fanin()[0].index()];
                    for f in &node.fanin()[1..] {
                        acc = m.xor(acc, funcs[f.index()]).map_err(overflow)?;
                    }
                    if node.kind() == GateKind::Xnor {
                        m.not(acc).map_err(overflow)?
                    } else {
                        acc
                    }
                }
            };
            funcs[id.index()] = f;
        }
        Ok((m, funcs, var_probs))
    }
}

impl Default for BddSp {
    fn default() -> Self {
        BddSp::new()
    }
}

impl SpEngine for BddSp {
    fn name(&self) -> &'static str {
        "bdd"
    }

    fn compute(&self, circuit: &Circuit, inputs: &InputProbs) -> Result<SpVector, SpError> {
        let (m, funcs, var_probs) = self.build(circuit, inputs)?;
        let values = funcs
            .into_iter()
            .map(|f| m.probability(f, &var_probs).clamp(0.0, 1.0))
            .collect();
        Ok(SpVector::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSp;
    use ser_netlist::parse_bench;

    #[test]
    fn matches_enumeration_oracle() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = NAND(a, b)\nv = NOR(u, c)\nw = XOR(a, v)\ny = AND(w, u)\n",
            "mix",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let probs = InputProbs::uniform(0.5).with(a, 0.3);
        let bdd = BddSp::new().compute(&c, &probs).unwrap();
        let enumr = ExactSp::new().compute(&c, &probs).unwrap();
        assert!(
            bdd.max_abs_diff(&enumr) < 1e-12,
            "max diff {}",
            bdd.max_abs_diff(&enumr)
        );
    }

    #[test]
    fn exact_on_reconvergence() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = XOR(a, a)\n", "rc").unwrap();
        let sp = BddSp::new().compute(&c, &InputProbs::default()).unwrap();
        assert_eq!(sp.get(c.find("y").unwrap()), 0.0);
    }

    #[test]
    fn wide_support_tractable() {
        // 40-input parity: enumeration impossible, BDD linear.
        let mut src = String::new();
        for i in 0..40 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = XOR(");
        src.push_str(
            &(0..40)
                .map(|i| format!("i{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(")\n");
        let c = parse_bench(&src, "parity40").unwrap();
        let sp = BddSp::new().compute(&c, &InputProbs::uniform(0.3)).unwrap();
        let want = (1.0 - (1.0f64 - 0.6).powi(40)) / 2.0;
        assert!((sp.get(c.find("y").unwrap()) - want).abs() < 1e-12);
    }

    #[test]
    fn node_limit_reported() {
        // An 8-bit multiplier's middle bits are BDD-hostile; with a tiny
        // limit even small circuits overflow deterministically.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "t",
        )
        .unwrap();
        let err = BddSp::new()
            .with_node_limit(3)
            .compute(&c, &InputProbs::default())
            .unwrap_err();
        assert!(matches!(err, SpError::CircuitTooLarge { .. }));
    }

    #[test]
    fn sequential_ffs_are_half_sources() {
        let c = parse_bench("INPUT(x)\nOUTPUT(y)\nq = DFF(y)\ny = AND(q, x)\n", "s").unwrap();
        let sp = BddSp::new().compute(&c, &InputProbs::default()).unwrap();
        assert!((sp.get(c.find("q").unwrap()) - 0.5).abs() < 1e-12);
        assert!((sp.get(c.find("y").unwrap()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn engine_name() {
        assert_eq!(BddSp::new().name(), "bdd");
    }
}
