//! Pairwise-correlation-aware signal probability.
//!
//! The independent engine's error comes from reconvergent fanout: the
//! fanins of a gate are treated as independent even when they share
//! support. This engine propagates, alongside each probability, a
//! *pairwise correlation coefficient*
//! `C(u, v) = P(u ∧ v) / (P(u) · P(v))`
//! between every tracked pair of signals (first-order spatial
//! correlation in the spirit of Ercolani et al.). Products of
//! correlations approximate higher-order terms, so the result is still
//! approximate under three-way reconvergence, but collapses the common
//! two-path cases exactly — including the degenerate `AND(a, a)`,
//! because the diagonal is `C(u, u) = 1 / P(u)`.
//!
//! The pair matrix is quadratic in node count, so the engine enforces a
//! size limit; it is an *accuracy ablation* for small and medium
//! circuits, not a replacement for the linear-time independent pass.
//!
//! Flip-flop outputs are treated as independent 0.5 sources (the same
//! combinational view as [`ExactSp`](crate::ExactSp)).

use ser_netlist::{Circuit, GateKind, NodeId};

use crate::types::{InputProbs, SpEngine, SpError, SpVector};

/// Internal binary-decomposed operation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BOp {
    /// Independent source with a fixed probability.
    Source(f64),
    /// NOT of one operand.
    Not(usize),
    /// Buffer of one operand.
    Buf(usize),
    /// Two-input AND.
    And2(usize, usize),
    /// Two-input OR.
    Or2(usize, usize),
    /// Two-input XOR.
    Xor2(usize, usize),
}

/// The correlation-aware SP engine.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::{CorrelationSp, InputProbs, SpEngine};
///
/// // XOR built from NANDs: reconvergence defeats the independent
/// // engine, but pairwise correlations recover the exact 0.5.
/// let c = parse_bench(
///     "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\nv = NAND(a, u)\nw = NAND(b, u)\ny = NAND(v, w)\n",
///     "x",
/// )?;
/// let sp = CorrelationSp::new().compute(&c, &InputProbs::uniform(0.5))?;
/// assert!((sp.get(c.find("y").unwrap()) - 0.5).abs() < 0.05);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrelationSp {
    max_nodes: usize,
}

const P_EPS: f64 = 1e-12;

impl CorrelationSp {
    /// Creates the engine with the default tracked-node limit (4096
    /// internal nodes, ~134 MB of pair storage worst case).
    #[must_use]
    pub fn new() -> Self {
        CorrelationSp { max_nodes: 4096 }
    }

    /// Adjusts the tracked-node limit.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0.
    #[must_use]
    pub fn with_max_nodes(mut self, n: usize) -> Self {
        assert!(n > 0, "limit must be positive");
        self.max_nodes = n;
        self
    }

    /// The configured limit on internal (binary-decomposed) nodes.
    #[must_use]
    pub fn max_nodes(&self) -> usize {
        self.max_nodes
    }

    /// Binary-decomposes the circuit in topological order. Returns the
    /// internal op list and, per circuit node, its internal index.
    fn decompose(circuit: &Circuit, inputs: &InputProbs) -> (Vec<BOp>, Vec<usize>) {
        let order = ser_netlist::topo_order(circuit).expect("validated by caller");
        let mut ops: Vec<BOp> = Vec::with_capacity(circuit.len() * 2);
        let mut map = vec![usize::MAX; circuit.len()];
        for id in order {
            let node = circuit.node(id);
            let internal = match node.kind() {
                GateKind::Input => push(&mut ops, BOp::Source(inputs.probability(id))),
                GateKind::Dff => push(&mut ops, BOp::Source(0.5)),
                GateKind::Const0 => push(&mut ops, BOp::Source(0.0)),
                GateKind::Const1 => push(&mut ops, BOp::Source(1.0)),
                GateKind::Buf => push(&mut ops, BOp::Buf(map[node.fanin()[0].index()])),
                GateKind::Not => push(&mut ops, BOp::Not(map[node.fanin()[0].index()])),
                GateKind::And => chain(
                    &mut ops,
                    &map,
                    node.fanin(),
                    BOp::And2 as fn(usize, usize) -> BOp,
                ),
                GateKind::Or => chain(&mut ops, &map, node.fanin(), BOp::Or2),
                GateKind::Xor => chain(&mut ops, &map, node.fanin(), BOp::Xor2),
                GateKind::Nand => {
                    let a = chain(&mut ops, &map, node.fanin(), BOp::And2);
                    push(&mut ops, BOp::Not(a))
                }
                GateKind::Nor => {
                    let a = chain(&mut ops, &map, node.fanin(), BOp::Or2);
                    push(&mut ops, BOp::Not(a))
                }
                GateKind::Xnor => {
                    let a = chain(&mut ops, &map, node.fanin(), BOp::Xor2);
                    push(&mut ops, BOp::Not(a))
                }
            };
            map[id.index()] = internal;
        }
        (ops, map)
    }
}

fn push(ops: &mut Vec<BOp>, op: BOp) -> usize {
    ops.push(op);
    ops.len() - 1
}

/// Folds an n-ary gate into a left-leaning chain of binary ops.
fn chain(
    ops: &mut Vec<BOp>,
    map: &[usize],
    fanin: &[NodeId],
    make: fn(usize, usize) -> BOp,
) -> usize {
    let mut acc = map[fanin[0].index()];
    if fanin.len() == 1 {
        // Single-input AND/OR/XOR degenerates to a buffer.
        return push(ops, BOp::Buf(acc));
    }
    for f in &fanin[1..] {
        let rhs = map[f.index()];
        acc = push(ops, make(acc, rhs));
    }
    acc
}

/// Dense symmetric pair matrix with a `1/P` diagonal.
struct PairMatrix {
    n: usize,
    data: Vec<f64>,
}

impl PairMatrix {
    fn new(n: usize) -> Self {
        PairMatrix {
            n,
            data: vec![1.0; n * n],
        }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }
}

/// Feasibility-clamps a correlation coefficient: `P(u ∧ v)` must lie in
/// `[max(0, P(u)+P(v)-1), min(P(u), P(v))]`.
fn clamp_cor(c: f64, pu: f64, pv: f64) -> f64 {
    if pu < P_EPS || pv < P_EPS {
        return 1.0;
    }
    let lo = ((pu + pv - 1.0).max(0.0)) / (pu * pv);
    let hi = pu.min(pv) / (pu * pv);
    // Mathematically lo <= hi; floating point can invert them by an ULP
    // when pu + pv ≈ 1, so order defensively.
    c.clamp(lo.min(hi), hi.max(lo))
}

impl Default for CorrelationSp {
    fn default() -> Self {
        CorrelationSp::new()
    }
}

impl SpEngine for CorrelationSp {
    fn name(&self) -> &'static str {
        "correlation"
    }

    // `w` walks the triangular correlation matrix and indexes both `p`
    // and `cor` rows in lockstep; an iterator form would obscure that.
    #[allow(clippy::needless_range_loop)]
    fn compute(&self, circuit: &Circuit, inputs: &InputProbs) -> Result<SpVector, SpError> {
        // Validate acyclicity up front (decompose expects it).
        ser_netlist::topo_order(circuit)?;
        let (ops, map) = CorrelationSp::decompose(circuit, inputs);
        let n = ops.len();
        if n > self.max_nodes {
            return Err(SpError::CircuitTooLarge {
                nodes: n,
                limit: self.max_nodes,
            });
        }
        let mut p = vec![0.0f64; n];
        let mut cor = PairMatrix::new(n);

        for y in 0..n {
            // 1. Probability of y.
            let py = match ops[y] {
                BOp::Source(q) => q,
                BOp::Buf(u) => p[u],
                BOp::Not(u) => 1.0 - p[u],
                BOp::And2(u, v) => p[u] * p[v] * cor.get(u, v),
                BOp::Or2(u, v) => p[u] + p[v] - p[u] * p[v] * cor.get(u, v),
                BOp::Xor2(u, v) => p[u] + p[v] - 2.0 * p[u] * p[v] * cor.get(u, v),
            };
            let py = py.clamp(0.0, 1.0);
            p[y] = py;

            // 2. Correlation of y with every earlier node w.
            match ops[y] {
                BOp::Source(_) => {
                    // Independent of everything; rows already 1.0.
                }
                BOp::Buf(u) => {
                    for w in 0..y {
                        cor.set(y, w, cor.get(u, w));
                    }
                }
                BOp::Not(u) => {
                    let pu = p[u];
                    for w in 0..y {
                        let c = if py < P_EPS || p[w] < P_EPS {
                            1.0
                        } else {
                            // P(y ∧ w) = P(w) − P(u ∧ w).
                            let puw = pu * p[w] * cor.get(u, w);
                            clamp_cor((p[w] - puw) / (py * p[w]), py, p[w])
                        };
                        cor.set(y, w, c);
                    }
                }
                BOp::And2(u, v) => {
                    for w in 0..y {
                        let c = if py < P_EPS || p[w] < P_EPS {
                            1.0
                        } else {
                            // First-order: P(u ∧ v ∧ w) ≈ P(u)P(v)P(w)·C(uv)C(uw)C(vw);
                            // dividing by P(y)P(w) leaves C(uw)·C(vw).
                            clamp_cor(cor.get(u, w) * cor.get(v, w), py, p[w])
                        };
                        cor.set(y, w, c);
                    }
                }
                BOp::Or2(u, v) => {
                    let (pu, pv) = (p[u], p[v]);
                    let cuv = cor.get(u, v);
                    for w in 0..y {
                        let c = if py < P_EPS || p[w] < P_EPS {
                            1.0
                        } else {
                            let pw = p[w];
                            let puw = pu * pw * cor.get(u, w);
                            let pvw = pv * pw * cor.get(v, w);
                            let puvw = pu * pv * pw * cuv * cor.get(u, w) * cor.get(v, w);
                            clamp_cor((puw + pvw - puvw) / (py * pw), py, pw)
                        };
                        cor.set(y, w, c);
                    }
                }
                BOp::Xor2(u, v) => {
                    let (pu, pv) = (p[u], p[v]);
                    let cuv = cor.get(u, v);
                    for w in 0..y {
                        let c = if py < P_EPS || p[w] < P_EPS {
                            1.0
                        } else {
                            let pw = p[w];
                            let puw = pu * pw * cor.get(u, w);
                            let pvw = pv * pw * cor.get(v, w);
                            let puvw = pu * pv * pw * cuv * cor.get(u, w) * cor.get(v, w);
                            clamp_cor((puw + pvw - 2.0 * puvw) / (py * pw), py, pw)
                        };
                        cor.set(y, w, c);
                    }
                }
            }

            // 3. Diagonal: C(y, y) = P(y ∧ y) / P(y)² = 1 / P(y).
            let diag = if py < P_EPS { 1.0 } else { 1.0 / py };
            cor.data[y * n + y] = diag;
        }

        let values = circuit
            .node_ids()
            .map(|id| p[map[id.index()]])
            .collect::<Vec<_>>();
        Ok(SpVector::new(values))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactSp;
    use crate::independent::IndependentSp;
    use ser_netlist::parse_bench;

    fn engines_on(src: &str, signal: &str, p: f64) -> (f64, f64, f64) {
        let c = parse_bench(src, "t").unwrap();
        let probs = InputProbs::uniform(p);
        let id = c.find(signal).unwrap();
        let exact = ExactSp::new().compute(&c, &probs).unwrap().get(id);
        let indep = IndependentSp::new().compute(&c, &probs).unwrap().get(id);
        let corr = CorrelationSp::new().compute(&c, &probs).unwrap().get(id);
        (exact, indep, corr)
    }

    #[test]
    fn matches_independent_on_trees() {
        // Without reconvergence all three engines agree.
        let (exact, indep, corr) = engines_on(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "y",
            0.3,
        );
        assert!((exact - indep).abs() < 1e-12);
        assert!((exact - corr).abs() < 1e-9, "{exact} vs {corr}");
    }

    #[test]
    fn self_reconvergence_exact() {
        // y = AND(a, a): diagonal 1/P makes this exact.
        let (exact, indep, corr) = engines_on("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "y", 0.5);
        assert!((corr - exact).abs() < 1e-9, "corr {corr} exact {exact}");
        assert!((indep - exact).abs() > 0.2, "independent must be off here");
    }

    #[test]
    fn xor_of_same_signal_is_zero() {
        let (exact, _, corr) = engines_on("INPUT(a)\nOUTPUT(y)\ny = XOR(a, a)\n", "y", 0.4);
        assert!(exact.abs() < 1e-12);
        assert!(corr.abs() < 1e-9, "corr said {corr}");
    }

    #[test]
    fn two_path_reconvergence_beats_independent() {
        // XOR from 4 NANDs — the classic reconvergent structure.
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\nv = NAND(a, u)\nw = NAND(b, u)\ny = NAND(v, w)\n";
        let (exact, indep, corr) = engines_on(src, "y", 0.5);
        let err_indep = (indep - exact).abs();
        let err_corr = (corr - exact).abs();
        assert!(
            err_corr < err_indep,
            "correlation ({corr}) should beat independent ({indep}) vs exact ({exact})"
        );
        // First-order pairwise propagation leaves ~0.034 here (vs 0.109
        // for the independent engine, a 3.2x improvement).
        assert!(err_corr < 0.05, "err_corr = {err_corr}");
    }

    #[test]
    fn biased_inputs_two_path() {
        let src =
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\nv = AND(a, c)\ny = OR(u, v)\n";
        let (exact, indep, corr) = engines_on(src, "y", 0.7);
        let err_indep = (indep - exact).abs();
        let err_corr = (corr - exact).abs();
        assert!(
            err_corr <= err_indep + 1e-12,
            "corr {corr}, indep {indep}, exact {exact}"
        );
        assert!(err_corr < 0.03, "corr error {err_corr}");
    }

    #[test]
    fn nary_gates_decompose() {
        // 4-input NOR with shared signal: exercises the chain path.
        let src = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = NOR(a, b, c, a)\n";
        let (exact, _, corr) = engines_on(src, "y", 0.5);
        assert!((corr - exact).abs() < 0.02, "corr {corr} exact {exact}");
    }

    #[test]
    fn node_limit_enforced() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let err = CorrelationSp::new()
            .with_max_nodes(1)
            .compute(&c, &InputProbs::default())
            .unwrap_err();
        assert!(matches!(err, SpError::CircuitTooLarge { limit: 1, .. }));
    }

    #[test]
    fn constants_and_dffs_are_sources() {
        let src = "INPUT(x)\nOUTPUT(y)\nk = CONST1()\nq = DFF(y)\ny = AND(q, k, x)\n";
        let c = parse_bench(src, "t").unwrap();
        let sp = CorrelationSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        assert_eq!(sp.get(c.find("k").unwrap()), 1.0);
        assert!((sp.get(c.find("q").unwrap()) - 0.5).abs() < 1e-12);
        assert!((sp.get(c.find("y").unwrap()) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn probabilities_stay_in_unit_interval_on_dense_reconvergence() {
        // A deliberately nasty mesh of shared signals.
        let src = "
INPUT(a)
INPUT(b)
OUTPUT(z)
u = XOR(a, b)
v = NAND(u, a)
w = NOR(u, b)
x = AND(v, w, u)
y = OR(v, x, a)
z = XNOR(y, x)
";
        let c = parse_bench(src, "mesh").unwrap();
        let sp = CorrelationSp::new()
            .compute(&c, &InputProbs::uniform(0.5))
            .unwrap();
        for (id, _) in c.iter() {
            let v = sp.get(id);
            assert!((0.0..=1.0).contains(&v), "sp({id}) = {v}");
        }
    }
}
