//! Reduced Ordered Binary Decision Diagrams — the classic symbolic
//! substrate for *exact* probability computation beyond the reach of
//! input enumeration.
//!
//! A node's signal probability is computed in one pass over its BDD:
//! `P(f) = (1 − p_v) · P(f.lo) + p_v · P(f.hi)` — linear in BDD size
//! where enumeration is exponential in input count. Circuits with large
//! support but benign structure (adders, comparators, control logic)
//! get exact answers; genuinely exponential functions (multipliers) hit
//! the node limit and report an error instead of silently burning CPU.
//!
//! The manager is deliberately minimal: complement edges and dynamic
//! reordering are not implemented (clarity over peak capacity); the
//! variable order is the circuit's source order.

// ser-lint: allow(no-hash-iter) — this module's maps are memo/interning
// tables: keyed get/insert only, never iterated, so arena order never
// leaks into node numbering or floats (see the per-field notes below).
use std::collections::HashMap;

/// A BDD function handle (index into the manager's node arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant FALSE function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant TRUE function.
    pub const TRUE: BddRef = BddRef(1);

    /// `true` if this handle is one of the two constants.
    #[must_use]
    pub fn is_constant(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BddNode {
    /// Decision variable (level); smaller = closer to the root.
    var: u32,
    /// Cofactor for `var = 0`.
    lo: BddRef,
    /// Cofactor for `var = 1`.
    hi: BddRef,
}

/// Error raised when a BDD grows past the manager's node limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BddOverflow {
    /// The limit that was exceeded.
    pub limit: usize,
}

impl std::fmt::Display for BddOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BDD exceeded the {}-node limit", self.limit)
    }
}

impl std::error::Error for BddOverflow {}

/// A reduced, ordered BDD manager with hash-consing and an ITE cache.
///
/// # Examples
///
/// ```
/// use ser_sp::bdd::{Bdd, BddRef};
///
/// let mut m = Bdd::new(2, 1 << 20);
/// let a = m.var(0).unwrap();
/// let b = m.var(1).unwrap();
/// let f = m.and(a, b).unwrap();
/// // P(a AND b) with p(a) = 0.5, p(b) = 0.25.
/// let p = m.probability(f, &[0.5, 0.25]);
/// assert!((p - 0.125).abs() < 1e-12);
/// assert_ne!(f, BddRef::FALSE);
/// ```
#[derive(Debug)]
pub struct Bdd {
    nodes: Vec<BddNode>,
    // ser-lint: allow(no-hash-iter) — interning table, get/insert only;
    // node numbering comes from push order on `nodes`, never from here.
    unique: HashMap<BddNode, BddRef>,
    // ser-lint: allow(no-hash-iter) — memo for `ite`, get/insert only.
    ite_cache: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: u32,
    limit: usize,
}

impl Bdd {
    /// Creates a manager for `num_vars` variables with a node limit.
    ///
    /// # Panics
    ///
    /// Panics if `limit < 2` (the constants must fit).
    #[must_use]
    pub fn new(num_vars: usize, limit: usize) -> Self {
        assert!(limit >= 2, "limit must hold at least the constants");
        // Slot 0/1 are dummies standing for the constants (never
        // dereferenced: `is_constant` guards every traversal).
        let sentinel = BddNode {
            var: u32::MAX,
            lo: BddRef::FALSE,
            hi: BddRef::FALSE,
        };
        Bdd {
            nodes: vec![sentinel, sentinel],
            // ser-lint: allow(no-hash-iter) — constructor for the
            // lookup-only unique table above.
            unique: HashMap::new(),
            // ser-lint: allow(no-hash-iter) — constructor for the
            // lookup-only ITE memo above.
            ite_cache: HashMap::new(),
            num_vars: u32::try_from(num_vars).expect("var count fits u32"),
            limit,
        }
    }

    /// Number of live nodes (constants included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `false`: the constants always exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The projection function of variable `v`.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the node limit is already exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn var(&mut self, v: usize) -> Result<BddRef, BddOverflow> {
        assert!((v as u32) < self.num_vars, "variable {v} out of range");
        self.mk(v as u32, BddRef::FALSE, BddRef::TRUE)
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> Result<BddRef, BddOverflow> {
        if lo == hi {
            return Ok(lo); // reduction rule
        }
        let node = BddNode { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.nodes.len() >= self.limit {
            return Err(BddOverflow { limit: self.limit });
        }
        let r = BddRef(u32::try_from(self.nodes.len()).expect("node count fits u32"));
        self.nodes.push(node);
        self.unique.insert(node, r);
        Ok(r)
    }

    fn var_of(&self, f: BddRef) -> u32 {
        if f.is_constant() {
            u32::MAX
        } else {
            self.nodes[f.0 as usize].var
        }
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        if f.is_constant() || self.nodes[f.0 as usize].var != var {
            (f, f)
        } else {
            let n = self.nodes[f.0 as usize];
            (n.lo, n.hi)
        }
    }

    /// If-then-else: the universal connective all others derive from.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] if the result would exceed the limit.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, BddOverflow> {
        // Terminal cases.
        if f == BddRef::TRUE {
            return Ok(g);
        }
        if f == BddRef::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.ite_cache.insert((f, g, h), r);
        Ok(r)
    }

    /// Logical NOT.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] on node-limit exhaustion.
    pub fn not(&mut self, f: BddRef) -> Result<BddRef, BddOverflow> {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Logical AND.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] on node-limit exhaustion.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Logical OR.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] on node-limit exhaustion.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Logical XOR.
    ///
    /// # Errors
    ///
    /// Returns [`BddOverflow`] on node-limit exhaustion.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddOverflow> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// The probability that `f` evaluates to 1 when variable `v` is 1
    /// with independent probability `probs[v]`.
    ///
    /// Linear in the number of BDD nodes reachable from `f`.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len()` differs from the manager's variable
    /// count, or any probability is outside `[0, 1]`.
    #[must_use]
    pub fn probability(&self, f: BddRef, probs: &[f64]) -> f64 {
        assert_eq!(
            probs.len(),
            self.num_vars as usize,
            "one probability per variable"
        );
        for (i, &p) in probs.iter().enumerate() {
            assert!(
                p.is_finite() && (0.0..=1.0).contains(&p),
                "p[{i}] = {p} outside [0,1]"
            );
        }
        // ser-lint: allow(no-hash-iter) — per-call probability memo,
        // get/insert only; the recursion order is BDD-structural.
        let mut memo: HashMap<BddRef, f64> = HashMap::new();
        self.prob_rec(f, probs, &mut memo)
    }

    // ser-lint: allow(no-hash-iter) — the memo parameter above; lookups only.
    fn prob_rec(&self, f: BddRef, probs: &[f64], memo: &mut HashMap<BddRef, f64>) -> f64 {
        if f == BddRef::FALSE {
            return 0.0;
        }
        if f == BddRef::TRUE {
            return 1.0;
        }
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let node = self.nodes[f.0 as usize];
        let p_var = probs[node.var as usize];
        let p = (1.0 - p_var) * self.prob_rec(node.lo, probs, memo)
            + p_var * self.prob_rec(node.hi, probs, memo);
        memo.insert(f, p);
        p
    }

    /// Counts the satisfying assignments of `f` over all variables
    /// (`2^n` scaled; exact for up to 63 variables).
    #[must_use]
    pub fn sat_count(&self, f: BddRef) -> f64 {
        let probs = vec![0.5; self.num_vars as usize];
        self.probability(f, &probs) * 2f64.powi(self.num_vars as i32)
    }

    /// Number of nodes reachable from `f` (the *function's* size, as
    /// opposed to [`len`](Self::len), the arena size including dead
    /// intermediates — this manager does not garbage-collect).
    #[must_use]
    pub fn reachable_count(&self, f: BddRef) -> usize {
        // ser-lint: allow(no-hash-iter) — visited-set for a reachability
        // walk; only `insert` and `len` are used, never iteration.
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_constant() || !seen.insert(r) {
                continue;
            }
            let n = self.nodes[r.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// Extends `path` with `(variable, value)` decisions reaching the
    /// TRUE terminal from `f` (a satisfying assignment; variables not
    /// mentioned are don't-cares). Pushes nothing when `f` is FALSE.
    pub fn walk_to_true(&self, f: BddRef, path: &mut Vec<(usize, bool)>) {
        let mut cur = f;
        while !cur.is_constant() {
            let node = self.nodes[cur.0 as usize];
            // Prefer the branch that can still reach TRUE: a reduced BDD
            // with no complement edges reaches TRUE from every internal
            // node, but one branch may be the FALSE terminal.
            let (branch, value) = if node.hi != BddRef::FALSE {
                (node.hi, true)
            } else {
                (node.lo, false)
            };
            path.push((node.var as usize, value));
            cur = branch;
        }
        if cur == BddRef::FALSE {
            path.clear();
        }
    }

    /// Evaluates `f` under a concrete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len()` differs from the variable count.
    #[must_use]
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars as usize);
        let mut cur = f;
        while !cur.is_constant() {
            let node = self.nodes[cur.0 as usize];
            cur = if assignment[node.var as usize] {
                node.hi
            } else {
                node.lo
            };
        }
        cur == BddRef::TRUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_and_vars() {
        let mut m = Bdd::new(2, 1000);
        let a = m.var(0).unwrap();
        assert!(!a.is_constant());
        assert!(BddRef::TRUE.is_constant());
        assert_eq!(m.probability(BddRef::TRUE, &[0.3, 0.7]), 1.0);
        assert_eq!(m.probability(BddRef::FALSE, &[0.3, 0.7]), 0.0);
        assert_eq!(m.probability(a, &[0.3, 0.7]), 0.3);
    }

    #[test]
    fn hash_consing_is_canonical() {
        let mut m = Bdd::new(2, 1000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let f1 = m.and(a, b).unwrap();
        let f2 = m.and(b, a).unwrap();
        assert_eq!(f1, f2, "AND is canonical regardless of operand order");
        let g1 = m.or(a, b).unwrap();
        let ng = m.not(g1).unwrap();
        let na = m.not(a).unwrap();
        let nb = m.not(b).unwrap();
        let g2 = m.and(na, nb).unwrap();
        assert_eq!(ng, g2, "De Morgan holds structurally");
    }

    #[test]
    fn truth_table_agreement() {
        // Random 3-var expressions vs direct evaluation.
        let mut m = Bdd::new(3, 10_000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b).unwrap();
        let f = m.xor(ab, c).unwrap(); // (a & b) ^ c
        for code in 0u32..8 {
            let assignment = [(code & 1) != 0, (code & 2) != 0, (code & 4) != 0];
            let want = (assignment[0] & assignment[1]) ^ assignment[2];
            assert_eq!(m.eval(f, &assignment), want, "{assignment:?}");
        }
        assert_eq!(m.sat_count(f), 4.0);
    }

    #[test]
    fn probability_matches_enumeration() {
        let mut m = Bdd::new(3, 10_000);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.or(a, b).unwrap();
        let f = m.and(ab, c).unwrap();
        let probs = [0.2, 0.5, 0.9];
        let mut want = 0.0;
        for code in 0u32..8 {
            let bits = [(code & 1) != 0, (code & 2) != 0, (code & 4) != 0];
            if (bits[0] | bits[1]) & bits[2] {
                let mut w = 1.0;
                for (i, &bit) in bits.iter().enumerate() {
                    w *= if bit { probs[i] } else { 1.0 - probs[i] };
                }
                want += w;
            }
        }
        assert!((m.probability(f, &probs) - want).abs() < 1e-12);
    }

    #[test]
    fn xor_chain_stays_linear() {
        // XOR chains are the BDD best case: n vars -> O(n) nodes.
        let n = 40;
        let mut m = Bdd::new(n, 4096);
        let mut acc = m.var(0).unwrap();
        for v in 1..n {
            let x = m.var(v).unwrap();
            acc = m.xor(acc, x).unwrap();
        }
        // The *function* is linear (2n-1 internal nodes); the arena also
        // holds dead intermediates from the fold (no GC), quadratically.
        let live = m.reachable_count(acc);
        assert_eq!(live, 2 * n - 1, "xor chain function size");
        assert!(
            m.len() < 2 * n * n,
            "arena blew past quadratic: {}",
            m.len()
        );
        let probs = vec![0.5; n];
        assert!((m.probability(acc, &probs) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn node_limit_enforced() {
        // A function family with exponential BDDs under a bad order:
        // the "hidden weighted bit"-ish AND-OR mesh; simpler: just set a
        // tiny limit so even small functions overflow.
        let mut m = Bdd::new(8, 6);
        let a = m.var(0).unwrap();
        let b = m.var(1).unwrap();
        let c = m.var(2).unwrap();
        let ab = m.and(a, b);
        let f = ab.and_then(|ab| m.or(ab, c));
        assert!(
            matches!(f, Err(BddOverflow { limit: 6 })),
            "expected overflow, got {f:?}"
        );
    }

    #[test]
    fn idempotence_and_annihilation() {
        let mut m = Bdd::new(1, 100);
        let a = m.var(0).unwrap();
        assert_eq!(m.and(a, a).unwrap(), a);
        assert_eq!(m.or(a, a).unwrap(), a);
        assert_eq!(m.xor(a, a).unwrap(), BddRef::FALSE);
        assert_eq!(m.and(a, BddRef::FALSE).unwrap(), BddRef::FALSE);
        assert_eq!(m.or(a, BddRef::TRUE).unwrap(), BddRef::TRUE);
        let na = m.not(a).unwrap();
        assert_eq!(m.and(a, na).unwrap(), BddRef::FALSE);
        assert_eq!(m.or(a, na).unwrap(), BddRef::TRUE);
        let nna = m.not(na).unwrap();
        assert_eq!(nna, a, "double negation is the identity");
    }
}
