//! Exact signal probability by weighted exhaustive enumeration.
//!
//! The oracle the approximate engines are validated against: enumerate
//! every assignment of the circuit's sources (primary inputs *and*
//! flip-flop outputs), weight each assignment by its probability under
//! the input distribution, and accumulate per-node weighted one-counts.
//! Exponential in the source count, so guarded by a limit.
//!
//! Note on sequential circuits: flip-flop outputs are treated as free
//! 0.5-probability sources (the combinational view). That matches what
//! the other engines' *single-sweep* semantics mean, but is not the
//! steady-state FF distribution; the exact engine is an oracle for the
//! combinational propagation step, not for the sequential fixed point.

use ser_netlist::{Circuit, NodeId};
use ser_sim::{BitSim, ExhaustivePatterns, PatternSource};

use crate::types::{InputProbs, SpEngine, SpError, SpVector};

/// The exact (exhaustive-enumeration) engine.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::{ExactSp, InputProbs, SpEngine};
///
/// // Reconvergent: y = AND(a, a) is exactly a.
/// let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "t")?;
/// let sp = ExactSp::new().compute(&c, &InputProbs::uniform(0.5))?;
/// assert!((sp.get(c.find("y").unwrap()) - 0.5).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExactSp {
    max_sources: usize,
}

impl ExactSp {
    /// Creates the engine with the default source limit (24, i.e. at
    /// most ~16.8M evaluated assignments).
    #[must_use]
    pub fn new() -> Self {
        ExactSp { max_sources: 24 }
    }

    /// Raises or lowers the source-count limit.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than 63.
    #[must_use]
    pub fn with_max_sources(mut self, n: usize) -> Self {
        assert!((1..=63).contains(&n), "limit must be 1..=63");
        self.max_sources = n;
        self
    }

    /// The configured source-count limit.
    #[must_use]
    pub fn max_sources(&self) -> usize {
        self.max_sources
    }
}

impl Default for ExactSp {
    fn default() -> Self {
        ExactSp::new()
    }
}

impl SpEngine for ExactSp {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn compute(&self, circuit: &Circuit, inputs: &InputProbs) -> Result<SpVector, SpError> {
        let sim = BitSim::new(circuit)?;
        let sources: Vec<NodeId> = sim.sources().to_vec();
        if sources.len() > self.max_sources {
            return Err(SpError::TooManySources {
                got: sources.len(),
                limit: self.max_sources,
            });
        }
        // Per-source probability of being 1: PIs from the assignment,
        // flip-flops at 0.5 (combinational view, see module docs).
        let source_p: Vec<f64> = sources
            .iter()
            .map(|&s| {
                if circuit.inputs().contains(&s) {
                    inputs.probability(s)
                } else {
                    0.5
                }
            })
            .collect();
        let mut acc = vec![0.0f64; circuit.len()];
        let mut total_weight = 0.0f64;
        let mut patterns = ExhaustivePatterns::new(sources.len());
        while let Some(block) = patterns.next_block() {
            let values = sim.run(block.words());
            for p in 0..block.count() {
                // Weight of this assignment.
                let mut w = 1.0f64;
                for (s, &ps) in source_p.iter().enumerate() {
                    w *= if block.bit(s, p) { ps } else { 1.0 - ps };
                }
                if w == 0.0 {
                    continue;
                }
                total_weight += w;
                for (slot, word) in acc.iter_mut().zip(&values) {
                    if word >> p & 1 != 0 {
                        *slot += w;
                    }
                }
            }
        }
        debug_assert!((total_weight - 1.0).abs() < 1e-9, "weights sum to 1");
        // Clamp away accumulated rounding.
        let probs = acc
            .into_iter()
            .map(|v| v.clamp(0.0, 1.0))
            .collect::<Vec<_>>();
        Ok(SpVector::new(probs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::independent::IndependentSp;
    use ser_netlist::parse_bench;

    #[test]
    fn matches_independent_on_tree() {
        // Fanout-free circuit: independent SP is exact.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\nu = AND(a, b)\nv = OR(c, d)\ny = XOR(u, v)\n",
            "tree",
        )
        .unwrap();
        let probs = InputProbs::uniform(0.3);
        let exact = ExactSp::new().compute(&c, &probs).unwrap();
        let indep = IndependentSp::new().compute(&c, &probs).unwrap();
        assert!(exact.max_abs_diff(&indep) < 1e-12);
    }

    #[test]
    fn differs_from_independent_under_reconvergence() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NAND(a, b)\nv = NAND(a, u)\nw = NAND(b, u)\ny = NAND(v, w)\n",
            "xor-of-nands",
        )
        .unwrap();
        // This is XOR(a,b): exact P(y) = 0.5.
        let exact = ExactSp::new()
            .compute(&c, &InputProbs::uniform(0.5))
            .unwrap();
        let y = c.find("y").unwrap();
        assert!((exact.get(y) - 0.5).abs() < 1e-12);
        let indep = IndependentSp::new()
            .compute(&c, &InputProbs::uniform(0.5))
            .unwrap();
        assert!(
            (indep.get(y) - 0.5).abs() > 0.01,
            "independent should be biased here, got {}",
            indep.get(y)
        );
    }

    #[test]
    fn weighted_inputs_exact() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "w").unwrap();
        let a = c.find("a").unwrap();
        let b = c.find("b").unwrap();
        let probs = InputProbs::uniform(0.5).with(a, 0.2).with(b, 0.7);
        let exact = ExactSp::new().compute(&c, &probs).unwrap();
        // P(y) = 1 - 0.8*0.3 = 0.76.
        assert!((exact.get(c.find("y").unwrap()) - 0.76).abs() < 1e-12);
    }

    #[test]
    fn source_limit_enforced() {
        let mut src = String::new();
        for i in 0..30 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = AND(");
        src.push_str(
            &(0..30)
                .map(|i| format!("i{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(")\n");
        let c = parse_bench(&src, "big").unwrap();
        let err = ExactSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap_err();
        assert_eq!(err, SpError::TooManySources { got: 30, limit: 24 });
    }

    #[test]
    fn source_limit_adjustable() {
        // A 10-input circuit under a lowered limit errors; raising the
        // limit back admits it.
        let mut src = String::new();
        for i in 0..10 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = OR(");
        src.push_str(
            &(0..10)
                .map(|i| format!("i{i}"))
                .collect::<Vec<_>>()
                .join(", "),
        );
        src.push_str(")\n");
        let c = parse_bench(&src, "mid").unwrap();
        let err = ExactSp::new()
            .with_max_sources(5)
            .compute(&c, &InputProbs::default())
            .unwrap_err();
        assert_eq!(err, SpError::TooManySources { got: 10, limit: 5 });
        let sp = ExactSp::new()
            .with_max_sources(10)
            .compute(&c, &InputProbs::default())
            .unwrap();
        // P(OR of 10 halves) = 1 - 2^-10.
        let y = c.find("y").unwrap();
        assert!((sp.get(y) - (1.0 - 1.0 / 1024.0)).abs() < 1e-12);
    }

    #[test]
    fn dffs_count_as_half_probability_sources() {
        let c = parse_bench("INPUT(x)\nOUTPUT(y)\nq = DFF(y)\ny = AND(q, x)\n", "s").unwrap();
        let exact = ExactSp::new().compute(&c, &InputProbs::default()).unwrap();
        // Combinational view: P(q) = 0.5, P(y) = 0.25.
        assert!((exact.get(c.find("q").unwrap()) - 0.5).abs() < 1e-12);
        assert!((exact.get(c.find("y").unwrap()) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn multi_block_enumeration() {
        // 8 inputs = 256 assignments = 4 blocks; parity tree has exact 0.5.
        let mut src = String::new();
        for i in 0..8 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\ny = XOR(i0, i1, i2, i3, i4, i5, i6, i7)\n");
        let c = parse_bench(&src, "parity").unwrap();
        let exact = ExactSp::new()
            .compute(&c, &InputProbs::uniform(0.3))
            .unwrap();
        // P(odd) over 8 independent p=0.3 bits: (1-(1-2p)^8)/2.
        let want = (1.0 - (1.0f64 - 0.6).powi(8)) / 2.0;
        assert!((exact.get(c.find("y").unwrap()) - want).abs() < 1e-12);
    }
}
