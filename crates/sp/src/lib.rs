//! Signal-probability engines.
//!
//! The paper's EPP computation consumes the *signal probability* (SP) of
//! every off-path signal — "the probability of l having logic value 1"
//! (Parker & McCluskey). The paper treats SP as an input computed by
//! other design-flow steps and reports its cost separately (the `SPT`
//! column of Table 2); this crate therefore provides interchangeable
//! engines behind one trait:
//!
//! - [`IndependentSp`] — the classic linear-time topological pass
//!   (exact on trees, approximate under reconvergent fanout),
//! - [`MonteCarloSp`] — simulation-based estimates,
//! - [`ExactSp`] — weighted exhaustive enumeration (an oracle for small
//!   circuits),
//! - [`BddSp`] — exact via [`bdd`] (scales with BDD size instead of
//!   input count),
//! - [`CorrelationSp`] — pairwise-correlation propagation (an accuracy
//!   ablation between independent and exact).
//!
//! # Examples
//!
//! ```
//! use ser_netlist::parse_bench;
//! use ser_sp::{ExactSp, IndependentSp, InputProbs, SpEngine};
//!
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = OR(a, b)\n", "t")?;
//! let probs = InputProbs::uniform(0.5);
//! let fast = IndependentSp::new().compute(&c, &probs)?;
//! let oracle = ExactSp::new().compute(&c, &probs)?;
//! // No reconvergence here, so the linear-time engine is exact.
//! assert!(fast.max_abs_diff(&oracle) < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bdd;
mod bdd_engine;
mod correlation;
mod exact;
mod independent;
mod monte;
mod types;

pub use bdd_engine::BddSp;
pub use correlation::CorrelationSp;
pub use exact::ExactSp;
pub use independent::{gate_output_probability, IndependentSp};
pub use monte::MonteCarloSp;
pub use types::{InputProbs, SpEngine, SpError, SpVector};
