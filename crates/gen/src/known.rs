//! Exact, hand-checked circuits: the paper's Fig. 1 example, the ISCAS
//! classics small enough to embed verbatim, and the benchmark s27.

use ser_netlist::{parse_bench, Circuit};

/// The paper's Figure 1 circuit.
///
/// `A` is the struck gate's output (modelled as an input so any SEU site
/// can be chosen), `B`, `C`, `F` are the off-path side inputs with the
/// figure's signal probabilities 0.2 / 0.3 / 0.7 (probabilities are
/// assigned by the caller; see the `figure1_walkthrough` example).
///
/// ```text
///   A ──┬───────AND(D)── B     even parity: D carries `a`
///       └─NOT─E─AND(G)── F     odd parity:  G carries `ā`
///   H = OR(C, D, G) → PO       opposite polarities reconverge at H
/// ```
#[must_use]
pub fn figure1() -> Circuit {
    parse_bench(
        "
# Fig. 1 of Asadi & Tahoori, DATE'05
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
D = AND(A, B)
G = AND(E, F)
H = OR(C, D, G)
",
        "figure1",
    )
    .expect("embedded netlist is valid")
}

/// ISCAS'85 c17 — the canonical six-NAND example circuit.
#[must_use]
pub fn c17() -> Circuit {
    parse_bench(
        "
# ISCAS'85 c17
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
",
        "c17",
    )
    .expect("embedded netlist is valid")
}

/// ISCAS'89 s27 — the smallest sequential benchmark (4 PI, 1 PO,
/// 3 DFF, 10 gates).
#[must_use]
pub fn s27() -> Circuit {
    parse_bench(
        "
# ISCAS'89 s27
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
",
        "s27",
    )
    .expect("embedded netlist is valid")
}

/// A 2-input XOR built from four NANDs — the canonical reconvergent
/// structure used throughout the accuracy ablations.
#[must_use]
pub fn xor_from_nands() -> Circuit {
    parse_bench(
        "
INPUT(a)
INPUT(b)
OUTPUT(y)
u = NAND(a, b)
v = NAND(a, u)
w = NAND(b, u)
y = NAND(v, w)
",
        "xor-nand",
    )
    .expect("embedded netlist is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::CircuitStats;

    #[test]
    fn figure1_shape() {
        let c = figure1();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_gates(), 4);
        assert!(c.is_combinational());
    }

    #[test]
    fn c17_shape() {
        let c = c17();
        let s = CircuitStats::compute(&c).unwrap();
        assert_eq!(s.inputs, 5);
        assert_eq!(s.outputs, 2);
        assert_eq!(s.gates, 6);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn s27_shape() {
        let c = s27();
        let s = CircuitStats::compute(&c).unwrap();
        assert_eq!(s.inputs, 4);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.dffs, 3);
        assert_eq!(s.gates, 10);
    }

    #[test]
    fn xor_from_nands_is_xor() {
        use ser_sim::BitSim;
        let c = xor_from_nands();
        let sim = BitSim::new(&c).unwrap();
        let y = c.find("y").unwrap();
        for a in [false, true] {
            for b in [false, true] {
                let v = sim.run_scalar(&[a, b]);
                assert_eq!(v[y.index()], a ^ b, "xor({a},{b})");
            }
        }
    }

    #[test]
    fn c17_truth_spot_checks() {
        use ser_sim::BitSim;
        let c = c17();
        let sim = BitSim::new(&c).unwrap();
        let g22 = c.find("G22").unwrap();
        let g23 = c.find("G23").unwrap();
        // All-zero inputs: G10 = 1, G11 = 1, G16 = 1, G19 = 1 -> G22 = 0, G23 = 0.
        let v = sim.run_scalar(&[false; 5]);
        assert!(!v[g22.index()]);
        assert!(!v[g23.index()]);
        // All-one inputs: G10 = 0, G11 = 0 -> G16 = 1, G19 = 1, G22 = 1, G23 = 0.
        let v = sim.run_scalar(&[true; 5]);
        assert!(v[g22.index()]);
        assert!(!v[g23.index()]);
    }
}
