//! Random DAGs with controlled reconvergence — the knob the accuracy
//! ablations sweep.
//!
//! The paper's polarity tracking exists to handle reconvergent fanout;
//! its residual error grows with how much *correlated* reconvergence a
//! circuit has. [`RandomDag`] exposes that as a dial: `reconvergence`
//! close to 0 yields tree-like circuits (analytical EPP exact),
//! close to 1 yields dense shared-fanin meshes (worst case).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ser_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};

/// Configuration for a random combinational DAG.
///
/// # Examples
///
/// ```
/// use ser_gen::RandomDag;
///
/// let c = RandomDag::new(8, 60).with_reconvergence(0.8).build(42);
/// assert_eq!(c.num_inputs(), 8);
/// assert_eq!(c.num_gates(), 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomDag {
    inputs: usize,
    gates: usize,
    outputs: usize,
    reconvergence: f64,
    xor_fraction: f64,
}

impl RandomDag {
    /// A DAG over `inputs` primary inputs and exactly `gates` gates;
    /// defaults: 25% of gates become outputs (at least 1), moderate
    /// reconvergence 0.5, XOR fraction 0.1.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` or `gates` is 0.
    #[must_use]
    pub fn new(inputs: usize, gates: usize) -> Self {
        assert!(inputs > 0, "at least one input");
        assert!(gates > 0, "at least one gate");
        RandomDag {
            inputs,
            gates,
            outputs: (gates / 4).max(1),
            reconvergence: 0.5,
            xor_fraction: 0.1,
        }
    }

    /// Sets the number of primary outputs.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or greater than the gate count.
    #[must_use]
    pub fn with_outputs(mut self, n: usize) -> Self {
        assert!(n > 0 && n <= self.gates, "outputs must be 1..=gates");
        self.outputs = n;
        self
    }

    /// Sets the reconvergence dial in `[0, 1]`: the probability that a
    /// gate's extra fanins are drawn from *already-used* nodes (sharing
    /// fanout stems) instead of fresh ones.
    ///
    /// # Panics
    ///
    /// Panics if `r` is outside `[0, 1]`.
    #[must_use]
    pub fn with_reconvergence(mut self, r: f64) -> Self {
        assert!((0.0..=1.0).contains(&r), "reconvergence outside [0,1]");
        self.reconvergence = r;
        self
    }

    /// Sets the fraction of XOR/XNOR gates (error-transparent logic).
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `[0, 1]`.
    #[must_use]
    pub fn with_xor_fraction(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "xor fraction outside [0,1]");
        self.xor_fraction = f;
        self
    }

    /// Builds the circuit deterministically from `seed`.
    ///
    /// The reconvergence dial steers *extra* fanin picks by current
    /// fanout: a high dial prefers nodes that already drive exactly one
    /// pin (each such pick mints a new fanout stem), a low dial prefers
    /// driver-less nodes, and — when forced to reuse — the heaviest
    /// existing stem (which mints no new stem).
    #[must_use]
    pub fn build(&self, seed: u64) -> Circuit {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut b = CircuitBuilder::new(format!(
            "dag_i{}g{}r{:02}",
            self.inputs,
            self.gates,
            (self.reconvergence * 100.0) as u32
        ));
        let mut nodes: Vec<NodeId> = (0..self.inputs)
            .map(|i| b.input(&format!("i{i}")))
            .collect();
        let mut fanout: Vec<u32> = vec![0; self.inputs + self.gates];
        // Samples k candidates and keeps the best by `score` (higher
        // wins); ties keep the first.
        let sample_best = |nodes: &[NodeId],
                           rng: &mut SmallRng,
                           fanout: &[u32],
                           score: &dyn Fn(u32) -> i64|
         -> NodeId {
            let mut best = *nodes.choose(rng).expect("nodes exist");
            let mut best_score = score(fanout[best.index()]);
            for _ in 0..7 {
                let cand = *nodes.choose(rng).expect("nodes exist");
                let s = score(fanout[cand.index()]);
                if s > best_score {
                    best = cand;
                    best_score = s;
                }
            }
            best
        };
        for gi in 0..self.gates {
            let kind = if rng.gen_bool(self.xor_fraction) {
                if rng.gen_bool(0.5) {
                    GateKind::Xor
                } else {
                    GateKind::Xnor
                }
            } else {
                *[
                    GateKind::And,
                    GateKind::Or,
                    GateKind::Nand,
                    GateKind::Nor,
                    GateKind::Not,
                ]
                .choose(&mut rng)
                .expect("non-empty")
            };
            let want = if kind == GateKind::Not {
                1
            } else {
                rng.gen_range(2..=3)
            };
            let mut fanin: Vec<NodeId> = Vec::with_capacity(want);
            // First fanin: most recent node (creates a long spine).
            fanin.push(*nodes.last().expect("inputs exist"));
            for _ in 1..want {
                let reconv = rng.gen_bool(self.reconvergence);
                let node = if reconv {
                    // Convert a single-fanout node into a stem (or touch
                    // an existing stem): never pick a fresh node.
                    sample_best(&nodes, &mut rng, &fanout, &|f| match f {
                        1 => 2,           // best: mints a brand-new stem
                        x if x >= 2 => 1, // fine: deepens an existing stem
                        _ => 0,           // fresh: avoid
                    })
                } else {
                    // Prefer fresh nodes; when none sampled, reuse the
                    // heaviest stem so no new stem is minted.
                    sample_best(&nodes, &mut rng, &fanout, &|f| {
                        if f == 0 {
                            i64::MAX
                        } else {
                            i64::from(f)
                        }
                    })
                };
                if !fanin.contains(&node) || kind == GateKind::Not {
                    fanin.push(node);
                } else {
                    fanin.push(*nodes.choose(&mut rng).expect("nodes exist"));
                }
            }
            let id = b.gate(&format!("g{gi}"), kind, &fanin);
            for &f in &fanin {
                fanout[f.index()] += 1;
            }
            nodes.push(id);
        }
        // Outputs: the driver-less sinks first, then the deepest gates.
        let gate_nodes = &nodes[self.inputs..];
        let mut outs: Vec<NodeId> = gate_nodes
            .iter()
            .copied()
            .filter(|n| fanout[n.index()] == 0)
            .collect();
        outs.truncate(self.outputs);
        let mut i = gate_nodes.len();
        while outs.len() < self.outputs && i > 0 {
            i -= 1;
            if !outs.contains(&gate_nodes[i]) {
                outs.push(gate_nodes[i]);
            }
        }
        for id in outs {
            b.mark_output(id);
        }
        b.finish().expect("random dag is structurally valid")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::CircuitStats;

    #[test]
    fn respects_counts() {
        let c = RandomDag::new(6, 40).with_outputs(5).build(1);
        assert_eq!(c.num_inputs(), 6);
        assert_eq!(c.num_gates(), 40);
        assert_eq!(c.num_outputs(), 5);
        assert!(c.is_combinational());
    }

    #[test]
    fn deterministic() {
        let cfg = RandomDag::new(5, 30);
        assert_eq!(cfg.build(9), cfg.build(9));
        assert_ne!(cfg.build(9), cfg.build(10));
    }

    #[test]
    fn reconvergence_dial_changes_stem_count() {
        let low = RandomDag::new(10, 200).with_reconvergence(0.05).build(3);
        let high = RandomDag::new(10, 200).with_reconvergence(0.95).build(3);
        let s_low = CircuitStats::compute(&low).unwrap();
        let s_high = CircuitStats::compute(&high).unwrap();
        assert!(
            s_high.fanout_stems > s_low.fanout_stems,
            "high dial {} stems vs low dial {}",
            s_high.fanout_stems,
            s_low.fanout_stems
        );
    }

    #[test]
    fn xor_fraction_dial() {
        let none = RandomDag::new(8, 150).with_xor_fraction(0.0).build(2);
        let lots = RandomDag::new(8, 150).with_xor_fraction(0.9).build(2);
        let count_xor = |c: &Circuit| {
            c.iter()
                .filter(|(_, n)| matches!(n.kind(), GateKind::Xor | GateKind::Xnor))
                .count()
        };
        assert_eq!(count_xor(&none), 0);
        assert!(count_xor(&lots) > 100);
    }

    #[test]
    fn all_dags_simulate_and_are_acyclic() {
        use ser_sim::BitSim;
        for seed in 0..5 {
            let c = RandomDag::new(4, 25).build(seed);
            let sim = BitSim::new(&c).unwrap();
            let v = sim.run(&[0, !0, 0xF0F0_F0F0_F0F0_F0F0, 7]);
            assert_eq!(v.len(), c.len());
        }
    }
}
