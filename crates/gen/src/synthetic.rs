//! Deterministic synthetic circuits matched to a structural
//! [`Profile`].
//!
//! The generator builds a levelized random netlist with exactly the
//! profile's source/sink/gate counts and approximately its depth:
//!
//! 1. primary inputs and flip-flops come first (flip-flop D drivers are
//!    forward references to late-band gate indexes chosen up front);
//! 2. gates are assigned to `depth` bands; each gate draws its first
//!    fanin from the previous band (guaranteeing depth) and the rest
//!    preferentially from a pool of still-driverless nodes (minimizing
//!    dead logic);
//! 3. primary outputs are drawn from the remaining driver-less gates
//!    first, then from the last bands.
//!
//! Everything is seeded: the same `(profile, seed)` pair yields the
//! same circuit on every run and platform.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use ser_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};

use crate::profiles::Profile;

/// Gate-kind mix for generated circuits (ISCAS-flavoured: NAND/NOR
/// heavy, a sprinkle of XOR and buffers).
const KIND_WEIGHTS: [(GateKind, u32); 8] = [
    (GateKind::Nand, 24),
    (GateKind::Nor, 14),
    (GateKind::And, 18),
    (GateKind::Or, 18),
    (GateKind::Not, 12),
    (GateKind::Xor, 5),
    (GateKind::Xnor, 2),
    (GateKind::Buf, 7),
];

fn pick_kind(rng: &mut SmallRng) -> GateKind {
    let total: u32 = KIND_WEIGHTS.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.gen_range(0..total);
    for &(kind, w) in &KIND_WEIGHTS {
        if roll < w {
            return kind;
        }
        roll -= w;
    }
    unreachable!("weights cover the range")
}

fn pick_fanin_count(rng: &mut SmallRng, kind: GateKind) -> usize {
    match kind {
        GateKind::Not | GateKind::Buf => 1,
        _ => match rng.gen_range(0u32..100) {
            0..=59 => 2,
            60..=84 => 3,
            _ => 4,
        },
    }
}

/// FNV-1a, so profile names perturb the seed deterministically.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// A pool of driver-less nodes supporting O(1) random removal.
#[derive(Debug, Default)]
struct DeadPool {
    items: Vec<NodeId>,
    /// Position of each node in `items` (`usize::MAX` when absent).
    pos: Vec<usize>,
}

impl DeadPool {
    fn with_capacity(nodes: usize) -> Self {
        DeadPool {
            items: Vec::with_capacity(nodes),
            pos: vec![usize::MAX; nodes],
        }
    }

    fn insert(&mut self, id: NodeId) {
        if self.pos[id.index()] == usize::MAX {
            self.pos[id.index()] = self.items.len();
            self.items.push(id);
        }
    }

    fn remove(&mut self, id: NodeId) {
        let p = self.pos[id.index()];
        if p == usize::MAX {
            return;
        }
        self.items.swap_remove(p);
        self.pos[id.index()] = usize::MAX;
        if let Some(&moved) = self.items.get(p) {
            self.pos[moved.index()] = p;
        }
    }

    /// Pops a random element from (approximately) the `window` most
    /// recently inserted — the locality bias that keeps synthetic cones
    /// from degenerating into global small-world meshes.
    fn pop_window(&mut self, rng: &mut SmallRng, window: usize) -> Option<NodeId> {
        if self.items.is_empty() {
            return None;
        }
        let lo = self.items.len().saturating_sub(window);
        let i = rng.gen_range(lo..self.items.len());
        let id = self.items.swap_remove(i);
        self.pos[id.index()] = usize::MAX;
        if let Some(&moved) = self.items.get(i) {
            self.pos[moved.index()] = i;
        }
        Some(id)
    }

    fn len(&self) -> usize {
        self.items.len()
    }
}

/// Synthesizes a circuit matching `profile`, deterministically from
/// `seed`.
///
/// The result has **exactly** the profile's input/output/flip-flop/gate
/// counts; depth is approximate (the band construction guarantees
/// `depth` levels exactly when `depth <= gates`).
///
/// # Panics
///
/// Panics if the profile is degenerate (zero gates or zero inputs).
///
/// # Examples
///
/// ```
/// use ser_gen::{profile, synthesize};
///
/// let p = profile("s953").unwrap();
/// let c = synthesize(&p, 1);
/// assert_eq!(c.num_gates(), 395);
/// assert_eq!(c.num_dffs(), 29);
/// // Deterministic: same seed, same circuit.
/// assert_eq!(c, synthesize(&p, 1));
/// ```
#[must_use]
pub fn synthesize(profile: &Profile, seed: u64) -> Circuit {
    assert!(profile.gates > 0, "profile must have gates");
    assert!(profile.inputs > 0, "profile must have inputs");
    let mut rng = SmallRng::seed_from_u64(seed ^ fnv1a(profile.name));
    let mut b = CircuitBuilder::new(profile.name);
    let total_nodes = profile.inputs + profile.dffs + profile.gates;

    // --- Flip-flop D drivers: late-band gate indexes chosen up front. --
    // Biasing them late makes state capture deep logic (like the real
    // benchmarks) and lets the generator account their fanout so D
    // drivers are not double-used as primary outputs.
    let d_lo = profile
        .gates
        .saturating_sub((4 * profile.dffs).max(profile.gates / 4));
    let mut d_drivers: Vec<usize> = Vec::with_capacity(profile.dffs);
    let mut d_driver_set: HashSet<usize> = HashSet::new();
    for _ in 0..profile.dffs {
        let idx = rng.gen_range(d_lo..profile.gates);
        d_drivers.push(idx);
        d_driver_set.insert(idx);
    }

    // --- Sources ------------------------------------------------------
    let mut sources: Vec<NodeId> = Vec::with_capacity(profile.inputs + profile.dffs);
    for i in 0..profile.inputs {
        sources.push(b.input(&format!("I{i}")));
    }
    for (k, &idx) in d_drivers.iter().enumerate() {
        sources.push(b.gate_named(&format!("Q{k}"), GateKind::Dff, &[format!("G{idx}")]));
    }

    // --- Gate bands ----------------------------------------------------
    let depth = profile.depth.max(1).min(profile.gates);
    let per_band = profile.gates / depth;
    let extra = profile.gates % depth;

    let mut pool = DeadPool::with_capacity(total_nodes);
    for &s in &sources {
        pool.insert(s);
    }
    let mut all_nodes: Vec<NodeId> = sources.clone();
    // The depth *spine*: one gate per band chains off the previous
    // band's spine gate, pinning the circuit depth to the band count.
    // Every other gate draws its first fanin from a recent window, so
    // the level histogram decays like real benchmarks' instead of
    // piling every gate at maximum depth.
    let mut spine = *sources.choose(&mut rng).expect("sources exist");
    let mut gi = 0usize;
    for band in 0..depth {
        let count = per_band + usize::from(band < extra);
        let mut this_band: Vec<NodeId> = Vec::with_capacity(count);
        for k in 0..count {
            let kind = pick_kind(&mut rng);
            let want = pick_fanin_count(&mut rng, kind);
            let mut fanin: Vec<NodeId> = Vec::with_capacity(want);
            // First fanin: the spine for the band's first gate, a
            // recent node otherwise.
            let first = if k == 0 {
                spine
            } else {
                let lo = all_nodes
                    .len()
                    .saturating_sub((4 * per_band.max(1)).max(32));
                all_nodes[rng.gen_range(lo..all_nodes.len())]
            };
            fanin.push(first);
            pool.remove(first);
            // Remaining fanins: drain the driver-less pool first, with a
            // locality window (real logic consumes nearby signals; fully
            // global wiring would make every cone a reconvergent mesh).
            let window = (4 * per_band.max(1)).max(32);
            for _ in 1..want {
                let node = if pool.len() > 0 && rng.gen_bool(0.8) {
                    // Retry a few times to avoid duplicate pins.
                    let mut picked = None;
                    for _ in 0..4 {
                        if let Some(cand) = pool.pop_window(&mut rng, window) {
                            if fanin.contains(&cand) {
                                pool.insert(cand); // put it back
                            } else {
                                picked = Some(cand);
                                break;
                            }
                        }
                    }
                    picked
                } else {
                    None
                };
                let node = node.unwrap_or_else(|| {
                    let lo = all_nodes.len().saturating_sub(window);
                    let mut cand = all_nodes[rng.gen_range(lo..all_nodes.len())];
                    if fanin.contains(&cand) {
                        cand = all_nodes[rng.gen_range(lo..all_nodes.len())];
                    }
                    pool.remove(cand);
                    cand
                });
                fanin.push(node);
            }
            let id = b.gate(&format!("G{gi}"), kind, &fanin);
            if k == 0 {
                spine = id;
            }
            this_band.push(id);
            gi += 1;
        }
        // Publish the band only once complete, so same-band gates cannot
        // chain (which would overshoot the target depth). D-driven gates
        // already have a consumer (the flip-flop), so they skip the pool.
        let band_start_gi = gi - this_band.len();
        for (offset, &id) in this_band.iter().enumerate() {
            if !d_driver_set.contains(&(band_start_gi + offset)) {
                pool.insert(id);
            }
        }
        all_nodes.extend_from_slice(&this_band);
    }
    debug_assert_eq!(gi, profile.gates);

    // --- Primary outputs ------------------------------------------------
    // Driver-less gates first (eliminating dead logic), deepest last
    // bands as filler. Driver-less *inputs* stay unconnected rather than
    // becoming outputs (an input that is also an output is legal but
    // useless for the experiments).
    let gate_ids: &[NodeId] = &all_nodes[profile.inputs + profile.dffs..];
    let mut dead_gates: Vec<NodeId> = gate_ids
        .iter()
        .copied()
        .filter(|id| pool.pos[id.index()] != usize::MAX)
        .collect();
    dead_gates.shuffle(&mut rng);
    let mut outputs: Vec<NodeId> = Vec::with_capacity(profile.outputs);
    for id in dead_gates {
        if outputs.len() == profile.outputs {
            break;
        }
        outputs.push(id);
    }
    let mut cursor = gate_ids.len();
    while outputs.len() < profile.outputs && cursor > 0 {
        cursor -= 1;
        let id = gate_ids[cursor];
        if !outputs.contains(&id) {
            outputs.push(id);
        }
    }
    assert!(
        outputs.len() == profile.outputs,
        "profile wants more outputs than gates exist"
    );
    for id in outputs {
        b.mark_output(id);
    }

    b.finish().expect("generated netlist is structurally valid")
}

/// Synthesizes the stand-in for a named benchmark with the default
/// seed 1 (`synthesize(&profile(name)?, 1)`).
#[must_use]
pub fn iscas89_like(name: &str) -> Option<Circuit> {
    crate::profiles::profile(name).map(|p| synthesize(&p, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{profile, SMALL, TABLE2};
    use ser_netlist::CircuitStats;

    #[test]
    fn counts_match_profile_exactly() {
        for p in SMALL.iter().chain(TABLE2.iter().take(6)) {
            let c = synthesize(p, 7);
            assert_eq!(c.num_inputs(), p.inputs, "{}", p.name);
            assert_eq!(c.num_outputs(), p.outputs, "{}", p.name);
            assert_eq!(c.num_dffs(), p.dffs, "{}", p.name);
            assert_eq!(c.num_gates(), p.gates, "{}", p.name);
        }
    }

    #[test]
    fn depth_is_close_to_target() {
        for p in &SMALL {
            let c = synthesize(p, 7);
            let s = CircuitStats::compute(&c).unwrap();
            assert!(
                s.depth >= p.depth,
                "{}: depth {} below target {}",
                p.name,
                s.depth,
                p.depth
            );
            assert!(
                s.depth <= p.depth + 4,
                "{}: depth {} far above target {}",
                p.name,
                s.depth,
                p.depth
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let p = profile("s386").unwrap();
        assert_eq!(synthesize(&p, 3), synthesize(&p, 3));
        assert_ne!(synthesize(&p, 3), synthesize(&p, 4));
    }

    #[test]
    fn little_dead_logic() {
        for name in ["s1196", "s953", "s1423"] {
            let p = profile(name).unwrap();
            let c = synthesize(&p, 1);
            let is_sink: Vec<bool> = {
                let mut v = vec![false; c.len()];
                for pt in c.observe_points() {
                    v[pt.signal().index()] = true;
                }
                v
            };
            let dead = c
                .iter()
                .filter(|(id, n)| {
                    n.kind().is_logic() && n.fanout().is_empty() && !is_sink[id.index()]
                })
                .count();
            let frac = dead as f64 / c.num_gates() as f64;
            assert!(
                frac < 0.02,
                "{name}: dead fraction {frac} too high ({dead} gates)"
            );
        }
    }

    #[test]
    fn iscas89_like_lookup() {
        assert!(iscas89_like("s953").is_some());
        // ISCAS'85 profiles resolve too (combinational stand-ins).
        let c880 = iscas89_like("c880").unwrap();
        assert!(c880.is_combinational());
        assert!(iscas89_like("b17").is_none());
        let c = iscas89_like("s298").unwrap();
        assert_eq!(c.name(), "s298");
    }

    #[test]
    fn generated_circuits_simulate() {
        use ser_sim::BitSim;
        let p = profile("s344").unwrap();
        let c = synthesize(&p, 5);
        let sim = BitSim::new(&c).unwrap();
        let words: Vec<u64> = (0..sim.sources().len() as u64).collect();
        let values = sim.run(&words);
        assert_eq!(values.len(), c.len());
    }

    #[test]
    fn dffs_are_driven_by_gates() {
        let p = profile("s526").unwrap();
        let c = synthesize(&p, 9);
        for &ff in c.dffs() {
            let d = c.node(ff).fanin()[0];
            assert!(
                c.node(d).kind().is_logic(),
                "DFF driven by {}",
                c.node(d).kind()
            );
        }
    }

    #[test]
    #[should_panic(expected = "profile must have gates")]
    fn degenerate_profile_rejected() {
        let p = Profile {
            name: "zero",
            inputs: 1,
            outputs: 1,
            dffs: 0,
            gates: 0,
            depth: 1,
        };
        let _ = synthesize(&p, 0);
    }
}
