//! Benchmark-circuit substrate for the SER suite.
//!
//! The paper evaluates on the ISCAS'89 benchmarks — distribution-
//! restricted netlists this repository does not ship. This crate
//! provides everything the experiments need instead:
//!
//! - [`figure1`], [`c17`], [`s27`], [`xor_from_nands`] — exact embedded
//!   circuits (the paper's worked example and the tiny classics),
//! - [`TABLE2`]/[`profile`]/[`synthesize`]/[`iscas89_like`] —
//!   deterministic synthetic stand-ins matching each Table 2 circuit's
//!   published structural profile (see DESIGN.md §2),
//! - structured generators ([`ripple_carry_adder`],
//!   [`array_multiplier`], [`parity_tree`], [`mux_tree`],
//!   [`equality_comparator`]) with known functionality,
//! - sequential generators ([`shift_register`], [`counter`], [`lfsr`],
//!   [`accumulator`]),
//! - [`RandomDag`] — reconvergence-controlled random circuits for the
//!   accuracy ablations.
//!
//! # Examples
//!
//! ```
//! use ser_gen::{iscas89_like, TABLE2};
//!
//! let c = iscas89_like("s1238").unwrap();
//! assert_eq!(c.num_gates(), TABLE2[2].gates);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod known;
mod profiles;
mod random_dag;
mod sequential_gen;
mod structured;
mod synthetic;

pub use known::{c17, figure1, s27, xor_from_nands};
pub use profiles::{profile, Profile, ISCAS85, SMALL, TABLE2};
pub use random_dag::RandomDag;
pub use sequential_gen::{accumulator, counter, lfsr, shift_register};
pub use structured::{
    array_multiplier, equality_comparator, mux_tree, parity_tree, ripple_carry_adder,
};
pub use synthetic::{iscas89_like, synthesize};
