//! Structured combinational generators: arithmetic and datapath shapes
//! with known functional behaviour (the workloads the paper's
//! introduction motivates — logic whose soft errors corrupt data).

use ser_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};

/// An `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`;
/// outputs `s0..` and `cout`.
///
/// # Panics
///
/// Panics if `n` is 0.
///
/// # Examples
///
/// ```
/// use ser_gen::ripple_carry_adder;
///
/// let c = ripple_carry_adder(8);
/// assert_eq!(c.num_inputs(), 17);  // 8 + 8 + cin
/// assert_eq!(c.num_outputs(), 9);  // 8 sums + cout
/// ```
#[must_use]
pub fn ripple_carry_adder(n: usize) -> Circuit {
    assert!(n > 0, "adder width must be positive");
    let mut b = CircuitBuilder::new(format!("rca{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| b.input(&format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.input(&format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..n {
        let axb = b.gate(&format!("axb{i}"), GateKind::Xor, &[a[i], bb[i]]);
        let sum = b.gate(&format!("s{i}"), GateKind::Xor, &[axb, carry]);
        let ab = b.gate(&format!("ab{i}"), GateKind::And, &[a[i], bb[i]]);
        let ac = b.gate(&format!("ac{i}"), GateKind::And, &[axb, carry]);
        carry = b.gate(&format!("c{}", i + 1), GateKind::Or, &[ab, ac]);
        b.mark_output(sum);
    }
    b.mark_output(carry);
    b.finish().expect("adder is structurally valid")
}

/// An `n × n` array multiplier: inputs `a0..`, `b0..`; outputs
/// `p0..p{2n-1}`.
///
/// # Panics
///
/// Panics if `n` is 0.
#[must_use]
// Row/column indices address the `pp`/`sums`/`carries` grids jointly;
// the index form mirrors the array-multiplier diagram.
#[allow(clippy::needless_range_loop)]
pub fn array_multiplier(n: usize) -> Circuit {
    assert!(n > 0, "multiplier width must be positive");
    let mut b = CircuitBuilder::new(format!("mul{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| b.input(&format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.input(&format!("b{i}"))).collect();
    // Partial products.
    let mut pp = vec![vec![NodeId::from_index(0); n]; n];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in bb.iter().enumerate() {
            pp[i][j] = b.gate(&format!("pp{i}_{j}"), GateKind::And, &[ai, bj]);
        }
    }
    // Carry-save reduction, row by row.
    // row holds the current accumulated bits for columns i..i+n.
    let mut sums: Vec<NodeId> = pp[0].clone(); // column weights 0..n-1 for row 0
    let mut carries: Vec<NodeId> = Vec::new();
    b.mark_output(sums[0]); // p0
    let mut outputs = 1usize;
    let mut prev_carry: Vec<NodeId> = Vec::new();
    for i in 1..n {
        // Add row i (pp[i][j] at column i+j) into sums/carries.
        let mut new_sums = Vec::with_capacity(n);
        let mut new_carries = Vec::with_capacity(n);
        for j in 0..n {
            // Bits at column i + j: shifted accumulator bit, the fresh
            // partial product, and last row's carry (if any).
            let acc = if j + 1 < sums.len() {
                Some(sums[j + 1])
            } else {
                None
            };
            let carry_in = prev_carry.get(j).copied();
            let tag = format!("r{i}_{j}");
            let (s, c) = match (acc, carry_in) {
                (Some(x), Some(ci)) => full_adder(&mut b, &tag, x, pp[i][j], ci),
                (Some(x), None) => half_adder(&mut b, &tag, x, pp[i][j]),
                (None, Some(ci)) => half_adder(&mut b, &tag, pp[i][j], ci),
                (None, None) => {
                    let s = b.gate(&format!("s{tag}"), GateKind::Buf, &[pp[i][j]]);
                    let c = b.constant(&format!("c{tag}"), false);
                    (s, c)
                }
            };
            new_sums.push(s);
            new_carries.push(c);
        }
        b.mark_output(new_sums[0]); // p_i
        outputs += 1;
        sums = new_sums;
        prev_carry = new_carries;
        carries = prev_carry.clone();
    }
    // Final ripple: combine remaining sums (columns n..2n-1) with carries.
    let mut carry: Option<NodeId> = None;
    for j in 1..n {
        let tag = format!("f{j}");
        let ci = carries.get(j - 1).copied();
        let (s, c) = match (ci, carry) {
            (Some(x), Some(cc)) => full_adder(&mut b, &tag, sums[j], x, cc),
            (Some(x), None) => half_adder(&mut b, &tag, sums[j], x),
            (None, Some(cc)) => half_adder(&mut b, &tag, sums[j], cc),
            (None, None) => {
                let s = b.gate(&format!("s{tag}"), GateKind::Buf, &[sums[j]]);
                (s, b.constant(&format!("c{tag}"), false))
            }
        };
        b.mark_output(s);
        outputs += 1;
        carry = Some(c);
    }
    // Top bit.
    let last = carries.last().copied();
    let tag = "top".to_owned();
    let top = match (last, carry) {
        (Some(x), Some(cc)) => {
            let (s, _c) = half_adder(&mut b, &tag, x, cc);
            s
        }
        (Some(x), None) => x,
        (None, Some(cc)) => cc,
        (None, None) => b.constant("ctop", false),
    };
    b.mark_output(top);
    outputs += 1;
    debug_assert_eq!(outputs, 2 * n);
    b.finish().expect("multiplier is structurally valid")
}

fn full_adder(
    b: &mut CircuitBuilder,
    tag: &str,
    x: NodeId,
    y: NodeId,
    z: NodeId,
) -> (NodeId, NodeId) {
    let xy = b.gate(&format!("fx{tag}"), GateKind::Xor, &[x, y]);
    let s = b.gate(&format!("fs{tag}"), GateKind::Xor, &[xy, z]);
    let and1 = b.gate(&format!("fa{tag}"), GateKind::And, &[x, y]);
    let and2 = b.gate(&format!("fb{tag}"), GateKind::And, &[xy, z]);
    let c = b.gate(&format!("fc{tag}"), GateKind::Or, &[and1, and2]);
    (s, c)
}

fn half_adder(b: &mut CircuitBuilder, tag: &str, x: NodeId, y: NodeId) -> (NodeId, NodeId) {
    let s = b.gate(&format!("hs{tag}"), GateKind::Xor, &[x, y]);
    let c = b.gate(&format!("hc{tag}"), GateKind::And, &[x, y]);
    (s, c)
}

/// A balanced XOR parity tree over `n` inputs — maximally transparent
/// to errors (every SEU always propagates), the anti-masking extreme of
/// the ablation sweeps.
///
/// # Panics
///
/// Panics if `n` is 0.
#[must_use]
pub fn parity_tree(n: usize) -> Circuit {
    assert!(n > 0, "parity width must be positive");
    let mut b = CircuitBuilder::new(format!("parity{n}"));
    let mut layer: Vec<NodeId> = (0..n).map(|i| b.input(&format!("i{i}"))).collect();
    let mut next_id = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for pair in layer.chunks(2) {
            if pair.len() == 2 {
                next.push(b.gate(&format!("x{next_id}"), GateKind::Xor, &[pair[0], pair[1]]));
                next_id += 1;
            } else {
                next.push(pair[0]);
            }
        }
        layer = next;
    }
    let out = if n == 1 {
        // Degenerate: buffer the single input.
        b.gate("x0", GateKind::Buf, &[layer[0]])
    } else {
        layer[0]
    };
    b.mark_output(out);
    b.finish().expect("parity tree is structurally valid")
}

/// A `2^k : 1` multiplexer tree: `2^k` data inputs, `k` select lines,
/// one output — strong logical masking (only the selected path
/// propagates), the opposite extreme from [`parity_tree`].
///
/// # Panics
///
/// Panics if `k` is 0 or greater than 16.
#[must_use]
pub fn mux_tree(k: usize) -> Circuit {
    assert!((1..=16).contains(&k), "select width must be 1..=16");
    let mut b = CircuitBuilder::new(format!("mux{k}"));
    let data: Vec<NodeId> = (0..1usize << k)
        .map(|i| b.input(&format!("d{i}")))
        .collect();
    let sel: Vec<NodeId> = (0..k).map(|i| b.input(&format!("s{i}"))).collect();
    let seln: Vec<NodeId> = (0..k)
        .map(|i| b.gate(&format!("sn{i}"), GateKind::Not, &[sel[i]]))
        .collect();
    let mut layer = data;
    for level in 0..k {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (j, pair) in layer.chunks(2).enumerate() {
            let a_side = b.gate(
                &format!("m{level}_{j}a"),
                GateKind::And,
                &[pair[0], seln[level]],
            );
            let b_side = b.gate(
                &format!("m{level}_{j}b"),
                GateKind::And,
                &[pair[1], sel[level]],
            );
            next.push(b.gate(&format!("m{level}_{j}"), GateKind::Or, &[a_side, b_side]));
        }
        layer = next;
    }
    b.mark_output(layer[0]);
    b.finish().expect("mux tree is structurally valid")
}

/// An `n`-bit equality comparator: `eq = AND_i XNOR(a_i, b_i)`.
///
/// # Panics
///
/// Panics if `n` is 0.
#[must_use]
pub fn equality_comparator(n: usize) -> Circuit {
    assert!(n > 0, "comparator width must be positive");
    let mut b = CircuitBuilder::new(format!("eq{n}"));
    let a: Vec<NodeId> = (0..n).map(|i| b.input(&format!("a{i}"))).collect();
    let bb: Vec<NodeId> = (0..n).map(|i| b.input(&format!("b{i}"))).collect();
    let bits: Vec<NodeId> = (0..n)
        .map(|i| b.gate(&format!("x{i}"), GateKind::Xnor, &[a[i], bb[i]]))
        .collect();
    let eq = b.gate("eq", GateKind::And, &bits);
    b.mark_output(eq);
    b.finish().expect("comparator is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_sim::BitSim;

    fn scalar_inputs(c: &Circuit, assign: impl Fn(&str) -> bool) -> Vec<bool> {
        c.inputs()
            .iter()
            .map(|&id| assign(c.node(id).name()))
            .collect()
    }

    #[test]
    fn adder_adds() {
        let n = 4;
        let c = ripple_carry_adder(n);
        let sim = BitSim::new(&c).unwrap();
        for a in 0u32..16 {
            for bv in 0u32..16 {
                for cin in 0u32..2 {
                    let bits = scalar_inputs(&c, |name| {
                        if let Some(i) = name.strip_prefix('a') {
                            a >> i.parse::<u32>().unwrap() & 1 != 0
                        } else if let Some(i) = name.strip_prefix('b') {
                            bv >> i.parse::<u32>().unwrap() & 1 != 0
                        } else {
                            cin != 0
                        }
                    });
                    let v = sim.run_scalar(&bits);
                    let mut got = 0u32;
                    for i in 0..n {
                        let s = c.find(&format!("s{i}")).unwrap();
                        if v[s.index()] {
                            got |= 1 << i;
                        }
                    }
                    let cout = c.find(&format!("c{n}")).unwrap();
                    if v[cout.index()] {
                        got |= 1 << n;
                    }
                    assert_eq!(got, a + bv + cin, "{a} + {bv} + {cin}");
                }
            }
        }
    }

    #[test]
    fn multiplier_multiplies() {
        let n = 3;
        let c = array_multiplier(n);
        let sim = BitSim::new(&c).unwrap();
        assert_eq!(c.num_outputs(), 2 * n);
        for a in 0u32..8 {
            for bv in 0u32..8 {
                let bits = scalar_inputs(&c, |name| {
                    if let Some(i) = name.strip_prefix('a') {
                        a >> i.parse::<u32>().unwrap() & 1 != 0
                    } else {
                        let i = name.strip_prefix('b').unwrap();
                        bv >> i.parse::<u32>().unwrap() & 1 != 0
                    }
                });
                let v = sim.run_scalar(&bits);
                let mut got = 0u32;
                for (w, &po) in c.outputs().iter().enumerate() {
                    if v[po.index()] {
                        got |= 1 << w;
                    }
                }
                assert_eq!(got, a * bv, "{a} * {bv} (got {got})");
            }
        }
    }

    #[test]
    fn parity_tree_is_parity() {
        let c = parity_tree(9);
        let sim = BitSim::new(&c).unwrap();
        let out = c.outputs()[0];
        for pattern in [0u32, 1, 0b101, 0b111111111, 0b100100100] {
            let bits: Vec<bool> = (0..9).map(|i| pattern >> i & 1 != 0).collect();
            let v = sim.run_scalar(&bits);
            assert_eq!(v[out.index()], pattern.count_ones() % 2 == 1);
        }
    }

    #[test]
    fn parity_of_one_input() {
        let c = parity_tree(1);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn mux_selects() {
        let k = 3;
        let c = mux_tree(k);
        let sim = BitSim::new(&c).unwrap();
        let out = c.outputs()[0];
        let data = 0b10110100u32; // d_i = bit i
        for sel in 0u32..8 {
            let bits = scalar_inputs(&c, |name| {
                if let Some(i) = name.strip_prefix('d') {
                    data >> i.parse::<u32>().unwrap() & 1 != 0
                } else {
                    let i = name.strip_prefix('s').unwrap();
                    sel >> i.parse::<u32>().unwrap() & 1 != 0
                }
            });
            let v = sim.run_scalar(&bits);
            assert_eq!(v[out.index()], data >> sel & 1 != 0, "sel {sel}");
        }
    }

    #[test]
    fn comparator_compares() {
        let c = equality_comparator(4);
        let sim = BitSim::new(&c).unwrap();
        let out = c.outputs()[0];
        for a in 0u32..16 {
            for bv in [a, (a + 1) % 16, (a + 7) % 16] {
                let bits = scalar_inputs(&c, |name| {
                    if let Some(i) = name.strip_prefix('a') {
                        a >> i.parse::<u32>().unwrap() & 1 != 0
                    } else {
                        let i = name.strip_prefix('b').unwrap();
                        bv >> i.parse::<u32>().unwrap() & 1 != 0
                    }
                });
                let v = sim.run_scalar(&bits);
                assert_eq!(v[out.index()], a == bv, "{a} vs {bv}");
            }
        }
    }
}
