//! Sequential circuit generators: registers, counters, LFSRs and a
//! registered-datapath wrapper — the state-holding workloads whose
//! latched errors the multi-cycle extension follows.

use ser_netlist::{Circuit, CircuitBuilder, GateKind, NodeId};

/// An `n`-bit shift register: serial input `si`, parallel outputs
/// `q0..q{n-1}` (and `q{n-1}` doubles as the serial output).
///
/// # Panics
///
/// Panics if `n` is 0.
#[must_use]
pub fn shift_register(n: usize) -> Circuit {
    assert!(n > 0, "register length must be positive");
    let mut b = CircuitBuilder::new(format!("shift{n}"));
    let si = b.input("si");
    let mut prev = si;
    for i in 0..n {
        // DFF captures the previous stage through an explicit buffer so
        // every stage has a combinational node (an SEU site) too.
        let d = b.gate(&format!("d{i}"), GateKind::Buf, &[prev]);
        let q = b.dff(&format!("q{i}"), d);
        b.mark_output(q);
        prev = q;
    }
    b.finish().expect("shift register is structurally valid")
}

/// An `n`-bit synchronous binary counter with enable: bit `i` toggles
/// when all lower bits and `en` are 1. Outputs `q0..q{n-1}`.
///
/// # Panics
///
/// Panics if `n` is 0.
#[must_use]
pub fn counter(n: usize) -> Circuit {
    assert!(n > 0, "counter width must be positive");
    let mut b = CircuitBuilder::new(format!("cnt{n}"));
    let en = b.input("en");
    // Create the flip-flops first (forward references to the d signals).
    let qs: Vec<NodeId> = (0..n)
        .map(|i| b.gate_named(&format!("q{i}"), GateKind::Dff, &[format!("d{i}")]))
        .collect();
    let mut toggle = en;
    for (i, &q) in qs.iter().enumerate() {
        b.gate(&format!("d{i}"), GateKind::Xor, &[q, toggle]);
        if i + 1 < n {
            toggle = b.gate(&format!("t{i}"), GateKind::And, &[toggle, q]);
        }
        b.mark_output(q);
    }
    b.finish().expect("counter is structurally valid")
}

/// A Fibonacci LFSR over the given tap positions (bit indexes into an
/// `n`-bit register, `n = taps.iter().max() + 1`); output is `q0`.
/// The feedback is the XOR of the tapped bits.
///
/// # Panics
///
/// Panics if `taps` is empty.
#[must_use]
pub fn lfsr(taps: &[usize]) -> Circuit {
    assert!(!taps.is_empty(), "at least one tap");
    let n = taps.iter().max().unwrap() + 1;
    let mut b = CircuitBuilder::new(format!("lfsr{n}"));
    let qs: Vec<NodeId> = (0..n)
        .map(|i| {
            // q0 shifts in the feedback; qi shifts from q(i-1).
            let d_name = if i == 0 {
                "fb".to_owned()
            } else {
                format!("q{}", i - 1)
            };
            b.gate_named(&format!("q{i}"), GateKind::Dff, &[d_name])
        })
        .collect();
    let tapped: Vec<NodeId> = taps.iter().map(|&t| qs[t]).collect();
    if tapped.len() == 1 {
        b.gate("fb", GateKind::Buf, &[tapped[0]]);
    } else {
        b.gate_named(
            "fb",
            GateKind::Xor,
            &taps.iter().map(|&t| format!("q{t}")).collect::<Vec<_>>(),
        );
    }
    b.mark_output(qs[n - 1]);
    b.finish().expect("lfsr is structurally valid")
}

/// A registered datapath: an `n`-bit accumulator built from a
/// ripple-carry adder whose output is latched and fed back
/// (`acc <= acc + in`). Inputs `in0..`, outputs `q0..`.
///
/// This is the shape the paper's motivation describes: combinational
/// arithmetic between state registers, where an SEU in the adder can be
/// latched and persist.
///
/// # Panics
///
/// Panics if `n` is 0.
#[must_use]
pub fn accumulator(n: usize) -> Circuit {
    assert!(n > 0, "accumulator width must be positive");
    let mut b = CircuitBuilder::new(format!("acc{n}"));
    let ins: Vec<NodeId> = (0..n).map(|i| b.input(&format!("in{i}"))).collect();
    let qs: Vec<NodeId> = (0..n)
        .map(|i| b.gate_named(&format!("q{i}"), GateKind::Dff, &[format!("s{i}")]))
        .collect();
    // Ripple adder: q + in.
    let mut carry: Option<NodeId> = None;
    for i in 0..n {
        let axb = b.gate(&format!("axb{i}"), GateKind::Xor, &[qs[i], ins[i]]);
        match carry {
            None => {
                b.gate(&format!("s{i}"), GateKind::Buf, &[axb]);
                carry = Some(b.gate(&format!("c{i}"), GateKind::And, &[qs[i], ins[i]]));
            }
            Some(c) => {
                b.gate(&format!("s{i}"), GateKind::Xor, &[axb, c]);
                let and1 = b.gate(&format!("g{i}"), GateKind::And, &[qs[i], ins[i]]);
                let and2 = b.gate(&format!("h{i}"), GateKind::And, &[axb, c]);
                carry = Some(b.gate(&format!("c{i}"), GateKind::Or, &[and1, and2]));
            }
        }
        b.mark_output(qs[i]);
    }
    b.finish().expect("accumulator is structurally valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_sim::SeqSim;

    #[test]
    fn shift_register_shifts() {
        let c = shift_register(4);
        let mut sim = SeqSim::new(&c).unwrap();
        sim.reset(false);
        // Feed 1, 0, 1, 1 and watch it march down q0..q3.
        let seq = [1u64, 0, 1, 1];
        for &bit in &seq {
            let _ = sim.step(&[bit]);
        }
        // After 4 cycles: q0 = last in (1), q1 = 1, q2 = 0, q3 = first (1).
        let state: Vec<u64> = sim.state().iter().map(|&w| w & 1).collect();
        assert_eq!(state, vec![1, 1, 0, 1]);
    }

    #[test]
    fn counter_counts_with_enable() {
        let c = counter(3);
        let mut sim = SeqSim::new(&c).unwrap();
        sim.reset(false);
        let q: Vec<_> = (0..3).map(|i| c.find(&format!("q{i}")).unwrap()).collect();
        let read = |vals: &[u64]| -> u64 {
            q.iter()
                .enumerate()
                .map(|(i, id)| (vals[id.index()] & 1) << i)
                .sum()
        };
        let mut seen = Vec::new();
        for cycle in 0..6 {
            let en = u64::from(cycle != 3); // pause at cycle 3
            let vals = sim.step(&[en]);
            seen.push(read(&vals));
        }
        // Value *visible during* each cycle: 0,1,2,3 then pause keeps 3+1?
        // step returns pre-update values: cycle k shows count before the
        // k-th increment: 0,1,2,3,3(paused),4.
        assert_eq!(seen, vec![0, 1, 2, 3, 3, 4]);
    }

    #[test]
    fn lfsr_cycles_maximal_for_x4_x3() {
        // Taps 3,2 (x^4 + x^3 + 1): period 15 from any nonzero state.
        let c = lfsr(&[3, 2]);
        assert_eq!(c.num_dffs(), 4);
        let mut sim = SeqSim::new(&c).unwrap();
        sim.set_state(&[1, 0, 0, 0]);
        let mut states = std::collections::HashSet::new();
        for _ in 0..15 {
            let packed: u64 = sim
                .state()
                .iter()
                .enumerate()
                .map(|(i, &w)| (w & 1) << i)
                .sum();
            assert!(states.insert(packed), "state repeated early");
            let _ = sim.step(&[]);
        }
        // Back to the initial state after 15 steps.
        let packed: u64 = sim
            .state()
            .iter()
            .enumerate()
            .map(|(i, &w)| (w & 1) << i)
            .sum();
        assert_eq!(packed, 1);
    }

    #[test]
    fn accumulator_accumulates() {
        let c = accumulator(4);
        let mut sim = SeqSim::new(&c).unwrap();
        sim.reset(false);
        let read_state = |sim: &SeqSim| -> u64 {
            sim.state()
                .iter()
                .enumerate()
                .map(|(i, &w)| (w & 1) << i)
                .sum()
        };
        // Add 3, then 5, then 9 (mod 16).
        for add in [3u64, 5, 9] {
            let words: Vec<u64> = (0..4).map(|i| (add >> i) & 1).collect();
            let _ = sim.step(&words);
        }
        assert_eq!(read_state(&sim), (3 + 5 + 9) % 16);
    }

    #[test]
    fn generators_validate() {
        assert_eq!(shift_register(1).num_dffs(), 1);
        assert_eq!(counter(5).num_dffs(), 5);
        assert_eq!(lfsr(&[0]).num_dffs(), 1);
        assert_eq!(accumulator(2).num_dffs(), 2);
    }
}
