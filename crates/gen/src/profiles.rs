//! Structural profiles of the ISCAS'89 circuits used in the paper's
//! Table 2.
//!
//! The real ISCAS'89 netlists are distribution-restricted data we do not
//! ship; what the EPP algorithm's cost and accuracy depend on is the
//! circuits' *structure* — source/sink counts, gate count, depth and
//! fanout shape. Each profile records the published parameters of one
//! benchmark; [`synthesize`](crate::synthesize) produces a deterministic
//! synthetic circuit matching them (see DESIGN.md §2 for the
//! substitution rationale).

use std::fmt;

/// Published structural parameters of one benchmark circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Profile {
    /// Benchmark name (e.g. `"s953"`).
    pub name: &'static str,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// D flip-flops.
    pub dffs: usize,
    /// Logic gates.
    pub gates: usize,
    /// Approximate logic depth the synthetic stand-in should target.
    pub depth: usize,
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PI, {} PO, {} DFF, {} gates (target depth {})",
            self.name, self.inputs, self.outputs, self.dffs, self.gates, self.depth
        )
    }
}

/// The eleven circuits of the paper's Table 2, in table order.
pub const TABLE2: [Profile; 11] = [
    Profile {
        name: "s953",
        inputs: 16,
        outputs: 23,
        dffs: 29,
        gates: 395,
        depth: 16,
    },
    Profile {
        name: "s1196",
        inputs: 14,
        outputs: 14,
        dffs: 18,
        gates: 529,
        depth: 24,
    },
    Profile {
        name: "s1238",
        inputs: 14,
        outputs: 14,
        dffs: 18,
        gates: 508,
        depth: 22,
    },
    Profile {
        name: "s1423",
        inputs: 17,
        outputs: 5,
        dffs: 74,
        gates: 657,
        depth: 53,
    },
    Profile {
        name: "s1488",
        inputs: 8,
        outputs: 19,
        dffs: 6,
        gates: 653,
        depth: 17,
    },
    Profile {
        name: "s1494",
        inputs: 8,
        outputs: 19,
        dffs: 6,
        gates: 647,
        depth: 17,
    },
    Profile {
        name: "s9234",
        inputs: 36,
        outputs: 39,
        dffs: 211,
        gates: 5597,
        depth: 38,
    },
    Profile {
        name: "s15850",
        inputs: 77,
        outputs: 150,
        dffs: 534,
        gates: 9772,
        depth: 63,
    },
    Profile {
        name: "s35932",
        inputs: 35,
        outputs: 320,
        dffs: 1728,
        gates: 16065,
        depth: 29,
    },
    Profile {
        name: "s38584",
        inputs: 38,
        outputs: 304,
        dffs: 1426,
        gates: 19253,
        depth: 56,
    },
    Profile {
        name: "s38417",
        inputs: 28,
        outputs: 106,
        dffs: 1636,
        gates: 22179,
        depth: 47,
    },
];

/// Additional small ISCAS'89 profiles (useful for tests and quick runs).
pub const SMALL: [Profile; 4] = [
    Profile {
        name: "s298",
        inputs: 3,
        outputs: 6,
        dffs: 14,
        gates: 119,
        depth: 9,
    },
    Profile {
        name: "s344",
        inputs: 9,
        outputs: 11,
        dffs: 15,
        gates: 160,
        depth: 20,
    },
    Profile {
        name: "s386",
        inputs: 7,
        outputs: 7,
        dffs: 6,
        gates: 159,
        depth: 11,
    },
    Profile {
        name: "s526",
        inputs: 3,
        outputs: 6,
        dffs: 21,
        gates: 193,
        depth: 9,
    },
];

/// ISCAS'85 combinational profiles (no flip-flops). The paper evaluates
/// on ISCAS'89; these widen the workload space for the suite's own
/// experiments (pure-combinational SER is the regime the paper's
/// introduction motivates).
pub const ISCAS85: [Profile; 10] = [
    Profile {
        name: "c432",
        inputs: 36,
        outputs: 7,
        dffs: 0,
        gates: 160,
        depth: 17,
    },
    Profile {
        name: "c499",
        inputs: 41,
        outputs: 32,
        dffs: 0,
        gates: 202,
        depth: 11,
    },
    Profile {
        name: "c880",
        inputs: 60,
        outputs: 26,
        dffs: 0,
        gates: 383,
        depth: 24,
    },
    Profile {
        name: "c1355",
        inputs: 41,
        outputs: 32,
        dffs: 0,
        gates: 546,
        depth: 24,
    },
    Profile {
        name: "c1908",
        inputs: 33,
        outputs: 25,
        dffs: 0,
        gates: 880,
        depth: 40,
    },
    Profile {
        name: "c2670",
        inputs: 233,
        outputs: 140,
        dffs: 0,
        gates: 1193,
        depth: 32,
    },
    Profile {
        name: "c3540",
        inputs: 50,
        outputs: 22,
        dffs: 0,
        gates: 1669,
        depth: 47,
    },
    Profile {
        name: "c5315",
        inputs: 178,
        outputs: 123,
        dffs: 0,
        gates: 2307,
        depth: 49,
    },
    Profile {
        name: "c6288",
        inputs: 32,
        outputs: 32,
        dffs: 0,
        gates: 2416,
        depth: 124,
    },
    Profile {
        name: "c7552",
        inputs: 207,
        outputs: 108,
        dffs: 0,
        gates: 3512,
        depth: 43,
    },
];

/// Looks a profile up by benchmark name across all tables.
#[must_use]
pub fn profile(name: &str) -> Option<Profile> {
    TABLE2
        .iter()
        .chain(SMALL.iter())
        .chain(ISCAS85.iter())
        .find(|p| p.name == name)
        .copied()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_matches_paper_order() {
        assert_eq!(TABLE2.len(), 11);
        assert_eq!(TABLE2[0].name, "s953");
        assert_eq!(TABLE2[10].name, "s38417");
    }

    #[test]
    fn lookup_by_name() {
        let p = profile("s1423").unwrap();
        assert_eq!(p.dffs, 74);
        assert_eq!(profile("c7552").unwrap().gates, 3512);
        assert!(profile("b17").is_none());
        let small = profile("s298").unwrap();
        assert_eq!(small.gates, 119);
    }

    #[test]
    fn iscas85_is_combinational() {
        for p in &ISCAS85 {
            assert_eq!(p.dffs, 0, "{}", p.name);
        }
        assert_eq!(profile("c6288").unwrap().depth, 124);
    }

    #[test]
    fn profiles_are_sane() {
        for p in TABLE2.iter().chain(SMALL.iter()).chain(ISCAS85.iter()) {
            assert!(p.inputs > 0, "{}", p.name);
            assert!(p.outputs > 0, "{}", p.name);
            assert!(p.gates > p.depth, "{}", p.name);
            assert!(!p.to_string().is_empty());
        }
    }
}
