//! Fixed-width table rendering for the report binaries (mirrors the
//! layout of the paper's tables).

use std::fmt::Write as _;

/// A simple fixed-width text table: a header row plus data rows, each
/// column right-aligned to its widest cell.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row's cell count differs from the header's.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if no data rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table: header, separator, rows. The first column is
    /// left-aligned (names), the rest right-aligned (numbers).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = width[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, row: &[String]| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = width[i] - cell.chars().count();
                if i == 0 {
                    let _ = write!(out, "{cell}{}", " ".repeat(pad));
                } else {
                    let _ = write!(out, "{}{cell}", " ".repeat(pad));
                }
            }
            out.push('\n');
        };
        render_row(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a `Duration`-like seconds value with a sensible unit.
#[must_use]
pub fn fmt_seconds(secs: f64) -> String {
    if secs < 1e-3 {
        format!("{:.1}us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

/// Formats a speedup factor in the paper's style (`1.2e4x`).
#[must_use]
pub fn fmt_speedup(x: f64) -> String {
    if x >= 1000.0 {
        format!("{x:.2e}x")
    } else {
        format!("{x:.1}x")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["Circuit", "SysT", "%Dif"]);
        t.push_row(["s953", "0.354", "4.3"]);
        t.push_row(["s38417", "14.180", "6.0"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("Circuit"));
        assert!(lines[1].starts_with('-'));
        // Numbers right-aligned: both rows end at the same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_width_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn second_formatting() {
        assert_eq!(fmt_seconds(0.0000005), "0.5us");
        assert_eq!(fmt_seconds(0.0123), "12.30ms");
        assert_eq!(fmt_seconds(2.5), "2.50s");
    }

    #[test]
    fn speedup_formatting() {
        assert_eq!(fmt_speedup(12.0), "12.0x");
        assert!(fmt_speedup(93072.0).contains('e'));
    }
}
