//! Accuracy metrics comparing analytical EPP against the Monte-Carlo
//! baseline (the `%Dif` column of Table 2).

/// Per-site pair of estimates: analytical vs Monte-Carlo `P_sensitized`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SitePair {
    /// Analytical (EPP) estimate.
    pub analytical: f64,
    /// Monte-Carlo estimate.
    pub monte_carlo: f64,
}

impl SitePair {
    /// Absolute difference between the two estimates.
    #[must_use]
    pub fn abs_diff(&self) -> f64 {
        (self.analytical - self.monte_carlo).abs()
    }
}

/// The `%Dif` reported by the harness: the **aggregate** relative
/// difference `100 · Σ|a_i − m_i| / Σ m_i` over the sampled sites.
///
/// This normalizes total error by total sensitization, so near-dead
/// sites (where a per-site ratio would explode on Monte-Carlo noise)
/// contribute proportionally to their magnitude — no dead-site floor
/// is needed (unlike [`mean_relative_percent`], whose per-site ratios
/// do need one). Zero total sensitization returns 0 when the
/// analytical side agrees, 100 otherwise.
#[must_use]
pub fn percent_difference(pairs: &[SitePair]) -> f64 {
    let total_diff: f64 = pairs.iter().map(SitePair::abs_diff).sum();
    let total_mc: f64 = pairs.iter().map(|p| p.monte_carlo).sum();
    if total_mc == 0.0 {
        if total_diff == 0.0 {
            0.0
        } else {
            100.0
        }
    } else {
        100.0 * total_diff / total_mc
    }
}

/// Mean *per-site* relative difference in percent, skipping sites both
/// methods call dead (< `floor`) and flooring the denominator — the
/// harsher, per-node companion of [`percent_difference`].
#[must_use]
pub fn mean_relative_percent(pairs: &[SitePair], floor: f64) -> f64 {
    let mut total = 0.0;
    let mut counted = 0usize;
    for p in pairs {
        if p.analytical < floor && p.monte_carlo < floor {
            continue;
        }
        let denom = p.monte_carlo.max(floor);
        total += p.abs_diff() / denom;
        counted += 1;
    }
    if counted == 0 {
        0.0
    } else {
        100.0 * total / counted as f64
    }
}

/// Mean absolute difference over all sampled sites (an unnormalized
/// companion to [`percent_difference`]).
#[must_use]
pub fn mean_abs_diff(pairs: &[SitePair]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    pairs.iter().map(SitePair::abs_diff).sum::<f64>() / pairs.len() as f64
}

/// Largest absolute difference over the sampled sites.
#[must_use]
pub fn max_abs_diff(pairs: &[SitePair]) -> f64 {
    pairs.iter().map(SitePair::abs_diff).fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: f64, m: f64) -> SitePair {
        SitePair {
            analytical: a,
            monte_carlo: m,
        }
    }

    #[test]
    fn identical_estimates_zero_difference() {
        let pairs = vec![pair(0.5, 0.5), pair(0.9, 0.9)];
        assert_eq!(percent_difference(&pairs), 0.0);
        assert_eq!(mean_relative_percent(&pairs, 0.01), 0.0);
        assert_eq!(mean_abs_diff(&pairs), 0.0);
        assert_eq!(max_abs_diff(&pairs), 0.0);
    }

    #[test]
    fn aggregate_relative_difference() {
        // Σ|diff| = 0.05 + 0.05 = 0.1; Σ mc = 1.0 -> 10%.
        let pairs = vec![pair(0.55, 0.5), pair(0.45, 0.5)];
        assert!((percent_difference(&pairs) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_not_dominated_by_dead_nodes() {
        // A tiny absolute error on a near-dead node barely moves the
        // aggregate, unlike a per-site ratio.
        let pairs = vec![pair(0.011, 0.001), pair(0.5, 0.5)];
        let agg = percent_difference(&pairs);
        assert!(agg < 3.0, "aggregate {agg}");
        let harsh = mean_relative_percent(&pairs, 0.01);
        assert!(harsh > 40.0, "per-site {harsh}");
    }

    #[test]
    fn per_site_dead_sites_skipped() {
        let pairs = vec![pair(0.0, 0.0), pair(0.001, 0.002), pair(0.6, 0.5)];
        // Only the last site counts: 0.1/0.5 = 20%.
        assert!((mean_relative_percent(&pairs, 0.01) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sensitization_edge() {
        assert_eq!(percent_difference(&[pair(0.0, 0.0)]), 0.0);
        assert_eq!(percent_difference(&[pair(0.3, 0.0)]), 100.0);
    }

    #[test]
    fn empty_input() {
        assert_eq!(percent_difference(&[]), 0.0);
        assert_eq!(mean_relative_percent(&[], 0.01), 0.0);
        assert_eq!(mean_abs_diff(&[]), 0.0);
        assert_eq!(max_abs_diff(&[]), 0.0);
    }

    #[test]
    fn mean_and_max() {
        let pairs = vec![pair(0.5, 0.4), pair(0.2, 0.5)];
        assert!((mean_abs_diff(&pairs) - 0.2).abs() < 1e-12);
        assert!((max_abs_diff(&pairs) - 0.3).abs() < 1e-12);
    }
}
