//! The Table 2 workload: run the analytical method and the
//! random-simulation baselines on one circuit and produce the paper's
//! row quantities.
//!
//! Unit note: the paper's `SysT` (ms) and `SimT` (s) are **per-node**
//! times — that is the only reading under which its own speedup
//! columns reproduce (s953: `ESP = 28.3 s / 0.354 ms = 79,944`, table
//! says 79,950; `ISP = 28.3 s / (0.354 ms + 150 s / ~440 nodes) = ~79`,
//! table says 74.4). This harness therefore reports per-node times and
//! computes `ISP`/`ESP` the same way.

use std::time::Instant;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use ser_epp::{AnalysisSession, CircuitSerAnalysis};
use ser_netlist::{Circuit, NodeId};
use ser_sim::{MonteCarlo, NaiveMonteCarlo, SequentialMonteCarlo};
use ser_sp::{IndependentSp, InputProbs};

use crate::accuracy::{mean_abs_diff, percent_difference, SitePair};

/// Parameters for one Table 2 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Config {
    /// Vector budget per site for the Monte-Carlo baseline: the fixed
    /// trial count when [`mc_target_error`](Self::mc_target_error) is
    /// `None`, the hard cap when the sequential stopping rule is on.
    pub mc_vectors: u64,
    /// When set, the baseline uses the Mendo-style sequential stopping
    /// rule ([`SequentialMonteCarlo`]) targeting this normalized error
    /// instead of a fixed trial count — each site stops as soon as its
    /// estimate is accurate enough, so the accuracy comparison stays
    /// honest without overpaying on strongly sensitized sites.
    pub mc_target_error: Option<f64>,
    /// Maximum number of sites the packed baseline simulates ("for
    /// larger circuits, a limited number of gates … are simulated due
    /// to exorbitant run time" — the paper's own protocol).
    pub max_mc_sites: usize,
    /// Sites for the *naive* scalar baseline (0 disables the column);
    /// kept small because it is the slow engine by design.
    pub naive_sites: usize,
    /// PRNG seed for site sampling and the baselines.
    pub seed: u64,
    /// Worker threads for the analytical sweep.
    pub threads: usize,
}

impl Default for Table2Config {
    fn default() -> Self {
        Table2Config {
            mc_vectors: 10_000,
            mc_target_error: None,
            max_mc_sites: 200,
            naive_sites: 8,
            seed: 0xDA7E,
            threads: 1,
        }
    }
}

/// One row of the regenerated Table 2 (per-node time semantics; see
/// the module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Circuit name.
    pub name: String,
    /// Nodes analyzed by the analytical method (all of them).
    pub nodes: usize,
    /// Sites the packed Monte-Carlo baseline actually simulated.
    pub sampled_sites: usize,
    /// `SysT`: analytical EPP time **per node**, milliseconds.
    pub syst_ms: f64,
    /// `SimT`: packed random-simulation time **per node**, seconds.
    pub simt_s: f64,
    /// Mean vectors the baseline actually spent per sampled site (equal
    /// to the configured budget under fixed counts; varies per site
    /// under the sequential stopping rule).
    pub mean_mc_vectors: f64,
    /// Worker threads the sweep scheduler actually used.
    pub threads_used: usize,
    /// Naive scalar random-simulation time per node, seconds
    /// (`None` when disabled).
    pub naive_s: Option<f64>,
    /// `%Dif`: mean relative difference on the sampled sites.
    pub pct_dif: f64,
    /// Mean absolute difference of `P_sensitized` on the sampled sites.
    pub mad: f64,
    /// `SPT`: signal probability computation time (whole circuit), s.
    pub spt_s: f64,
    /// `ISP`: speedup incl. SP time: `SimT / (SysT + SPT/nodes)`.
    pub isp: f64,
    /// `ESP`: speedup excl. SP time: `SimT / SysT`.
    pub esp: f64,
}

/// Runs the full Table 2 protocol on one circuit.
///
/// # Panics
///
/// Panics if the circuit is structurally invalid (generated and
/// embedded circuits never are) or `cfg.max_mc_sites` is 0.
#[must_use]
pub fn run_circuit(circuit: &Circuit, cfg: &Table2Config) -> Table2Row {
    assert!(cfg.max_mc_sites > 0, "must sample at least one site");
    let nodes = circuit.len();

    // --- One compiled session: topo artifacts + SP computed once, then
    // shared by the analytical sweep AND both simulation baselines. ----
    // SPT times the whole compilation (sort + SP), matching the
    // pre-session metric where the engine's compute() included its own
    // ordering pass — keeps speedup columns comparable across commits.
    let spt_start = Instant::now();
    let session = AnalysisSession::with_engine(
        circuit,
        InputProbs::default(),
        &IndependentSp::new().with_max_iterations(1000),
    )
    .expect("SP computes on valid circuits");
    let spt_s = spt_start.elapsed().as_secs_f64();

    let outcome = CircuitSerAnalysis::new()
        .with_threads(cfg.threads)
        .run_with_session(&session);
    // Per-node analytical time: wall-clock of the sweep divided by the
    // node count (and multiplied back by the thread count so the figure
    // is CPU time per node, comparable across thread settings).
    let syst_ms = outcome.epp_time().as_secs_f64() * 1e3 * cfg.threads as f64 / nodes as f64;

    // --- Packed baseline: Monte-Carlo on a site sample. -----------------
    let mut sites: Vec<NodeId> = circuit.node_ids().collect();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    sites.shuffle(&mut rng);
    sites.truncate(cfg.max_mc_sites);

    let sim = session.bit_sim();
    let mc_start = Instant::now();
    let estimates = match cfg.mc_target_error {
        Some(eps) => SequentialMonteCarlo::new(eps)
            .with_seed(cfg.seed)
            .with_max_vectors(cfg.mc_vectors)
            .estimate_sites(sim, &sites),
        None => MonteCarlo::new(cfg.mc_vectors)
            .with_seed(cfg.seed)
            .estimate_sites(sim, &sites),
    };
    let simt_s = mc_start.elapsed().as_secs_f64() / sites.len() as f64;
    let mean_mc_vectors =
        estimates.iter().map(|e| e.vectors as f64).sum::<f64>() / estimates.len() as f64;

    // --- Naive baseline on a (smaller) subsample. ------------------------
    let naive_s = (cfg.naive_sites > 0).then(|| {
        let subsample = &sites[..cfg.naive_sites.min(sites.len())];
        let naive = NaiveMonteCarlo::new(cfg.mc_vectors).with_seed(cfg.seed);
        let t = Instant::now();
        for &s in subsample {
            let _ = naive.estimate_site(circuit, s).expect("valid circuit");
        }
        t.elapsed().as_secs_f64() / subsample.len() as f64
    });

    let pairs: Vec<SitePair> = sites
        .iter()
        .zip(&estimates)
        .map(|(&site, est)| SitePair {
            analytical: outcome.site(site).p_sensitized(),
            monte_carlo: est.p_sensitized,
        })
        .collect();
    let pct_dif = percent_difference(&pairs);
    let mad = mean_abs_diff(&pairs);

    Table2Row {
        name: circuit.name().to_owned(),
        nodes,
        sampled_sites: sites.len(),
        syst_ms,
        simt_s,
        mean_mc_vectors,
        threads_used: outcome.threads_used(),
        naive_s,
        pct_dif,
        mad,
        spt_s,
        isp: simt_s * 1e3 / (syst_ms + spt_s * 1e3 / nodes as f64),
        esp: simt_s * 1e3 / syst_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_gen::{c17, iscas89_like};

    #[test]
    fn c17_row_is_sane() {
        let c = c17();
        let cfg = Table2Config {
            mc_vectors: 2_000,
            mc_target_error: None,
            max_mc_sites: 16,
            naive_sites: 2,
            seed: 1,
            threads: 1,
        };
        let row = run_circuit(&c, &cfg);
        assert_eq!(row.name, "c17");
        assert_eq!(row.mean_mc_vectors, 2_000.0, "fixed budget: every site");
        assert_eq!(row.threads_used, 1);
        assert_eq!(row.nodes, 11); // 5 inputs + 6 NANDs
        assert!(row.sampled_sites <= 11);
        assert!(row.syst_ms > 0.0);
        assert!(row.simt_s > 0.0);
        assert!(row.naive_s.unwrap() > 0.0);
        assert!(row.esp >= row.isp, "ESP excludes SP time so it's >= ISP");
        // c17 is tiny and tree-ish; the methods should agree closely.
        assert!(row.pct_dif < 10.0, "%Dif = {}", row.pct_dif);
        assert!(row.mad < 0.05, "MAD = {}", row.mad);
    }

    #[test]
    fn small_synthetic_circuit_speedup_positive() {
        let c = iscas89_like("s298").unwrap();
        // A realistic vector budget: at 10k vectors/site the simulation
        // cost dominates even in debug builds.
        let cfg = Table2Config {
            mc_vectors: 10_000,
            mc_target_error: None,
            max_mc_sites: 30,
            naive_sites: 0,
            seed: 2,
            threads: 1,
        };
        let row = run_circuit(&c, &cfg);
        assert!(
            row.esp > 1.0,
            "analytical should beat MC, esp = {}",
            row.esp
        );
        assert!(row.naive_s.is_none());
        assert!(row.pct_dif.is_finite());
    }

    #[test]
    fn sequential_stopping_rule_spends_less_and_stays_accurate() {
        let c = iscas89_like("s298").unwrap();
        let fixed = Table2Config {
            mc_vectors: 20_000,
            mc_target_error: None,
            max_mc_sites: 30,
            naive_sites: 0,
            seed: 2,
            threads: 1,
        };
        let sequential = Table2Config {
            mc_target_error: Some(0.1),
            ..fixed
        };
        let row_fixed = run_circuit(&c, &fixed);
        let row_seq = run_circuit(&c, &sequential);
        // The rule stops early on live sites: mean spend is well under
        // the cap it shares with the fixed run.
        assert!(
            row_seq.mean_mc_vectors < row_fixed.mean_mc_vectors,
            "sequential {} vs fixed {}",
            row_seq.mean_mc_vectors,
            row_fixed.mean_mc_vectors
        );
        // And the accuracy comparison stays meaningful: the analytic-
        // vs-MC gap (dominated by the EPP independence approximation on
        // this reconvergent circuit, not by MC noise) is in the same
        // band as under the fixed budget.
        assert!(row_seq.pct_dif.is_finite());
        assert!(
            row_seq.mad < row_fixed.mad + 0.1,
            "sequential MAD {} vs fixed MAD {}",
            row_seq.mad,
            row_fixed.mad
        );
    }
}
