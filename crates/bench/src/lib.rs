//! Shared harness code for the benchmark and table-regeneration
//! binaries (`table2`, `figure1`, `ablations`).
//!
//! The binaries print the rows the paper reports; Criterion benches in
//! `benches/` measure the kernels. This library holds the pieces both
//! need: workload selection, accuracy metrics and table formatting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod accuracy;
pub mod table;
pub mod workload;
