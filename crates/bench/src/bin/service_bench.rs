//! Service-throughput benchmark: `SerService` request rates, warm vs
//! cold session latency, and concurrent-sweep interleaving. Emits
//! `BENCH_service.json` so the service's perf trajectory is tracked
//! commit over commit.
//!
//! ```text
//! cargo run --release -p ser-bench-harness --bin service_bench [-- --quick] [-- --out PATH]
//! ```
//!
//! Reported per circuit:
//!
//! - `cold_sweep_ms`: first whole-circuit sweep request against a cold
//!   service — pays session compile, cone-plan build and the sweep.
//! - `warm_sweep_ms`: the same request once the session is warm
//!   (median of several runs) — the steady-state cost a resident
//!   service pays per sweep.
//! - `site_requests_per_sec`: single-site analytical requests served
//!   per second from the warm cache.
//!
//! Plus two cross-cutting experiments:
//!
//! - `interleave`: two warm circuits, a full sweep each — submitted
//!   back to back (serialized) vs as one batch (interleaved on the
//!   shared executor). `speedup` is serialized / interleaved wall time;
//!   above 1.0 means concurrent sweeps genuinely overlap.
//! - `tcp`: the same service behind the TCP front door on loopback —
//!   v2 envelope round trips per second, p50 round-trip latency for
//!   warm single-site requests, one warm whole-circuit sweep round
//!   trip, and `cancel_latency_ms`: median time from a `cancel`
//!   envelope (sent from a second connection mid-sweep) to the
//!   `cancelled` error frame landing on the swept connection. The gap
//!   to the in-process rows is the wire cost (framing, JSON,
//!   syscalls).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;

use ser_gen::synthesize;
use ser_netlist::{write_bench, Circuit};
use ser_service::{
    serve, EngineConfig, ProtocolEngine, Request, SerService, SerServiceConfig, SiteRequest,
    SweepRequest, TcpTransport,
};

fn median_ms(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    samples[samples.len() / 2] * 1e3
}

fn fresh_service(threads: usize) -> SerService {
    SerService::new(SerServiceConfig {
        max_sessions: 8,
        threads,
        sweep_batch_sites: 256,
        // The warm-sweep rows measure the *kernel* path; response
        // caching would short-circuit every repeat to a map lookup.
        max_sweep_responses: 0,
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    })
}

/// Like [`fresh_service`], but with the persistent plan-artifact cache
/// rooted at `dir` — what the `cold_cached_sweep_ms` rows measure.
fn cached_service(threads: usize, dir: &std::path::Path) -> SerService {
    SerService::new(SerServiceConfig {
        max_sessions: 8,
        threads,
        sweep_batch_sites: 256,
        max_sweep_responses: 0,
        plan_cache_dir: Some(dir.to_path_buf()),
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_service.json".to_owned());
    let names: &[&str] = if quick {
        &["s953"]
    } else {
        &["s953", "s1196", "s1423"]
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let warm_runs = if quick { 3 } else { 7 };
    let site_requests = if quick { 200 } else { 1_000 };

    let circuits: Vec<Arc<Circuit>> = names
        .iter()
        .map(|name| {
            let profile = ser_gen::profile(name).expect("profile exists");
            Arc::new(synthesize(&profile, 1))
        })
        .collect();

    // One plan-artifact cache dir for the whole run, cleaned at exit.
    let cache_dir =
        std::env::temp_dir().join(format!("ser_service_bench_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);

    let mut records: Vec<String> = Vec::new();
    for (name, circuit) in names.iter().zip(&circuits) {
        let n = circuit.len();

        // --- Cold: a fresh service, first sweep request. --------------
        let service = fresh_service(threads);
        let t = Instant::now();
        let cold = service
            .submit(circuit, Request::Sweep(SweepRequest::default()))
            .expect("valid circuit");
        let cold_sweep_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(!cold.meta.warm_session);
        assert_eq!(cold.as_sweep().expect("sweep payload").len(), n);

        // --- Warm: same request against the now-warm session. ---------
        let mut warm_samples: Vec<f64> = Vec::with_capacity(warm_runs);
        let mut warm_sweep = None;
        for _ in 0..warm_runs {
            let t = Instant::now();
            let r = service
                .submit(circuit, Request::Sweep(SweepRequest::default()))
                .expect("valid circuit");
            warm_samples.push(t.elapsed().as_secs_f64());
            assert!(r.meta.warm_session);
            warm_sweep = Some(r);
        }
        let warm_sweep_ms = median_ms(&mut warm_samples);
        assert_eq!(
            warm_sweep.expect("ran").as_sweep().expect("sweep payload"),
            cold.as_sweep().expect("sweep payload"),
            "warm and cold responses identical"
        );

        // --- Cold with a warm artifact cache: a fresh process whose
        // plan compilation is a file load. One service populates the
        // cache, a second (fresh sessions, same dir) pays only the
        // load.
        {
            let writer = cached_service(threads, &cache_dir);
            writer
                .submit(circuit, Request::Sweep(SweepRequest::default()))
                .expect("valid circuit");
            assert_eq!(writer.stats().plan_cache_hits, 0, "first run populates");
        }
        let reader = cached_service(threads, &cache_dir);
        let t = Instant::now();
        let cached_cold = reader
            .submit(circuit, Request::Sweep(SweepRequest::default()))
            .expect("valid circuit");
        let cold_cached_sweep_ms = t.elapsed().as_secs_f64() * 1e3;
        assert!(!cached_cold.meta.warm_session);
        assert_eq!(
            reader.stats().plan_cache_hits,
            1,
            "second service loads the persisted plans"
        );
        assert_eq!(
            cached_cold.as_sweep().expect("sweep payload"),
            cold.as_sweep().expect("sweep payload"),
            "cached plans must not change results"
        );

        // --- Warm single-site request throughput. ---------------------
        let sites: Vec<_> = circuit.node_ids().collect();
        let t = Instant::now();
        for i in 0..site_requests {
            let site = sites[i % sites.len()];
            let r = service
                .submit(circuit, Request::Site(SiteRequest { site }))
                .expect("valid request");
            std::hint::black_box(r.as_site().expect("site payload").p_sensitized());
        }
        let site_requests_per_sec = site_requests as f64 / t.elapsed().as_secs_f64();

        eprintln!(
            "{name}: {n} nodes | cold sweep {cold_sweep_ms:.1}ms | cold+cache {cold_cached_sweep_ms:.1}ms | warm sweep {warm_sweep_ms:.1}ms | {site_requests_per_sec:.0} site req/s"
        );
        let mut rec = String::from("  {");
        let _ = write!(
            rec,
            "\"circuit\": \"{name}\", \"nodes\": {n}, \"cold_sweep_ms\": {cold_sweep_ms:.3}, \"cold_cached_sweep_ms\": {cold_cached_sweep_ms:.3}, \"warm_sweep_ms\": {warm_sweep_ms:.3}, \"site_requests_per_sec\": {site_requests_per_sec:.1}}}"
        );
        records.push(rec);
    }
    let _ = std::fs::remove_dir_all(&cache_dir);

    // --- Interleaving: two sweeps, serialized vs one batch. -----------
    let (a, b) = (&circuits[0], circuits.get(1).unwrap_or(&circuits[0]));
    let service = fresh_service(threads);
    service.session(a).expect("compiles");
    service.session(b).expect("compiles");
    // Serialized: one sweep fully drains before the next is submitted.
    let t = Instant::now();
    let ra = service
        .submit(a, Request::Sweep(SweepRequest::default()))
        .expect("valid");
    let rb = service
        .submit(b, Request::Sweep(SweepRequest::default()))
        .expect("valid");
    let serialized_ms = t.elapsed().as_secs_f64() * 1e3;
    // Interleaved: both sweeps' batches share the executor queue.
    let t = Instant::now();
    let both = service.submit_batch(vec![
        (Arc::clone(a), Request::Sweep(SweepRequest::default())),
        (Arc::clone(b), Request::Sweep(SweepRequest::default())),
    ]);
    let interleaved_ms = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        both[0].as_ref().expect("valid").as_sweep(),
        ra.as_sweep(),
        "interleaving must not change results"
    );
    assert_eq!(both[1].as_ref().expect("valid").as_sweep(), rb.as_sweep());
    let speedup = serialized_ms / interleaved_ms;
    let executor_workers = service.config().threads;
    eprintln!(
        "interleave {}+{} ({executor_workers} workers): serialized {serialized_ms:.1}ms | batched {interleaved_ms:.1}ms | {speedup:.2}x",
        a.name(),
        b.name()
    );

    // --- TCP round trips: the same workload over the wire. ------------
    let tcp = bench_tcp(&circuits[0], threads, site_requests);
    let cancel_latency_ms = bench_cancel_latency(&circuits[0], threads, if quick { 3 } else { 5 });
    eprintln!(
        "tcp {}: {:.0} round trips/s | p50 {:.1}us | warm sweep {:.1}ms over the wire | cancel {:.2}ms",
        names[0], tcp.round_trips_per_sec, tcp.p50_us, tcp.sweep_round_trip_ms, cancel_latency_ms
    );

    // Backend provenance: the warm-sweep rows are kernel-bound, so the
    // rule-core backend that served them is part of the result.
    let kernel = ser_epp::KernelBackend::auto().name();
    let json = format!(
        "{{\n  \"bench\": \"service_throughput\",\n  \"kernel\": \"{kernel}\",\n  \"unit_note\": \"latencies in milliseconds; cold includes session compile + cone-plan build; cold_cached loads compiled plans from the persistent artifact cache; interleave speedup > 1 needs more than one executor worker; tcp rows measure loopback v2-envelope round trips; cancel_latency_ms is cancel envelope to cancelled error frame on the swept connection; host cores: {threads}\",\n  \"threads\": {threads},\n  \"results\": [\n{}\n  ],\n  \"interleave\": {{\"circuits\": [\"{}\", \"{}\"], \"executor_workers\": {executor_workers}, \"serialized_ms\": {serialized_ms:.3}, \"interleaved_ms\": {interleaved_ms:.3}, \"speedup\": {speedup:.3}}},\n  \"tcp\": {{\"circuit\": \"{}\", \"round_trips_per_sec\": {:.1}, \"p50_us\": {:.1}, \"sweep_round_trip_ms\": {:.3}, \"cancel_latency_ms\": {cancel_latency_ms:.3}}}\n}}\n",
        records.join(",\n"),
        a.name(),
        b.name(),
        names[0],
        tcp.round_trips_per_sec,
        tcp.p50_us,
        tcp.sweep_round_trip_ms
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

struct TcpRecord {
    round_trips_per_sec: f64,
    p50_us: f64,
    sweep_round_trip_ms: f64,
}

/// Materializes `circuit` as a .bench file — the wire addresses
/// netlists by path.
fn materialize(circuit: &Circuit, tag: &str) -> std::path::PathBuf {
    let mut netlist = std::env::temp_dir();
    netlist.push(format!(
        "ser_service_bench_{}_{}_{tag}.bench",
        std::process::id(),
        circuit.name()
    ));
    std::fs::write(&netlist, write_bench(circuit)).expect("write bench netlist");
    netlist
}

/// Serves `circuit` over loopback TCP and measures warm v2-envelope
/// round trips from one client.
fn bench_tcp(circuit: &Arc<Circuit>, threads: usize, site_requests: usize) -> TcpRecord {
    let netlist = materialize(circuit, "tcp");
    let path = netlist.to_str().expect("utf-8 temp path").to_owned();

    let engine = Arc::new(ProtocolEngine::new(
        Arc::new(fresh_service(threads)),
        EngineConfig::default(),
    ));
    let mut transport = TcpTransport::bind("127.0.0.1:0").expect("bind loopback");
    let addr = transport.local_addr();
    let handle = transport.shutdown_handle();
    let server = std::thread::spawn(move || serve(&mut transport, &engine));

    let stream = TcpStream::connect(addr).expect("connect loopback");
    stream.set_nodelay(true).expect("nodelay");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let mut line = String::new();
    let mut round_trip = |request: &str| -> String {
        writer.write_all(request.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("send");
        line.clear();
        reader.read_line(&mut line).expect("reply");
        line.clone()
    };

    // Warm the session (pays compile + plan build once).
    let reply = round_trip(&format!(
        "{{\"v\": 2, \"op\": \"sweep\", \"netlist\": \"{path}\", \"top\": 1}}"
    ));
    assert!(reply.contains("\"frame\": \"result\""), "{reply}");

    // Warm single-site round trips.
    let sites: Vec<String> = circuit
        .node_ids()
        .map(|id| circuit.node(id).name().to_owned())
        .collect();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(site_requests);
    let t = Instant::now();
    for i in 0..site_requests {
        let request = format!(
            "{{\"v\": 2, \"op\": \"site\", \"netlist\": \"{path}\", \"node\": \"{}\"}}",
            sites[i % sites.len()]
        );
        let t_one = Instant::now();
        let reply = round_trip(&request);
        latencies_us.push(t_one.elapsed().as_secs_f64() * 1e6);
        debug_assert!(reply.contains("p_sensitized"), "{reply}");
    }
    let round_trips_per_sec = site_requests as f64 / t.elapsed().as_secs_f64();
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p50_us = latencies_us[latencies_us.len() / 2];

    // One warm whole-circuit sweep over the wire (response cache is
    // off in `fresh_service`, so this is kernel + serialization).
    let t = Instant::now();
    let reply = round_trip(&format!(
        "{{\"v\": 2, \"op\": \"sweep\", \"netlist\": \"{path}\", \"top\": 1}}"
    ));
    let sweep_round_trip_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(reply.contains("\"warm\": true"), "{reply}");

    drop(writer);
    drop(reader);
    handle.shutdown();
    server.join().expect("server thread").expect("serve ok");
    let _ = std::fs::remove_file(&netlist);
    TcpRecord {
        round_trips_per_sec,
        p50_us,
        sweep_round_trip_ms,
    }
}

/// Measures the cancel round trip over the wire: a whole-circuit sweep
/// streams progress on one connection, a `cancel` envelope goes out on
/// a second the moment the first progress frame lands, and the clock
/// stops when the `cancelled` error frame reaches the swept
/// connection. Returns the median over `samples` landed cancels.
fn bench_cancel_latency(circuit: &Arc<Circuit>, threads: usize, samples: usize) -> f64 {
    let netlist = materialize(circuit, "cancel");
    let path = netlist.to_str().expect("utf-8 temp path").to_owned();

    // Small site batches give the sweep many cancellation checkpoints,
    // so the cancel reliably lands mid-flight instead of racing a
    // nearly-finished request.
    let service = SerService::new(SerServiceConfig {
        max_sessions: 8,
        threads,
        sweep_batch_sites: 8,
        max_sweep_responses: 0,
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    });
    let engine = Arc::new(ProtocolEngine::new(
        Arc::new(service),
        EngineConfig::default(),
    ));
    let mut transport = TcpTransport::bind("127.0.0.1:0").expect("bind loopback");
    let addr = transport.local_addr();
    let handle = transport.shutdown_handle();
    let server = std::thread::spawn(move || serve(&mut transport, &engine));

    let connect = || {
        let stream = TcpStream::connect(addr).expect("connect loopback");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (reader, stream)
    };
    let (mut swept_reader, mut swept) = connect();
    let (mut cancel_reader, mut canceller) = connect();
    let send = |writer: &mut TcpStream, request: String| {
        writer.write_all(request.as_bytes()).expect("send");
        writer.write_all(b"\n").expect("send");
        writer.flush().expect("send");
    };

    // Warm the session so every sample measures cancellation, not the
    // one-time compile + plan build.
    let mut line = String::new();
    send(
        &mut swept,
        format!("{{\"v\": 2, \"op\": \"sweep\", \"netlist\": \"{path}\", \"top\": 1}}"),
    );
    swept_reader.read_line(&mut line).expect("warm reply");
    assert!(line.contains("\"frame\": \"result\""), "{line}");

    let mut latencies: Vec<f64> = Vec::with_capacity(samples);
    let mut attempt = 0;
    while latencies.len() < samples && attempt < samples * 4 {
        attempt += 1;
        let id = format!("cancel-{attempt}");
        send(
            &mut swept,
            format!(
                "{{\"v\": 2, \"id\": \"{id}\", \"op\": \"sweep\", \"netlist\": \"{path}\", \"progress\": true}}"
            ),
        );
        // Wait until the sweep is demonstrably in flight (or already
        // over — then this attempt can't measure a cancel).
        loop {
            line.clear();
            swept_reader.read_line(&mut line).expect("frame");
            assert!(!line.contains("\"frame\": \"error\""), "{line}");
            if line.contains("\"frame\": \"progress\"") || line.contains("\"frame\": \"result\"") {
                break;
            }
        }
        if line.contains("\"frame\": \"result\"") {
            continue;
        }
        let t = Instant::now();
        send(
            &mut canceller,
            format!("{{\"v\": 2, \"op\": \"cancel\", \"target\": \"{id}\"}}"),
        );
        // Drain to the swept connection's terminal frame; the clock
        // stops the moment it arrives.
        let cancelled = loop {
            line.clear();
            swept_reader.read_line(&mut line).expect("frame");
            if line.contains("\"frame\": \"error\"") {
                break true;
            }
            if line.contains("\"frame\": \"result\"") {
                break false;
            }
        };
        let elapsed = t.elapsed().as_secs_f64();
        if cancelled {
            assert!(line.contains("cancelled"), "{line}");
            latencies.push(elapsed);
        }
        // The cancel op's own reply — read outside the measured path.
        line.clear();
        cancel_reader.read_line(&mut line).expect("cancel reply");
        assert!(line.contains("\"frame\": \"result\""), "{line}");
    }
    assert!(!latencies.is_empty(), "no cancel ever landed mid-sweep");

    drop(swept);
    drop(swept_reader);
    drop(canceller);
    drop(cancel_reader);
    handle.shutdown();
    server.join().expect("server thread").expect("serve ok");
    let _ = std::fs::remove_file(&netlist);
    median_ms(&mut latencies)
}
