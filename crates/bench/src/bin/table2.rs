//! Regenerates the paper's **Table 2**: analytical EPP vs random
//! simulation on the eleven ISCAS'89 circuits (synthetic profile
//! stand-ins; see DESIGN.md §2).
//!
//! ```text
//! cargo run --release -p ser-bench-harness --bin table2 [-- --quick]
//! ```
//!
//! `--quick` restricts the run to the six smaller circuits with a lower
//! Monte-Carlo budget (useful in CI). Column meanings match the paper
//! (per-node time semantics — see `ser-bench/src/workload.rs`):
//! `SysT` (ms/node, our approach), `SimT` (s/node, packed random
//! simulation), `NaiveT` (s/node, scalar unoptimized simulation),
//! `%Dif`, `MAD` (mean |ΔP_sens|), `SPT` (s, whole-circuit signal
//! probabilities), `ISP`/`ESP` (speedups incl./excl. SP time).

use ser_bench_harness::table::{fmt_speedup, TextTable};
use ser_bench_harness::workload::{run_circuit, Table2Config};
use ser_gen::{synthesize, TABLE2};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let circuits: &[_] = if quick { &TABLE2[..6] } else { &TABLE2[..] };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The baseline runs under the Mendo-style sequential stopping rule:
    // each site stops once its estimate meets the normalized error
    // target (capped at mc_vectors), replacing the old fixed trial
    // count in the accuracy comparison.
    let cfg_proto = Table2Config {
        mc_vectors: if quick { 16_000 } else { 40_000 },
        mc_target_error: Some(0.05),
        max_mc_sites: if quick { 50 } else { 200 },
        naive_sites: if quick { 4 } else { 8 },
        seed: 0xDA7E,
        threads,
    };

    println!("# Table 2 reproduction: EPP vs random simulation");
    println!(
        "# {} circuits, sequential MC (target error {:.0}%, cap {} vectors/site) over {} sampled sites, naive baseline on {} sites, {} threads",
        circuits.len(),
        cfg_proto.mc_target_error.unwrap_or(0.0) * 100.0,
        cfg_proto.mc_vectors,
        cfg_proto.max_mc_sites,
        cfg_proto.naive_sites,
        threads,
    );
    println!("# SysT/SimT/NaiveT are per-node times (see workload.rs docs)");
    println!();

    let mut table = TextTable::new([
        "Circuit",
        "Nodes",
        "SysT(ms)",
        "SimT(s)",
        "MCvec",
        "NaiveT(s)",
        "%Dif",
        "MAD",
        "SPT(s)",
        "ISP",
        "ESP",
        "NSP",
    ]);
    let mut sums = (0.0f64, 0.0f64, 0.0f64, 0.0f64); // dif, isp, esp, nsp
    for profile in circuits {
        let circuit = synthesize(profile, 1);
        let row = run_circuit(&circuit, &cfg_proto);
        let nsp = row
            .naive_s
            .map(|n| n * 1e3 / row.syst_ms)
            .unwrap_or(f64::NAN);
        table.push_row([
            row.name.clone(),
            row.nodes.to_string(),
            format!("{:.4}", row.syst_ms),
            format!("{:.4}", row.simt_s),
            format!("{:.0}", row.mean_mc_vectors),
            row.naive_s
                .map(|n| format!("{n:.3}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.1}", row.pct_dif),
            format!("{:.3}", row.mad),
            format!("{:.3}", row.spt_s),
            fmt_speedup(row.isp),
            fmt_speedup(row.esp),
            if nsp.is_nan() {
                "-".to_owned()
            } else {
                fmt_speedup(nsp)
            },
        ]);
        sums.0 += row.pct_dif;
        sums.1 += row.isp;
        sums.2 += row.esp;
        sums.3 += if nsp.is_nan() { 0.0 } else { nsp };
        eprintln!("  done: {}", row.name);
    }
    let n = circuits.len() as f64;
    table.push_row([
        "average".to_owned(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:.1}", sums.0 / n),
        String::new(),
        String::new(),
        fmt_speedup(sums.1 / n),
        fmt_speedup(sums.2 / n),
        fmt_speedup(sums.3 / n),
    ]);
    println!("{}", table.render());
    println!("Paper reference: avg %Dif 5.4; ESP 4-5 orders of magnitude; ISP 2-3 orders.");
    println!("NSP = speedup vs the naive scalar baseline (closer to what 2005-era");
    println!("comparisons used); ESP is against our bit-parallel, cone-restricted");
    println!("simulator, a deliberately stronger opponent.");
}
