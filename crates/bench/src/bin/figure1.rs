//! Regenerates the paper's **Figure 1** worked example, printing every
//! intermediate quantity of the EPP calculation on the reconvergent
//! circuit, and cross-checks the numbers against the exact oracle and
//! Monte-Carlo simulation.
//!
//! ```text
//! cargo run --release -p ser-bench-harness --bin figure1
//! ```

use ser_epp::{AnalysisSession, ExactEpp};
use ser_gen::figure1;
use ser_sim::MonteCarlo;
use ser_sp::InputProbs;

fn main() {
    let c = figure1();
    let b = c.find("B").unwrap();
    let cc = c.find("C").unwrap();
    let f = c.find("F").unwrap();
    let probs = InputProbs::uniform(0.5)
        .with(b, 0.2)
        .with(cc, 0.3)
        .with(f, 0.7);

    println!("# Figure 1 walkthrough (Asadi & Tahoori, DATE'05)");
    println!("# SP(B) = 0.2, SP(C) = 0.3, SP(F) = 0.7; SEU at gate A.\n");

    // A compiled session: topo artifacts + SP once; the site pass runs
    // through the batched cone-plan sweep.
    let session = AnalysisSession::with_inputs(&c, probs.clone()).unwrap();
    let site = c.find("A").unwrap();
    let sweep = session.sweep_sites(&[site], 1);
    let result = sweep.get(0);

    // The intermediate tuples the paper prints.
    for name in ["E", "D", "G", "H"] {
        let id = c.find(name).unwrap();
        // Rerun per-node via arrival_at on H; intermediate values are in
        // the pass; easiest is a fresh mini-analysis exposing them:
        // reconstruct by propagating to each signal using site analysis
        // of the sub-circuit — simplest here: use the exact oracle's
        // tuple, which matches the analytical pass on this circuit.
        let tuple = ExactEpp::new()
            .tuple_at(&c, &probs, site, id)
            .expect("small circuit");
        println!("P({name}) = {tuple}");
    }
    println!();
    let h = c.find("H").unwrap();
    let at_h = result.arrival_at(h).unwrap();
    println!("analytical P(H)      = {at_h}");
    println!("paper      P(H)      = 0.042(a) + 0.392(ā) + 0.168(0) + 0.398(1)");
    println!("P_sensitized(A)      = {:.3}", result.p_sensitized());

    let exact = ExactEpp::new().site(&c, &probs, site).unwrap();
    println!("exact P_sensitized   = {:.3}", exact.p_sensitized);

    // NOTE: MC draws inputs uniformly; to respect the biased SPs we use
    // the exact oracle above as ground truth and report uniform-input MC
    // only for the uniform variant. One session serves both the sweep
    // and the shared simulator.
    let uniform_session = AnalysisSession::new(&c).unwrap();
    let uniform_sweep = uniform_session.sweep_sites(&[site], 1);
    let uniform = uniform_sweep.get(0);
    let mc = uniform_session.monte_carlo_site(&MonteCarlo::new(200_000).with_seed(7), site);
    println!("\n# uniform-0.5 variant (Monte-Carlo cross-check)");
    println!("analytical P_sens    = {:.4}", uniform.p_sensitized());
    println!(
        "monte-carlo P_sens   = {:.4}  ({} vectors)",
        mc.p_sensitized, 200_000
    );
}
