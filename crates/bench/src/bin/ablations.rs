//! Ablation studies for the design choices DESIGN.md §5 calls out:
//!
//! 1. **Polarity tracking** — run the EPP pass with and without the
//!    `Pa`/`Pā` split (the no-polarity variant merges them), against the
//!    exact oracle, over reconvergence-controlled random DAGs.
//! 2. **SP engine choice** — independent vs correlation vs exact SP
//!    feeding the same EPP pass.
//! 3. **XOR-richness** — accuracy as the fraction of parity logic grows.
//! 4. **Monte-Carlo budget** — baseline accuracy vs vector count
//!    (why the baseline is expensive).
//!
//! ```text
//! cargo run --release -p ser-bench-harness --bin ablations
//! ```

use ser_bench_harness::accuracy::{mean_abs_diff, SitePair};
use ser_bench_harness::table::TextTable;
use ser_epp::{AnalysisSession, EppAnalysis, ExactEpp, PolarityMode};
use ser_gen::RandomDag;
use ser_netlist::{Circuit, NodeId};
use ser_sim::{BitSim, MonteCarlo};
use ser_sp::{CorrelationSp, ExactSp, IndependentSp, InputProbs, SpEngine};

/// Mean |analytical − exact| `P_sensitized` over all nodes.
///
/// One compiled session per circuit: the analytical side runs as a
/// single batched sweep over the cached cone plans, and the exact
/// oracle's site iteration reuses the session's shared simulator
/// instead of recompiling one per site.
fn epp_error_vs_exact_with(
    circuit: &Circuit,
    sp_engine: &dyn SpEngine,
    polarity: PolarityMode,
) -> f64 {
    let probs = InputProbs::default();
    let session = AnalysisSession::with_engine(circuit, probs, sp_engine).expect("valid circuit");
    let sweep = session
        .epp()
        .sweep_with(polarity, 1, session.workspace_pool());
    let oracle = ExactEpp::new();
    let pairs: Vec<SitePair> = sweep
        .iter()
        .map(|r| SitePair {
            analytical: r.p_sensitized(),
            monte_carlo: session
                .exact_site(&oracle, r.site())
                .expect("small circuit")
                .p_sensitized,
        })
        .collect();
    mean_abs_diff(&pairs)
}

fn epp_error_vs_exact(circuit: &Circuit, sp_engine: &dyn SpEngine) -> f64 {
    epp_error_vs_exact_with(circuit, sp_engine, PolarityMode::Tracked)
}

fn polarity_sweep() {
    println!("## Ablation 1: polarity tracking (the paper's key idea)");
    println!("(mean |P_sens - exact|; tracked Pa/Pā vs merged single error value)\n");
    let mut table = TextTable::new(["reconv", "tracked", "merged"]);
    for reconv in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let dag = RandomDag::new(12, 50).with_reconvergence(reconv);
        let (mut tracked, mut merged) = (0.0f64, 0.0f64);
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let c = dag.build(seed);
            tracked += epp_error_vs_exact_with(&c, &IndependentSp::new(), PolarityMode::Tracked);
            merged += epp_error_vs_exact_with(&c, &IndependentSp::new(), PolarityMode::Merged);
        }
        table.push_row([
            format!("{reconv:.2}"),
            format!("{:.4}", tracked / SEEDS as f64),
            format!("{:.4}", merged / SEEDS as f64),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: merging polarities loses the a∧ā=0 cancellation and");
    println!("overestimates propagation, increasingly so with reconvergence.\n");
}

fn reconvergence_sweep() {
    println!("## Ablation 2: reconvergence density x SP engine");
    println!("(mean |P_sens - exact| over all nodes; 12-input, 50-gate random DAGs)\n");
    let mut table = TextTable::new(["reconv", "sp=independent", "sp=correlation", "sp=exact"]);
    for reconv in [0.0, 0.25, 0.5, 0.75, 0.95] {
        let dag = RandomDag::new(12, 50).with_reconvergence(reconv);
        let mut errs = [0.0f64; 3];
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let c = dag.build(seed);
            errs[0] += epp_error_vs_exact(&c, &IndependentSp::new());
            errs[1] += epp_error_vs_exact(&c, &CorrelationSp::new());
            errs[2] += epp_error_vs_exact(&c, &ExactSp::new());
        }
        table.push_row([
            format!("{reconv:.2}"),
            format!("{:.4}", errs[0] / SEEDS as f64),
            format!("{:.4}", errs[1] / SEEDS as f64),
            format!("{:.4}", errs[2] / SEEDS as f64),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: rule error grows with reconvergence; better SP shrinks but");
    println!("cannot eliminate it (the EPP pass itself also assumes independence).\n");
}

fn xor_sweep() {
    println!("## Ablation 3: XOR-richness");
    println!("(same metric; XOR/XNOR fraction swept on 12-input, 50-gate DAGs)\n");
    let mut table = TextTable::new(["xor_frac", "mean_err"]);
    for xf in [0.0, 0.2, 0.4, 0.6, 0.8] {
        let dag = RandomDag::new(12, 50)
            .with_xor_fraction(xf)
            .with_reconvergence(0.5);
        let mut err = 0.0;
        const SEEDS: u64 = 3;
        for seed in 0..SEEDS {
            let c = dag.build(seed);
            err += epp_error_vs_exact(&c, &IndependentSp::new());
        }
        table.push_row([format!("{xf:.1}"), format!("{:.4}", err / SEEDS as f64)]);
    }
    println!("{}", table.render());
    println!("Reading: XOR propagates errors unconditionally, so *logical* masking");
    println!("error shrinks, but parity reconvergence stresses the polarity rules.\n");
}

fn mc_budget_sweep() {
    println!("## Ablation 4: Monte-Carlo budget (baseline convergence)");
    println!("(|MC - exact| for one site of a 12-input DAG vs vector count)\n");
    let c = RandomDag::new(12, 50).with_reconvergence(0.5).build(1);
    let site = NodeId::from_index(14); // an early gate with a wide cone
    let probs = InputProbs::default();
    let exact = ExactEpp::new()
        .site(&c, &probs, site)
        .expect("small circuit")
        .p_sensitized;
    let sim = BitSim::new(&c).unwrap();
    let mut table = TextTable::new(["vectors", "mc_estimate", "abs_err"]);
    for vectors in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let est = MonteCarlo::new(vectors)
            .with_seed(3)
            .estimate_site(&sim, site)
            .p_sensitized;
        table.push_row([
            vectors.to_string(),
            format!("{est:.4}"),
            format!("{:.4}", (est - exact).abs()),
        ]);
    }
    println!("{}", table.render());
    println!("Reading: the baseline needs ~10^4-10^5 vectors per node for two-digit");
    println!("accuracy — the cost the analytical method amortizes into one pass.\n");
}

fn baseline_engineering() {
    use std::time::Instant;
    println!("## Ablation 5: baseline engineering");
    println!("(per-site cost: naive scalar MC vs bit-parallel cone-restricted MC");
    println!(" vs the analytical pass, on the s953 stand-in; 1000 vectors/site)\n");
    let c = ser_gen::iscas89_like("s953").expect("profile exists");
    let sim = BitSim::new(&c).unwrap();
    let sites: Vec<NodeId> = c.node_ids().step_by(37).take(8).collect();

    let t = Instant::now();
    for &s in &sites {
        let _ = ser_sim::NaiveMonteCarlo::new(1_000)
            .with_seed(1)
            .estimate_site(&c, s)
            .unwrap();
    }
    let naive = t.elapsed().as_secs_f64() / sites.len() as f64;

    let mc = MonteCarlo::new(1_000).with_seed(1);
    let t = Instant::now();
    for &s in &sites {
        let _ = mc.estimate_site(&sim, s);
    }
    let packed = t.elapsed().as_secs_f64() / sites.len() as f64;

    let sp = IndependentSp::new()
        .compute(&c, &InputProbs::default())
        .unwrap();
    let analysis = EppAnalysis::new(&c, sp).unwrap();
    let t = Instant::now();
    for &s in &sites {
        let _ = analysis.site(s);
    }
    let epp = t.elapsed().as_secs_f64() / sites.len() as f64;

    let mut table = TextTable::new(["method", "per-site", "vs naive"]);
    table.push_row([
        "naive scalar MC".to_owned(),
        ser_bench_harness::table::fmt_seconds(naive),
        "1.0x".to_owned(),
    ]);
    table.push_row([
        "packed+cone MC".to_owned(),
        ser_bench_harness::table::fmt_seconds(packed),
        ser_bench_harness::table::fmt_speedup(naive / packed),
    ]);
    table.push_row([
        "analytical EPP".to_owned(),
        ser_bench_harness::table::fmt_seconds(epp),
        ser_bench_harness::table::fmt_speedup(naive / epp),
    ]);
    println!("{}", table.render());
    println!("Reading: engineering the simulator buys 1-2 orders of magnitude;");
    println!("the analytical method buys the rest — and its advantage grows with");
    println!("the vector budget, which the simulator pays per vector and EPP never pays.\n");
}

fn main() {
    println!("# Ablation studies (DESIGN.md section 5)\n");
    polarity_sweep();
    reconvergence_sweep();
    xor_sweep();
    mc_budget_sweep();
    baseline_engineering();
}
