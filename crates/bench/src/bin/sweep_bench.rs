//! Sweep-throughput benchmark: the batched cone-plan engine vs the
//! retained per-site reference path, on Table 2 workload circuits.
//! Emits `BENCH_sweep.json` so the perf trajectory is tracked commit
//! over commit.
//!
//! ```text
//! cargo run --release -p ser-bench-harness --bin sweep_bench [-- --quick] [-- --out PATH]
//! ```
//!
//! Reported per circuit:
//!
//! - `reference`: the per-site `site_with_workspace` loop (cone DFS +
//!   sort + full-circuit AoS scratch per site) — sites/sec plus p50/p99
//!   per-site latency.
//! - `batched_1t`: the cone-plan sweep, one thread — the kernel-level
//!   speedup with scheduling kept out of the picture (best of five
//!   whole-circuit sweeps, so scheduler steal on a shared recording
//!   host doesn't masquerade as a kernel regression).
//! - `batched_mt`: the cone-plan sweep under the work-stealing
//!   scheduler at the machine's parallelism.
//! - `plan_build_ms`: one-time cone-plan compilation cost of the
//!   **reverse-topological** builder (what production pays, amortized
//!   across every subsequent sweep of the session).
//! - `plan_build_dfs_ms` / `plan_speedup`: the retained per-site-DFS
//!   reference builder's cost on the same circuit, and the ratio — the
//!   cold-start win of the merge builder.
//! - `whatif_resweep_ms` / `whatif_dirty_site_fraction` /
//!   `whatif_full_recompute_ms`: the incremental what-if engine on a
//!   single-gate TMR — dirty-region re-sweep cost and dirty fraction
//!   vs the from-scratch recompute an edit used to require (the run
//!   also asserts the incremental state matches that oracle bitwise).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use ser_epp::{AnalysisSession, Edit, KernelBackend, PolarityMode, SiteWorkspace, WhatIfSession};
use ser_gen::synthesize;
use ser_netlist::{ConePlans, FlatConePlans, NodeId};

/// Number of nodes with a DFF-free path into `root` — the what-if
/// engine's dirty region for an edit at a fanout-free gate.
fn comb_fanin_closure(circuit: &ser_netlist::Circuit, root: NodeId) -> usize {
    let mut seen = vec![false; circuit.len()];
    let mut stack = vec![root];
    let mut count = 0;
    while let Some(id) = stack.pop() {
        if std::mem::replace(&mut seen[id.index()], true) {
            continue;
        }
        count += 1;
        let node = circuit.node(id);
        if node.kind() != ser_netlist::GateKind::Dff {
            stack.extend_from_slice(node.fanin());
        }
    }
    count
}

/// Latency percentile over a sorted sample, in microseconds.
fn percentile_us(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] * 1e6
}

struct EngineStats {
    sites_per_sec: f64,
    p50_us: f64,
    p99_us: f64,
}

fn json_engine(label: &str, s: &EngineStats) -> String {
    format!(
        "\"{label}\": {{\"sites_per_sec\": {:.1}, \"p50_us\": {:.3}, \"p99_us\": {:.3}}}",
        s.sites_per_sec, s.p50_us, s.p99_us
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_sweep.json".to_owned());
    let only = args
        .iter()
        .position(|a| a == "--circuit")
        .and_then(|i| args.get(i + 1).cloned());
    let names: Vec<&str> = if let Some(only) = only.as_deref() {
        vec![match only {
            "s953" => "s953",
            "s1196" => "s1196",
            "s1423" => "s1423",
            "s9234" => "s9234",
            other => panic!("unknown bench circuit `{other}`"),
        }]
    } else if quick {
        vec!["s953"]
    } else {
        vec!["s953", "s1196", "s1423", "s9234"]
    };
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut records: Vec<String> = Vec::new();
    for name in names {
        let profile = ser_gen::profile(name).expect("profile exists");
        let circuit = synthesize(&profile, 1);
        let n = circuit.len();
        let session = AnalysisSession::new(&circuit).expect("valid circuit");
        let epp = session.epp();
        let sites: Vec<NodeId> = circuit.node_ids().collect();

        // --- Reference path: per-site DFS + sort + AoS scratch. -------
        let mut ws = SiteWorkspace::new(&epp);
        let mut ref_lat: Vec<f64> = Vec::with_capacity(n);
        let ref_start = Instant::now();
        for &site in &sites {
            let t = Instant::now();
            let r = epp.site_with_workspace(site, PolarityMode::Tracked, &mut ws);
            std::hint::black_box(r.p_sensitized());
            ref_lat.push(t.elapsed().as_secs_f64());
        }
        let ref_total = ref_start.elapsed().as_secs_f64();
        ref_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let reference = EngineStats {
            sites_per_sec: n as f64 / ref_total,
            p50_us: percentile_us(&ref_lat, 0.50),
            p99_us: percentile_us(&ref_lat, 0.99),
        };

        // --- Plan build: both builders, explicitly timed. -------------
        // The suffix-shared reverse-topological merge builder (the
        // production path) is timed first, with nothing else resident —
        // the flat reference arena is an order of magnitude larger and
        // keeping it alive during the merge build distorts the timing
        // through allocator and cache pressure.
        let topo = epp.artifacts();
        let plan_start = Instant::now();
        let merged_plans =
            ConePlans::build_bounded_with_threads(&circuit, topo, usize::MAX, threads)
                .expect("unbounded build cannot decline");
        let plan_build_ms = plan_start.elapsed().as_secs_f64() * 1e3;
        // …then the reference (per-site DFS + sort, flat-materialized)
        // builder, which must plan the identical cones.
        let plan_start = Instant::now();
        let dfs_plans =
            FlatConePlans::build_bounded_with_threads(&circuit, topo, usize::MAX, threads)
                .expect("unbounded build cannot decline");
        let plan_build_dfs_ms = plan_start.elapsed().as_secs_f64() * 1e3;
        for &site in &sites {
            assert_eq!(
                merged_plans.plan(site).materialize(&circuit),
                dfs_plans.plan(site).materialize(),
                "suffix-shared and flat builders disagree at {site}"
            );
        }
        // The dedup win: how many members the arena actually stores
        // versus the logical sum-of-cones the flat layout would store.
        let arena_members = merged_plans.stored_members();
        let arena_bytes = merged_plans.arena_bytes();
        let logical_members = merged_plans.logical_members();
        let dedup_factor = logical_members as f64 / arena_members.max(1) as f64;
        drop((merged_plans, dfs_plans));
        let plan_speedup = plan_build_dfs_ms / plan_build_ms;
        // Warm the session's own cached plans so the sweeps below pay
        // no build.
        assert!(
            epp.artifacts().cone_plans(&circuit).is_some(),
            "bench circuits fit the plan budget"
        );

        // --- Batched, one thread: the kernel speedup. -----------------
        // Best of a few whole-circuit sweeps: one sweep is tens of
        // milliseconds, short enough that a single shot folds scheduler
        // steal (this records on shared hosts) straight into the
        // trajectory; the min is the pace the kernel actually sustains.
        let mut batched1_total = f64::INFINITY;
        let mut sweep1 = session.sweep(1);
        for _ in 0..5 {
            let t = Instant::now();
            sweep1 = session.sweep(1);
            batched1_total = batched1_total.min(t.elapsed().as_secs_f64());
        }
        // Per-site latency sample: singleton sweeps through the shared
        // plans and pool (an upper bound on steady-state per-site cost —
        // each call still assembles a one-site result arena).
        let mut one_lat: Vec<f64> = Vec::with_capacity(n);
        for &site in &sites {
            let t = Instant::now();
            let s = session.sweep_sites(&[site], 1);
            std::hint::black_box(s.get(0).p_sensitized());
            one_lat.push(t.elapsed().as_secs_f64());
        }
        one_lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let batched_1t = EngineStats {
            sites_per_sec: n as f64 / batched1_total,
            p50_us: percentile_us(&one_lat, 0.50),
            p99_us: percentile_us(&one_lat, 0.99),
        };

        // --- Batched, scheduler at full parallelism. ------------------
        // Only a *real* multi-thread run is recorded as one: on a
        // single-core box the row reuses the 1-thread timing instead of
        // passing off a second serial sweep as "mt".
        let (batched_mt_total, mt_threads_used) = if threads > 1 {
            let t = Instant::now();
            let sweep_mt = session.sweep(threads);
            let total = t.elapsed().as_secs_f64();
            // Sanity: thread count must not change results.
            assert_eq!(sweep1, sweep_mt, "thread count changed results");
            (total, sweep_mt.threads_used())
        } else {
            (batched1_total, sweep1.threads_used())
        };
        assert_eq!(sweep1.p_sensitized().len(), n, "sweep covered every node");

        // --- What-if: single-gate TMR, incremental vs from-scratch. ---
        // Target: a fanout-free logic gate (a PO driver) with the
        // smallest combinational fan-in cone. Fanout-free keeps the
        // dirty region at the gate's own fan-in closure — a TMR
        // voter's signal probability moves, so an edit with downstream
        // consumers dirties everything its perturbation reaches
        // through the DFF fixed point. Small-cone makes the record
        // measure blast-radius-proportional cost, the property the
        // engine sells.
        let target = circuit
            .node_ids()
            .filter(|&id| {
                circuit.node(id).kind().is_logic() && circuit.node(id).fanout().is_empty()
            })
            .min_by_key(|&id| (comb_fanin_closure(&circuit, id), id.index()))
            .expect("bench circuits have fanout-free logic gates");
        let mut wf = WhatIfSession::with_base_results(session.clone(), Arc::new(sweep1.clone()), 1);
        let mut whatif_ms = f64::INFINITY;
        let mut dirty_fraction = 0.0;
        for _ in 0..3 {
            let outcome = wf.apply(Edit::Tmr(target)).expect("valid TMR target");
            whatif_ms = whatif_ms.min(outcome.elapsed.as_secs_f64() * 1e3);
            dirty_fraction = outcome.dirty_sites as f64 / outcome.total_sites as f64;
            wf.revert();
        }
        // What the same edit costs without the engine: a fresh session
        // on the edited circuit (compile + plans + whole-circuit
        // sweep) — and the oracle the incremental state must match.
        let outcome = wf.apply(Edit::Tmr(target)).expect("valid TMR target");
        let t = Instant::now();
        let (full, full_total) = wf.full_recompute().expect("edited circuit recompiles");
        let whatif_full_ms = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            full_total.to_bits(),
            wf.total_ser().to_bits(),
            "incremental total diverged from the from-scratch oracle"
        );
        assert_eq!(
            &full,
            wf.results().as_ref(),
            "incremental arena diverged from the from-scratch oracle"
        );
        let whatif_dirty = outcome.dirty_sites;
        drop(wf);

        let speedup_1t = batched_1t.sites_per_sec / reference.sites_per_sec;
        let speedup_mt = (n as f64 / batched_mt_total) / reference.sites_per_sec;
        eprintln!(
            "{name}: {n} nodes | ref {:.0}/s | batched(1t) {:.0}/s ({speedup_1t:.2}x) | batched({mt_threads_used}t used) {:.0}/s ({speedup_mt:.2}x) | plans {plan_build_ms:.1}ms (dfs {plan_build_dfs_ms:.1}ms, {plan_speedup:.1}x) | arena {arena_members} stored / {logical_members} logical ({dedup_factor:.1}x), {arena_bytes} B | whatif TMR {whatif_ms:.2}ms ({whatif_dirty} dirty, {:.1}% of sites; full {whatif_full_ms:.1}ms, warm sweep {:.1}ms)",
            reference.sites_per_sec,
            batched_1t.sites_per_sec,
            n as f64 / batched_mt_total,
            dirty_fraction * 100.0,
            batched1_total * 1e3,
        );

        let mut rec = String::from("  {");
        let _ = write!(
            rec,
            "\"circuit\": \"{name}\", \"nodes\": {n}, \"plan_build_ms\": {plan_build_ms:.3}, \"plan_build_dfs_ms\": {plan_build_dfs_ms:.3}, \"plan_speedup\": {plan_speedup:.3}, \"arena_members\": {arena_members}, \"arena_bytes\": {arena_bytes}, \"logical_members\": {logical_members}, \"dedup_factor\": {dedup_factor:.3}, "
        );
        rec.push_str(&json_engine("reference", &reference));
        rec.push_str(", ");
        rec.push_str(&json_engine("batched_1t", &batched_1t));
        let _ = write!(
            rec,
            ", \"batched_mt\": {{\"threads_requested\": {threads}, \"threads_used\": {mt_threads_used}, \"distinct_run\": {}, \"sites_per_sec\": {:.1}}}",
            threads > 1,
            n as f64 / batched_mt_total
        );
        let _ = write!(
            rec,
            ", \"speedup_1t\": {speedup_1t:.3}, \"speedup_mt\": {speedup_mt:.3}, \"whatif_resweep_ms\": {whatif_ms:.3}, \"whatif_dirty_site_fraction\": {:.4}, \"whatif_full_recompute_ms\": {whatif_full_ms:.3}}}",
            dirty_fraction
        );
        records.push(rec);
    }

    // Backend provenance: a throughput number without the rule-core
    // backend that produced it is uninterpretable across hosts.
    let kernel = KernelBackend::auto().name();
    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"kernel\": \"{kernel}\",\n  \"unit_note\": \"latencies in microseconds; speedups vs per-site reference path; arena_members = deduplicated stored cone members (suffix-shared); host cores: {threads}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        records.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
