//! Criterion benches for the two sides of Table 2: the analytical
//! method's per-node cost vs the random-simulation baseline's per-node
//! cost, plus the SP pass (`SPT`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ser_epp::EppAnalysis;
use ser_gen::iscas89_like;
use ser_sim::{BitSim, MonteCarlo};
use ser_sp::{IndependentSp, InputProbs, SpEngine};

/// Analytical side: one EPP site pass per node (averaged over nodes).
fn bench_epp_per_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/epp_per_node");
    for name in ["s298", "s953", "s1196"] {
        let circuit = iscas89_like(name).unwrap();
        let sp = IndependentSp::new()
            .compute(&circuit, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&circuit, sp).unwrap();
        let sites: Vec<_> = circuit.node_ids().take(32).collect();
        group.throughput(Throughput::Elements(sites.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &analysis, |b, a| {
            b.iter(|| {
                for &s in &sites {
                    std::hint::black_box(a.site(s));
                }
            })
        });
    }
    group.finish();
}

/// Baseline side: Monte-Carlo per node at the paper-scale vector budget
/// (scaled down 10x to keep bench runtime sane; Criterion reports
/// per-iteration time, so the ratio to the EPP bench is what matters).
fn bench_monte_carlo_per_node(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/mc_per_node");
    group.sample_size(10);
    for name in ["s298", "s953"] {
        let circuit = iscas89_like(name).unwrap();
        let sim = BitSim::new(&circuit).unwrap();
        let mc = MonteCarlo::new(1_000).with_seed(1);
        let site = circuit.node_ids().next().unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| std::hint::black_box(mc.estimate_site(sim, site)))
        });
    }
    group.finish();
}

/// The `SPT` column: the linear-time SP pass.
fn bench_sp_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2/sp_pass");
    for name in ["s953", "s1196", "s1423"] {
        let circuit = iscas89_like(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &circuit, |b, circ| {
            b.iter(|| {
                IndependentSp::new()
                    .with_max_iterations(1000)
                    .compute(circ, &InputProbs::default())
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_epp_per_node,
    bench_monte_carlo_per_node,
    bench_sp_pass
);
criterion_main!(benches);
