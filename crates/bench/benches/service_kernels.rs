//! Criterion coverage for the service layer: warm-cache request
//! dispatch and sweep fan-out/reassembly overhead (CI runs
//! `cargo bench --no-run` to keep these compiling).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ser_gen::iscas89_like;
use ser_service::{Request, SerService, SerServiceConfig, SiteRequest, SweepRequest};

fn warm_service(threads: usize) -> (SerService, Arc<ser_netlist::Circuit>) {
    let circuit = Arc::new(iscas89_like("s298").unwrap());
    let service = SerService::new(SerServiceConfig {
        max_sessions: 4,
        threads,
        sweep_batch_sites: 64,
        // Exercise the kernel path, not the response cache.
        max_sweep_responses: 0,
        plan_cache_dir: None,
        plan_cache_max_bytes: None,
        ..SerServiceConfig::default()
    });
    service.session(&circuit).unwrap();
    (service, circuit)
}

fn bench_warm_site_request(c: &mut Criterion) {
    let (service, circuit) = warm_service(2);
    let site = circuit.node_ids().next().unwrap();
    c.bench_function("service_warm_site_request_s298", |b| {
        b.iter(|| {
            let r = service
                .submit(&circuit, Request::Site(SiteRequest { site }))
                .unwrap();
            criterion::black_box(r.as_site().unwrap().p_sensitized())
        })
    });
}

fn bench_warm_sweep_request(c: &mut Criterion) {
    let (service, circuit) = warm_service(2);
    c.bench_function("service_warm_sweep_s298", |b| {
        b.iter(|| {
            let r = service
                .submit(&circuit, Request::Sweep(SweepRequest::default()))
                .unwrap();
            criterion::black_box(r.as_sweep().unwrap().len())
        })
    });
}

criterion_group!(benches, bench_warm_site_request, bench_warm_sweep_request);
criterion_main!(benches);
