//! Criterion benches for the analytical EPP kernels (Figure 1 and the
//! per-site pass that dominates Table 2's `SysT` column).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ser_epp::{EppAnalysis, FourValue};
use ser_gen::{figure1, iscas89_like, s27};
use ser_netlist::GateKind;
use ser_sp::{IndependentSp, InputProbs, SpEngine};

/// The Fig. 1 kernel: one four-value OR-rule application (the paper's
/// worked example, the innermost operation of the whole method).
fn bench_rule_application(c: &mut Criterion) {
    let cc = FourValue::from_signal_probability(0.3);
    let d = FourValue::new(0.2, 0.0, 0.8, 0.0);
    let g = FourValue::new(0.0, 0.7, 0.3, 0.0);
    c.bench_function("rule/or3_figure1", |b| {
        b.iter(|| ser_epp::propagate(std::hint::black_box(GateKind::Or), &[cc, d, g]))
    });
    c.bench_function("rule/xor3", |b| {
        b.iter(|| ser_epp::propagate(std::hint::black_box(GateKind::Xor), &[cc, d, g]))
    });
}

/// Per-site EPP pass on the embedded circuits.
fn bench_site_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("epp_site");
    for circuit in [figure1(), s27()] {
        let sp = IndependentSp::new()
            .compute(&circuit, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&circuit, sp).unwrap();
        let site = circuit.node_ids().next().unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(circuit.name().to_owned()),
            &analysis,
            |b, analysis| b.iter(|| analysis.site(std::hint::black_box(site))),
        );
    }
    group.finish();
}

/// Whole-circuit sweep (all nodes) on the smaller Table 2 stand-ins —
/// the quantity reported as `SysT`.
fn bench_all_sites(c: &mut Criterion) {
    let mut group = c.benchmark_group("epp_all_sites");
    group.sample_size(10);
    for name in ["s298", "s953"] {
        let circuit = iscas89_like(name).unwrap();
        let sp = IndependentSp::new()
            .compute(&circuit, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&circuit, sp).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &analysis,
            |b, analysis| b.iter(|| analysis.all_sites()),
        );
    }
    group.finish();
}

/// The batched cone-plan sweep against the per-site reference loop on
/// the same circuits: the arena engine vs DFS + sort + AoS scratch.
fn bench_batched_sweep(c: &mut Criterion) {
    use ser_epp::{PolarityMode, SiteWorkspace, WorkspacePool};
    let mut group = c.benchmark_group("epp_sweep");
    group.sample_size(10);
    for name in ["s298", "s953"] {
        let circuit = iscas89_like(name).unwrap();
        let sp = IndependentSp::new()
            .compute(&circuit, &InputProbs::default())
            .unwrap();
        let analysis = EppAnalysis::new(&circuit, sp).unwrap();
        let pool = WorkspacePool::new();
        // Warm the plan cache so the bench measures the steady state.
        let _ = analysis.sweep(1, &pool);
        group.bench_with_input(
            BenchmarkId::new("batched", name),
            &analysis,
            |b, analysis| b.iter(|| analysis.sweep(1, &pool)),
        );
        group.bench_with_input(
            BenchmarkId::new("reference", name),
            &analysis,
            |b, analysis| {
                let mut ws = SiteWorkspace::new(analysis);
                b.iter(|| {
                    analysis
                        .circuit()
                        .node_ids()
                        .map(|id| {
                            analysis
                                .site_with_workspace(id, PolarityMode::Tracked, &mut ws)
                                .p_sensitized()
                        })
                        .sum::<f64>()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_rule_application,
    bench_site_pass,
    bench_all_sites,
    bench_batched_sweep
);
criterion_main!(benches);
