//! Criterion benches for the simulation substrate: bit-parallel
//! throughput and cone-restricted fault injection (the baseline's
//! inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ser_gen::iscas89_like;
use ser_sim::{BitSim, SiteFaultSim};

/// Full-circuit 64-pattern sweep (patterns/second throughput).
fn bench_bitsim(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/bit_parallel_block");
    for name in ["s298", "s1196", "s9234"] {
        let circuit = iscas89_like(name).unwrap();
        let sim = BitSim::new(&circuit).unwrap();
        let words: Vec<u64> = (0..sim.sources().len())
            .map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1))
            .collect();
        let mut values = vec![0u64; circuit.len()];
        group.throughput(Throughput::Elements(64));
        group.bench_with_input(BenchmarkId::from_parameter(name), &sim, |b, sim| {
            b.iter(|| sim.run_into(std::hint::black_box(&words), &mut values))
        });
    }
    group.finish();
}

/// Fault injection for one site over one block (cone-restricted resim).
fn bench_fault_injection(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim/fault_inject_block");
    for name in ["s298", "s1196"] {
        let circuit = iscas89_like(name).unwrap();
        let sim = BitSim::new(&circuit).unwrap();
        // A primary input: widest cone, worst case.
        let site = circuit.inputs()[0];
        let fault = SiteFaultSim::new(&sim, site);
        let words: Vec<u64> = (0..sim.sources().len())
            .map(|i| 0xA5A5_5A5A_DEAD_BEEFu64.rotate_left(i as u32))
            .collect();
        let good = sim.run(&words);
        let mut scratch = good.clone();
        group.bench_with_input(BenchmarkId::from_parameter(name), &fault, |b, fault| {
            b.iter(|| std::hint::black_box(fault.inject(&sim, &good, &mut scratch)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bitsim, bench_fault_injection);
criterion_main!(benches);
