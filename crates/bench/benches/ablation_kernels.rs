//! Criterion benches for the ablation dimensions: polarity-mode cost
//! and SP-engine cost (accuracy is covered by the `ablations` binary;
//! these measure what each choice *costs*).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ser_epp::{EppAnalysis, PolarityMode};
use ser_gen::{iscas89_like, RandomDag};
use ser_sp::{CorrelationSp, IndependentSp, InputProbs, MonteCarloSp, SpEngine};

/// Tracked vs merged polarity: the merged variant does strictly less
/// bookkeeping — how much does the paper's accuracy cost in time?
fn bench_polarity_modes(c: &mut Criterion) {
    let circuit = iscas89_like("s953").unwrap();
    let sp = IndependentSp::new()
        .compute(&circuit, &InputProbs::default())
        .unwrap();
    let analysis = EppAnalysis::new(&circuit, sp).unwrap();
    let site = circuit.inputs()[0];
    let mut group = c.benchmark_group("ablation/polarity");
    group.bench_function("tracked", |b| {
        b.iter(|| analysis.site_with(std::hint::black_box(site), PolarityMode::Tracked))
    });
    group.bench_function("merged", |b| {
        b.iter(|| analysis.site_with(std::hint::black_box(site), PolarityMode::Merged))
    });
    group.finish();
}

/// SP engine cost on a mid-size random DAG (independent is linear,
/// correlation quadratic, Monte-Carlo proportional to vectors).
fn bench_sp_engines(c: &mut Criterion) {
    let circuit = RandomDag::new(24, 400).with_reconvergence(0.6).build(7);
    let probs = InputProbs::default();
    let mut group = c.benchmark_group("ablation/sp_engine");
    group.sample_size(10);
    for (name, engine) in [
        (
            "independent",
            Box::new(IndependentSp::new()) as Box<dyn SpEngine>,
        ),
        ("correlation", Box::new(CorrelationSp::new())),
        ("monte-carlo-10k", Box::new(MonteCarloSp::new(10_000))),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &engine, |b, e| {
            b.iter(|| e.compute(&circuit, &probs).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_polarity_modes, bench_sp_engines);
criterion_main!(benches);
