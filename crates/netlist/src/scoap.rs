//! SCOAP testability measures (Goldstein 1979): combinational
//! controllabilities `CC0`/`CC1` and observability `CO`.
//!
//! SCOAP is the classic structural stand-in for exactly the question
//! the paper answers probabilistically: *how hard is it to sensitize a
//! path from a node to an output?* Having it in the suite lets the
//! experiments compare EPP-based vulnerability ranking against the
//! traditional testability-based ranking (a low-`CO` node is easy to
//! observe, hence — all else equal — more SER-exposed).
//!
//! Conventions used here (combinational view, consistent with the rest
//! of the suite): primary inputs and flip-flop outputs have
//! `CC0 = CC1 = 1`; primary outputs *and flip-flop D pins* have
//! `CO = 0`; unobservable/uncontrollable values saturate at
//! [`SCOAP_INFINITY`].

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::topo;

/// Saturation value for unreachable controllability/observability.
pub const SCOAP_INFINITY: u32 = u32::MAX / 4;

/// SCOAP numbers for every node of one circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scoap {
    cc0: Vec<u32>,
    cc1: Vec<u32>,
    co: Vec<u32>,
}

fn sat_add(a: u32, b: u32) -> u32 {
    a.saturating_add(b).min(SCOAP_INFINITY)
}

impl Scoap {
    /// Computes the three measures: one forward pass for `CC0`/`CC1`,
    /// one backward pass for `CO`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit's
    /// combinational graph is cyclic.
    pub fn compute(circuit: &Circuit) -> Result<Self, NetlistError> {
        let order = topo::topo_order(circuit)?;
        let n = circuit.len();
        let mut cc0 = vec![SCOAP_INFINITY; n];
        let mut cc1 = vec![SCOAP_INFINITY; n];

        // --- Forward: controllability. --------------------------------
        for &id in &order {
            let node = circuit.node(id);
            let i = id.index();
            match node.kind() {
                GateKind::Input | GateKind::Dff => {
                    cc0[i] = 1;
                    cc1[i] = 1;
                }
                GateKind::Const0 => {
                    cc0[i] = 0;
                    cc1[i] = SCOAP_INFINITY;
                }
                GateKind::Const1 => {
                    cc0[i] = SCOAP_INFINITY;
                    cc1[i] = 0;
                }
                GateKind::Buf => {
                    let f = node.fanin()[0].index();
                    cc0[i] = sat_add(cc0[f], 1);
                    cc1[i] = sat_add(cc1[f], 1);
                }
                GateKind::Not => {
                    let f = node.fanin()[0].index();
                    cc0[i] = sat_add(cc1[f], 1);
                    cc1[i] = sat_add(cc0[f], 1);
                }
                GateKind::And | GateKind::Nand => {
                    // AND: 1 needs all inputs 1; 0 needs the cheapest 0.
                    let all1 = node
                        .fanin()
                        .iter()
                        .fold(0u32, |acc, f| sat_add(acc, cc1[f.index()]));
                    let min0 = node
                        .fanin()
                        .iter()
                        .map(|f| cc0[f.index()])
                        .min()
                        .expect("arity >= 1");
                    let (v1, v0) = (sat_add(all1, 1), sat_add(min0, 1));
                    if node.kind() == GateKind::And {
                        cc1[i] = v1;
                        cc0[i] = v0;
                    } else {
                        cc0[i] = v1;
                        cc1[i] = v0;
                    }
                }
                GateKind::Or | GateKind::Nor => {
                    let all0 = node
                        .fanin()
                        .iter()
                        .fold(0u32, |acc, f| sat_add(acc, cc0[f.index()]));
                    let min1 = node
                        .fanin()
                        .iter()
                        .map(|f| cc1[f.index()])
                        .min()
                        .expect("arity >= 1");
                    let (v0, v1) = (sat_add(all0, 1), sat_add(min1, 1));
                    if node.kind() == GateKind::Or {
                        cc0[i] = v0;
                        cc1[i] = v1;
                    } else {
                        cc1[i] = v0;
                        cc0[i] = v1;
                    }
                }
                GateKind::Xor | GateKind::Xnor => {
                    // Fold pairwise: cost of parity-0 / parity-1.
                    let mut c0 = cc0[node.fanin()[0].index()];
                    let mut c1 = cc1[node.fanin()[0].index()];
                    for f in &node.fanin()[1..] {
                        let (f0, f1) = (cc0[f.index()], cc1[f.index()]);
                        let n0 = sat_add(c0, f0).min(sat_add(c1, f1));
                        let n1 = sat_add(c0, f1).min(sat_add(c1, f0));
                        c0 = n0;
                        c1 = n1;
                    }
                    if node.kind() == GateKind::Xor {
                        cc0[i] = sat_add(c0, 1);
                        cc1[i] = sat_add(c1, 1);
                    } else {
                        cc0[i] = sat_add(c1, 1);
                        cc1[i] = sat_add(c0, 1);
                    }
                }
            }
        }

        // --- Backward: observability. ----------------------------------
        let mut co = vec![SCOAP_INFINITY; n];
        for &po in circuit.outputs() {
            co[po.index()] = 0;
        }
        for &ff in circuit.dffs() {
            // A value reaching a D pin is captured: observed.
            let d = circuit.node(ff).fanin()[0];
            co[d.index()] = 0;
        }
        for &id in order.iter().rev() {
            let node = circuit.node(id);
            if node.kind() == GateKind::Dff {
                continue; // Q-observability flows from its own fanout only
            }
            let gate_co = co[id.index()];
            if gate_co >= SCOAP_INFINITY && node.kind().is_logic() {
                // Still propagate: fanins may observe through other
                // fanouts; nothing to add from this gate.
            }
            for (pin, &f) in node.fanin().iter().enumerate() {
                let through = match node.kind() {
                    GateKind::Input | GateKind::Const0 | GateKind::Const1 => continue,
                    GateKind::Dff => continue,
                    GateKind::Buf | GateKind::Not => sat_add(gate_co, 1),
                    GateKind::And | GateKind::Nand => {
                        let side: u32 = node
                            .fanin()
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != pin)
                            .fold(0u32, |acc, (_, g)| sat_add(acc, cc1[g.index()]));
                        sat_add(sat_add(gate_co, side), 1)
                    }
                    GateKind::Or | GateKind::Nor => {
                        let side: u32 = node
                            .fanin()
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != pin)
                            .fold(0u32, |acc, (_, g)| sat_add(acc, cc0[g.index()]));
                        sat_add(sat_add(gate_co, side), 1)
                    }
                    GateKind::Xor | GateKind::Xnor => {
                        let side: u32 = node
                            .fanin()
                            .iter()
                            .enumerate()
                            .filter(|&(j, _)| j != pin)
                            .fold(0u32, |acc, (_, g)| {
                                sat_add(acc, cc0[g.index()].min(cc1[g.index()]))
                            });
                        sat_add(sat_add(gate_co, side), 1)
                    }
                };
                let slot = &mut co[f.index()];
                *slot = (*slot).min(through);
            }
        }

        Ok(Scoap { cc0, cc1, co })
    }

    /// 0-controllability of `id` (effort to set it to 0).
    #[must_use]
    pub fn cc0(&self, id: NodeId) -> u32 {
        self.cc0[id.index()]
    }

    /// 1-controllability of `id`.
    #[must_use]
    pub fn cc1(&self, id: NodeId) -> u32 {
        self.cc1[id.index()]
    }

    /// Observability of `id` (effort to propagate its value to an
    /// output or flip-flop; 0 = directly observed).
    #[must_use]
    pub fn co(&self, id: NodeId) -> u32 {
        self.co[id.index()]
    }

    /// Goldstein's combined testability of a stuck-at fault at `id`:
    /// `CC + CO` using the harder-to-set value.
    #[must_use]
    pub fn testability(&self, id: NodeId) -> u32 {
        sat_add(self.cc0(id).max(self.cc1(id)), self.co(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::parse::parse_bench;

    #[test]
    fn controllability_of_and_chain() {
        // y = AND(a, b): CC1(y) = 1+1+1 = 3, CC0(y) = 1+1 = 2.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&c).unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(s.cc1(y), 3);
        assert_eq!(s.cc0(y), 2);
    }

    #[test]
    fn observability_through_and() {
        // y = AND(a, b), PO y: CO(y) = 0; CO(a) = 0 + CC1(b) + 1 = 2.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&c).unwrap();
        assert_eq!(s.co(c.find("y").unwrap()), 0);
        assert_eq!(s.co(c.find("a").unwrap()), 2);
    }

    #[test]
    fn inverter_swaps_controllability() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let s = Scoap::compute(&c).unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(s.cc0(y), 2);
        assert_eq!(s.cc1(y), 2);
        assert_eq!(s.co(c.find("a").unwrap()), 1);
    }

    #[test]
    fn xor_controllability() {
        // y = XOR(a, b): CC1 = min(1+1, 1+1) + 1 = 3; CC0 likewise 3.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&c).unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(s.cc0(y), 3);
        assert_eq!(s.cc1(y), 3);
        // CO(a) = 0 + min(CC0(b), CC1(b)) + 1 = 2.
        assert_eq!(s.co(c.find("a").unwrap()), 2);
    }

    #[test]
    fn constants() {
        let mut b = CircuitBuilder::new("k");
        let one = b.constant("one", true);
        let x = b.input("x");
        let g = b.gate("g", GateKind::And, &[one, x]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let s = Scoap::compute(&c).unwrap();
        assert_eq!(s.cc1(one), 0);
        assert_eq!(s.cc0(one), SCOAP_INFINITY);
        // g is 1 iff x is 1 (one is free): CC1(g) = 0 + 1 + 1.
        assert_eq!(s.cc1(g), 2);
    }

    #[test]
    fn dff_d_pin_is_observed() {
        let c = parse_bench(
            "INPUT(a)\nOUTPUT(z)\nq = DFF(d)\nd = NOT(a)\nz = NOT(q)\n",
            "s",
        )
        .unwrap();
        let s = Scoap::compute(&c).unwrap();
        // d feeds the flip-flop: directly observed.
        assert_eq!(s.co(c.find("d").unwrap()), 0);
        // q is a pseudo-input with unit controllabilities.
        let q = c.find("q").unwrap();
        assert_eq!(s.cc0(q), 1);
        assert_eq!(s.cc1(q), 1);
        // a observes through the NOT into the D pin: CO = 0 + 1 = 1.
        assert_eq!(s.co(c.find("a").unwrap()), 1);
    }

    #[test]
    fn unobservable_saturates() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "dead").unwrap();
        let s = Scoap::compute(&c).unwrap();
        assert_eq!(s.co(c.find("u").unwrap()), SCOAP_INFINITY);
        assert!(s.testability(c.find("u").unwrap()) >= SCOAP_INFINITY);
    }

    #[test]
    fn observability_takes_cheapest_fanout_branch() {
        // a drives both a deep path and a direct output.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(z)\nu = AND(a, b)\ny = NOT(u)\nz = BUF(a)\n",
            "t",
        )
        .unwrap();
        let s = Scoap::compute(&c).unwrap();
        // Through z: CO = 0 + 1 = 1 (cheaper than through u/y).
        assert_eq!(s.co(c.find("a").unwrap()), 1);
    }

    #[test]
    fn testability_combines() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let s = Scoap::compute(&c).unwrap();
        let a = c.find("a").unwrap();
        // max(CC0, CC1) = 1; CO = 2 -> 3.
        assert_eq!(s.testability(a), 3);
    }
}
