//! Precomputed per-site cone plans — the compiled form of the paper's
//! "path construction" step — in a **suffix-shared arena**.
//!
//! The per-site EPP pass needs, for every error site: the DFF-clipped
//! fanout cone in topological order, each cone member's gate kind, and
//! each member fanin classified as **on-path** (it carries a four-value
//! tuple, addressed by its cone-local position) or **off-path** (it is
//! described by its signal probability, addressed by node id). The
//! legacy sweep rediscovered all of this per site per sweep; the flat
//! arena of earlier revisions precomputed it once per circuit, but
//! stored every site's full cone — and in gate-level netlists most of
//! those members are duplicated suffixes: every node on a
//! single-fanout chain has a cone equal to *its path to the next
//! multi-fanout (or fanout-free) node* plus **that node's** cone.
//!
//! # The suffix-shared representation
//!
//! Classify every node by its DFF-clipped combinational fanout count:
//!
//! - **anchor** — 0 or ≥ 2 successors. Its cone is materialized once in
//!   the shared **tail arena** as a slice of ascending topological
//!   *positions* — and nothing else. A tail stores no per-member kinds
//!   or fanin refs: those live in circuit-sized **per-position tables**
//!   (`pos_kind`, `pos_fanin_off`/`pos_fanins`) shared by every tail,
//!   so the builder's phase-2 output is four bytes per stored member.
//! - **chain node** — exactly 1 successor. Its cone is *not* stored:
//!   it is the path `self → next → … → anchor` followed by the
//!   anchor's shared tail. Per node we store only O(1) scalars: the
//!   next chain hop, the tail id, the path length, and suffix
//!   pin/observe counts for O(1) `cost()`/`observe_len()`.
//!
//! Chain edges form in-trees toward anchors, so many sites share one
//! tail entry — the stored member count drops by the chain-sharing
//! factor, and the per-member footprint drops to one `u32`, which
//! together is what broke the old builder's store-bandwidth wall.
//!
//! On-path/off-path fanin classification is *not* precomputed per tail
//! member. Each `pos_fanins` entry carries the fanin's topological
//! position plus its packed **off-path** reference; the sweep kernel
//! decides on-path membership at evaluation time with an epoch-stamped
//! position scratch: as it evaluates a cone it stamps each member's
//! position with the member's cone-local index, and a fanin whose
//! position carries the current epoch's stamp is on-path at the
//! stamped index. Three facts make this exact (proptest-enforced
//! against the per-site-DFS [`FlatConePlans`] oracle in
//! `tests/plan_builder.rs`):
//!
//! 1. A path member's only possible on-path fanin is its path
//!    predecessor (a chain node has exactly one combinational
//!    successor, so any other cone member reading it would make it an
//!    anchor) — the kernel resolves path fanins by comparing the pin
//!    against the previously walked node, and no tail member can read
//!    a path chain node for the same reason.
//! 2. Every fanin sits at a strictly lower topological position than
//!    its consumer and cone members are evaluated in ascending
//!    position order, so stamping members as they are written covers
//!    every on-path pin before it is read.
//! 3. Cone order is path positions ascending followed by the anchor's
//!    cone (all at strictly greater topological positions), which is
//!    exactly the flat arena's position-sorted member order; observe
//!    indices are unique per site, so merging the sorted path observes
//!    with the tail's observes preserves the reference emission order.
//!
//! # How the plans are built
//!
//! Phase 1 walks positions reverse-topologically and merges cones
//! **only for anchors** — merge inputs are virtual two-segment
//! sequences (a lazily walked chain path plus an already-built tail
//! slice), so the dominant single-successor `memcpy` of the old
//! builder disappears entirely, and the merged position arena is
//! adopted as the tail arena zero-copy. Phase 2 only records tail
//! bounds, per-tail pin totals, and sorted observe refs; the
//! per-position kind/fanin tables are a single linear pass over the
//! circuit. The member budget is enforced in the sequential phase 1
//! and counts **stored** (deduplicated) members: one entry per chain
//! node plus the shared tail arena — the number that reflects actual
//! memory.
//!
//! The original per-site-DFS builder is retained as
//! [`FlatConePlans`] — the semantic definition the suffix-shared
//! builder is checked against bit for bit, and the baseline the sweep
//! benchmark reports `plan_build_ms` against.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::artifacts::TopoArtifacts;
use crate::cancel::{CancelCause, CancelToken};
use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// Bit marking a fanin reference as off-path (node index) rather than
/// on-path (cone-local index).
const OFF_PATH_BIT: u32 = 1 << 31;

/// Sentinel for "no next chain hop" (the node is an anchor).
pub(crate) const NO_NEXT: u32 = u32::MAX;

/// One decoded fanin reference of a cone member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaninRef {
    /// The fanin is inside the cone: its value is the four-value tuple
    /// at this cone-local position.
    OnPath(usize),
    /// The fanin is outside the cone: its value is the signal
    /// probability of this node (by [`NodeId::index`]).
    OffPath(usize),
}

impl FaninRef {
    /// Decodes a packed reference.
    #[inline]
    #[must_use]
    pub fn decode(raw: u32) -> Self {
        if raw & OFF_PATH_BIT == 0 {
            FaninRef::OnPath(raw as usize)
        } else {
            FaninRef::OffPath((raw & !OFF_PATH_BIT) as usize)
        }
    }

    fn encode_on_path(local: u32) -> u32 {
        debug_assert_eq!(local & OFF_PATH_BIT, 0, "cone larger than 2^31");
        local
    }

    fn encode_off_path(node: NodeId) -> u32 {
        let idx = u32::try_from(node.index()).expect("node index fits u32");
        debug_assert_eq!(idx & OFF_PATH_BIT, 0, "circuit larger than 2^31 nodes");
        idx | OFF_PATH_BIT
    }
}

/// One site's plan fully decoded into owned, self-contained form — the
/// comparison currency between the suffix-shared [`ConePlans`] and the
/// flat [`FlatConePlans`] oracle (both [`materialize`](ConePlan::materialize)
/// to this), and a convenient debugging view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SitePlan {
    /// The error site.
    pub site: NodeId,
    /// Cone members in topological order; `members[0]` is the site.
    pub members: Vec<NodeId>,
    /// Gate kind per member.
    pub kinds: Vec<GateKind>,
    /// Decoded fanin references per member, in fanin declaration order
    /// (duplicates preserved); empty for member 0.
    pub fanin_refs: Vec<Vec<FaninRef>>,
    /// `(observe index, cone-local position)` pairs ordered by observe
    /// index.
    pub observe_refs: Vec<(u32, u32)>,
}

/// The compiled cone plans of every site of one circuit in the
/// suffix-shared arena (see the [module docs](self)).
///
/// Per-node tables hold each chain node's O(1) entry (next hop, tail
/// id, path length, suffix counts); the tail table stores each
/// anchor's cone exactly once. A site's logical cone is its chain path
/// followed by its anchor's shared tail — reconstructed on the fly by
/// the sweep kernel and by [`ConePlan::materialize`].
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, FaninRef, TopoArtifacts};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let topo = TopoArtifacts::compute(&c)?;
/// let plans = topo.cone_plans(&c).expect("tiny circuit fits the plan budget");
/// let a = c.find("a").unwrap();
/// let plan = plans.plan(a);
/// assert_eq!(plan.len(), 2); // a itself plus the AND gate
/// // The AND gate reads one on-path fanin (a, cone-local 0) and one
/// // off-path fanin (b, by node id).
/// let decoded = plan.materialize(&c);
/// let b = c.find("b").unwrap();
/// assert!(decoded.fanin_refs[1].contains(&FaninRef::OnPath(0)));
/// assert!(decoded.fanin_refs[1].contains(&FaninRef::OffPath(b.index())));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConePlans {
    // ---- per-node tables, indexed by `NodeId::index` (length n) ----
    /// Next hop on the chain path (node index); [`NO_NEXT`] for
    /// anchors.
    pub(crate) chain_next: Vec<u32>,
    /// Tail-table id of the node's anchor (an anchor's own id).
    pub(crate) tail_of: Vec<u32>,
    /// Number of path members before the shared tail (0 for anchors).
    pub(crate) prefix_len: Vec<u32>,
    /// Fanin pins of the path members strictly after this node, the
    /// anchor included — with the tail's interior pin count this gives
    /// O(1) [`cost`](ConePlan::cost).
    pub(crate) path_pins_after: Vec<u32>,
    /// Observe points on the path from this node (inclusive) to the
    /// anchor (exclusive) — O(1) [`observe_len`](ConePlan::observe_len).
    pub(crate) path_obs_from: Vec<u32>,
    /// CSR offsets per node into `node_obs`. Length `n + 1`.
    pub(crate) node_obs_off: Vec<u32>,
    /// Observe-point indices of each node's signal (total = number of
    /// observe points — one signal each).
    pub(crate) node_obs: Vec<u32>,
    // ---- per-position tables, indexed by topological position
    //      (length n; tiny, cache-resident) ----
    /// Node id at each position (the topological order).
    pub(crate) pos_node: Vec<NodeId>,
    /// Gate kind at each position.
    pub(crate) pos_kind: Vec<GateKind>,
    /// CSR offsets per position into `pos_fanins`. Length `n + 1`.
    pub(crate) pos_fanin_off: Vec<u32>,
    /// Fanin pins in declaration order (duplicates preserved) as
    /// `(fanin topological position, packed off-path ref)` — the
    /// off-path encoding of a pin is cone-independent, so it is
    /// computed exactly once here.
    pub(crate) pos_fanins: Vec<(u32, u32)>,
    // ---- shared tail table, one entry per anchor, in topological
    //      position order of the anchors ----
    /// Per tail: start of the cone's slice in `tail_positions`.
    pub(crate) tail_start: Vec<u32>,
    /// Per tail: end of that slice.
    pub(crate) tail_end: Vec<u32>,
    /// Per tail: total fanin pin count of the members after the anchor
    /// — O(1) [`cost`](ConePlan::cost).
    pub(crate) tail_pins: Vec<u32>,
    /// Every anchor's cone as ascending topological positions (anchor
    /// first) — the phase-1 merge arena, adopted as-is. A member's
    /// kind and pins resolve through the per-position tables; on-path
    /// classification happens in the consumer against its walked cone
    /// (see the [module docs](self)).
    pub(crate) tail_positions: Vec<u32>,
    /// Per tail: range into `tail_obs`. Length `T + 1`.
    pub(crate) tail_obs_off: Vec<u32>,
    /// `(observe index, tail-local position)` pairs ordered by observe
    /// index.
    pub(crate) tail_obs: Vec<(u32, u32)>,
    // ---- global ----
    /// Largest *logical* cone size over all sites (workspace sizing).
    pub(crate) max_cone_len: usize,
    /// Number of chain nodes (each stores one deduplicated member).
    pub(crate) chain_count: usize,
    /// Sum of logical cone sizes over all sites — what the flat arena
    /// used to store.
    pub(crate) logical_members: u64,
    /// Sum of per-site reachable observe points — the exact arena size
    /// a whole-circuit sweep's per-point results need.
    pub(crate) logical_observe_refs: u64,
}

impl ConePlans {
    /// Default budget for the **stored** (deduplicated) member count of
    /// one circuit's plan arena: one entry per chain node plus the
    /// shared tail arena. Stored members are Θ(n²) in the worst case
    /// (densely reconvergent anchor-heavy circuits), so consumers must
    /// be prepared for [`build_bounded`](Self::build_bounded) to
    /// decline and fall back to per-site traversal.
    ///
    /// Earlier revisions budgeted *logical* members (sum of cone
    /// sizes); chain-dominated circuits whose logical total blew that
    /// budget now fit comfortably, because their suffixes are stored
    /// once.
    pub const DEFAULT_MEMBER_BUDGET: usize = 1 << 26;

    /// How many contiguous anchor ranges the parallel packing cuts per
    /// worker (oversubscription + an atomic claim cursor balance the
    /// unknown cone sizes).
    const CHUNKS_PER_THREAD: usize = 8;

    /// Builds the suffix-shared plans for every node of `circuit`.
    /// `topo` supplies the positions and the DFF-clipped fanout
    /// adjacency. The result is identical whatever the thread count,
    /// and decodes site-for-site identically to [`FlatConePlans`].
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build(circuit: &Circuit, topo: &TopoArtifacts) -> Self {
        Self::build_bounded(circuit, topo, usize::MAX).expect("unbounded build cannot decline")
    }

    /// Like [`build`](Self::build), but returns `None` as soon as the
    /// arena would exceed `max_members` **stored** members (chain
    /// entries plus the shared tail arena) — the guard that keeps
    /// pathological Θ(n²) circuits from exhausting memory (the
    /// per-site reference path handles them in O(n) scratch instead).
    /// Uses every available core on large circuits.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build_bounded(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
    ) -> Option<Self> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_bounded_with_threads(circuit, topo, max_members, threads)
    }

    /// [`build_bounded`](Self::build_bounded) with an explicit worker
    /// count.
    ///
    /// Phase 1 (sequential, reverse-topological) merges cones for
    /// anchors only and enforces the stored-member budget — the
    /// decision is deterministic and thread-count independent by
    /// construction. Phase 2 packs the tail table over contiguous
    /// anchor ranges claimed through an atomic cursor and stitched
    /// back in anchor order, so the arena is bit-identical to a
    /// single-threaded build.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or `topo` was not computed from
    /// `circuit`.
    #[must_use]
    pub fn build_bounded_with_threads(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
        threads: usize,
    ) -> Option<Self> {
        match Self::build_bounded_cancellable(circuit, topo, max_members, threads, None) {
            Ok(plans) => plans,
            Err(_) => unreachable!("a build without a token cannot be cancelled"),
        }
    }

    /// How many phase-1 anchor merges / phase-2 tail packings run
    /// between cooperative cancellation checkpoints. Small enough that
    /// a trip lands within a few milliseconds even on the largest
    /// benches, large enough that the poll is free.
    pub(crate) const CANCEL_CHECK_EVERY: usize = 4096;

    /// [`build_bounded_with_threads`](Self::build_bounded_with_threads)
    /// with a cooperative [`CancelToken`]: the phase-1
    /// reverse-topological merge and the phase-2 tail packing poll the
    /// token every few thousand anchors and abort mid-compile when it
    /// trips, dropping all partial state. `Ok(None)` still means the
    /// stored-member budget declined the build (the two outcomes stay
    /// distinguishable: a declined build falls back to per-site
    /// traversal, a cancelled one aborts the request).
    ///
    /// # Errors
    ///
    /// The [`CancelCause`] when `cancel` trips before the build
    /// finishes.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or `topo` was not computed from
    /// `circuit`.
    pub fn build_bounded_cancellable(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
        threads: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<Self>, CancelCause> {
        assert!(threads > 0, "at least one thread");
        let n = circuit.len();
        assert_eq!(topo.len(), n, "artifacts must cover every node");

        let Some(tc) = TailCones::build(topo, max_members, cancel)? else {
            return Ok(None);
        };
        let order = topo.order();

        // Observe points indexed by observed signal, in observe order.
        let observe = topo.observe_points();
        let mut obs_of_signal: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, p) in observe.iter().enumerate() {
            obs_of_signal[p.signal().index()].push(u32::try_from(i).expect("observe fits u32"));
        }

        // Tail ids: anchors in ascending topological position order.
        let mut tail_id_of_pos = vec![0u32; n];
        let mut anchors: Vec<u32> = Vec::new();
        for (p, id) in tail_id_of_pos.iter_mut().enumerate() {
            if tc.next_pos[p] == NO_NEXT {
                *id = u32::try_from(anchors.len()).expect("anchors fit u32");
                anchors.push(u32::try_from(p).expect("node count fits u32"));
            }
        }

        // Per-node chain tables, filled back-to-front so each chain
        // node reads its successor's already-computed suffix scalars.
        let mut chain_next = vec![NO_NEXT; n];
        let mut tail_of = vec![0u32; n];
        let mut prefix_len = vec![0u32; n];
        let mut path_pins_after = vec![0u32; n];
        let mut path_obs_from = vec![0u32; n];
        for p in (0..n).rev() {
            let v = order[p].index();
            if tc.next_pos[p] == NO_NEXT {
                tail_of[v] = tail_id_of_pos[p];
            } else {
                let s = order[tc.next_pos[p] as usize];
                let si = s.index();
                chain_next[v] = u32::try_from(si).expect("node index fits u32");
                tail_of[v] = tail_of[si];
                prefix_len[v] = prefix_len[si] + 1;
                path_pins_after[v] = u32::try_from(circuit.node(s).fanin().len())
                    .expect("pins fit u32")
                    + path_pins_after[si];
                path_obs_from[v] =
                    u32::try_from(obs_of_signal[v].len()).expect("obs fit u32") + path_obs_from[si];
            }
        }

        // Per-node observe CSR (tiny: one entry per observe point).
        let mut node_obs_off = Vec::with_capacity(n + 1);
        let mut node_obs = Vec::with_capacity(observe.len());
        node_obs_off.push(0);
        for obs in &obs_of_signal {
            node_obs.extend_from_slice(obs);
            node_obs_off.push(u32::try_from(node_obs.len()).expect("observe refs fit u32"));
        }

        let tables = PackTables::build(circuit, topo, &obs_of_signal);

        // Phase 2: per-tail scalars only — slice bounds, interior pin
        // totals, and the sorted observe refs. Everything per-member
        // (kind, pins, on-path classification) resolves through the
        // per-position tables at consumption time, so nothing of the
        // old per-tail member/kind/ref copies is materialized at all.
        let t_count = anchors.len();
        let mut tail_start = Vec::with_capacity(t_count);
        let mut tail_end = Vec::with_capacity(t_count);
        let mut tail_pins = Vec::with_capacity(t_count);
        let mut tail_obs_off = Vec::with_capacity(t_count + 1);
        let mut tail_obs: Vec<(u32, u32)> = Vec::new();
        let mut site_obs: Vec<(u32, u32)> = Vec::new();
        tail_obs_off.push(0u32);
        for (packed, &p) in anchors.iter().enumerate() {
            if packed % Self::CANCEL_CHECK_EVERY == 0 {
                if let Some(token) = cancel {
                    token.check()?;
                }
            }
            let p = p as usize;
            tail_start.push(tc.start[p]);
            tail_end.push(tc.end[p]);
            let cone = tc.cone(p);
            let mut pins = 0u32;
            site_obs.clear();
            for (k, &q) in cone.iter().enumerate() {
                let q = q as usize;
                if k > 0 {
                    pins += tables.fanin_off[q + 1] - tables.fanin_off[q];
                }
                for &obs in tables.observes_of(q) {
                    site_obs.push((obs, u32::try_from(k).expect("cone fits u32")));
                }
            }
            site_obs.sort_unstable();
            tail_obs.extend_from_slice(&site_obs);
            tail_pins.push(pins);
            tail_obs_off.push(u32::try_from(tail_obs.len()).expect("observe refs fit u32"));
        }

        let mut plans = ConePlans {
            chain_next,
            tail_of,
            prefix_len,
            path_pins_after,
            path_obs_from,
            node_obs_off,
            node_obs,
            pos_node: order.to_vec(),
            pos_kind: tables.kind_by_pos,
            pos_fanin_off: tables.fanin_off,
            pos_fanins: tables.fanins,
            tail_start,
            tail_end,
            tail_pins,
            tail_positions: tc.arena,
            tail_obs_off,
            tail_obs,
            max_cone_len: 0,
            chain_count: tc.chain_count,
            logical_members: 0,
            logical_observe_refs: 0,
        };
        for v in 0..n {
            let t = plans.tail_of[v] as usize;
            let tail_len = (plans.tail_end[t] - plans.tail_start[t]) as usize;
            let len = plans.prefix_len[v] as usize + tail_len;
            let obs = plans.path_obs_from[v] as u64
                + u64::from(plans.tail_obs_off[t + 1] - plans.tail_obs_off[t]);
            plans.max_cone_len = plans.max_cone_len.max(len);
            plans.logical_members += len as u64;
            plans.logical_observe_refs += obs;
        }
        Ok(Some(plans))
    }

    /// Number of sites covered (one plan per circuit node).
    #[must_use]
    pub fn len(&self) -> usize {
        self.chain_next.len()
    }

    /// `true` for an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest logical cone size over all sites — the capacity a
    /// cone-local value plane needs.
    #[must_use]
    pub fn max_cone_len(&self) -> usize {
        self.max_cone_len
    }

    /// **Stored** (deduplicated) members: one entry per chain node
    /// plus the shared tail arena — the quantity the member budget
    /// bounds, proportional to the arena's actual memory.
    #[must_use]
    pub fn stored_members(&self) -> usize {
        self.chain_count + self.tail_positions.len()
    }

    /// **Logical** members: the sum of per-site cone sizes — what the
    /// flat arena used to store. `logical_members / stored_members` is
    /// the suffix-sharing factor.
    #[must_use]
    pub fn logical_members(&self) -> u64 {
        self.logical_members
    }

    /// Number of shared tail entries (anchors).
    #[must_use]
    pub fn tail_count(&self) -> usize {
        self.tail_start.len()
    }

    /// Node id at topological position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[inline]
    #[must_use]
    pub fn node_at(&self, pos: u32) -> NodeId {
        self.pos_node[pos as usize]
    }

    /// Gate kind at topological position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[inline]
    #[must_use]
    pub fn kind_at(&self, pos: u32) -> GateKind {
        self.pos_kind[pos as usize]
    }

    /// Fanin pins of the node at position `pos`, in declaration order
    /// (duplicates preserved), as `(fanin position, packed off-path
    /// ref)` pairs. The packed ref decodes via [`FaninRef::decode`] to
    /// the pin's [`FaninRef::OffPath`] form; whether the pin is
    /// actually on-path for a given cone is decided by the consumer
    /// (membership of the fanin position in the cone walked so far).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range.
    #[inline]
    #[must_use]
    pub fn fanins_at(&self, pos: u32) -> &[(u32, u32)] {
        let pos = pos as usize;
        &self.pos_fanins[self.pos_fanin_off[pos] as usize..self.pos_fanin_off[pos + 1] as usize]
    }

    /// Total reachable observe points over all sites — the exact arena
    /// size a whole-circuit sweep's per-point results need.
    #[must_use]
    pub fn total_observe_refs(&self) -> u64 {
        self.logical_observe_refs
    }

    /// Heap bytes of the arena (every table, exact element sizes) —
    /// the `arena_bytes` the sweep benchmark reports.
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        fn bytes<T>(v: &[T]) -> usize {
            std::mem::size_of_val(v)
        }
        bytes(&self.chain_next)
            + bytes(&self.tail_of)
            + bytes(&self.prefix_len)
            + bytes(&self.path_pins_after)
            + bytes(&self.path_obs_from)
            + bytes(&self.node_obs_off)
            + bytes(&self.node_obs)
            + bytes(&self.pos_node)
            + bytes(&self.pos_kind)
            + bytes(&self.pos_fanin_off)
            + bytes(&self.pos_fanins)
            + bytes(&self.tail_start)
            + bytes(&self.tail_end)
            + bytes(&self.tail_pins)
            + bytes(&self.tail_positions)
            + bytes(&self.tail_obs_off)
            + bytes(&self.tail_obs)
    }

    /// The plan of one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn plan(&self, site: NodeId) -> ConePlan<'_> {
        assert!(site.index() < self.len(), "site {site} out of range");
        ConePlan {
            plans: self,
            site: site.index(),
        }
    }
}

/// A borrowed view of one site's plan inside the suffix-shared
/// [`ConePlans`]: the chain path (walked via
/// [`next_of`](Self::next_of)) followed by the shared
/// [`tail`](Self::tail). All size/cost accessors are O(1).
#[derive(Debug, Clone, Copy)]
pub struct ConePlan<'a> {
    plans: &'a ConePlans,
    site: usize,
}

impl<'a> ConePlan<'a> {
    /// The error site this plan was compiled for.
    #[must_use]
    pub fn site(&self) -> NodeId {
        NodeId::from_index(self.site)
    }

    /// Number of path members before the shared tail (0 when the site
    /// is an anchor). The anchor sits at cone-local position
    /// `prefix_len()`; tail member `k` sits at `prefix_len() + k`.
    #[must_use]
    pub fn prefix_len(&self) -> usize {
        self.plans.prefix_len[self.site] as usize
    }

    /// The shared tail of this plan (the site's anchor's cone).
    #[must_use]
    pub fn tail(&self) -> TailView<'a> {
        TailView {
            plans: self.plans,
            tail: self.plans.tail_of[self.site] as usize,
        }
    }

    /// Logical cone size (site included); at least 1. O(1).
    #[must_use]
    pub fn len(&self) -> usize {
        self.prefix_len() + self.tail().len()
    }

    /// Always `false`: a cone contains at least its site.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of reachable observe points. O(1).
    #[must_use]
    pub fn observe_len(&self) -> usize {
        self.plans.path_obs_from[self.site] as usize + self.tail().observe_refs().len()
    }

    /// `true` if no observe point is reachable from the site.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.observe_len() == 0
    }

    /// Evaluation cost indicator: logical members plus fanin
    /// references — proportional to the work one EPP pass over this
    /// cone performs. O(1).
    #[must_use]
    pub fn cost(&self) -> usize {
        let t = self.tail().tail;
        self.len()
            + self.plans.path_pins_after[self.site] as usize
            + self.plans.tail_pins[t] as usize
    }

    /// `true` iff any cone member is marked. `marked` is indexed by
    /// node id and must cover every node. The chain path is walked via
    /// [`next_of`](Self::next_of); tail members resolve through the
    /// suffix-shared position tables ([`ConePlans::node_at`]). Early
    /// exit on the first hit, so a miss costs one full cone scan and a
    /// hit typically far less.
    ///
    /// # Panics
    ///
    /// Panics if `marked` is shorter than the circuit.
    #[must_use]
    pub fn intersects(&self, marked: &[bool]) -> bool {
        let mut cur = self.site();
        for _ in 0..self.prefix_len() {
            if marked[cur.index()] {
                return true;
            }
            cur = self.next_of(cur);
        }
        self.tail()
            .positions()
            .iter()
            .any(|&q| marked[self.plans.node_at(q).index()])
    }

    /// The next hop on the chain path after `node`. Valid for the site
    /// and every path member before the anchor; the hop after the last
    /// chain node is the anchor itself.
    ///
    /// # Panics
    ///
    /// Panics (debug) if `node` is an anchor.
    #[inline]
    #[must_use]
    pub fn next_of(&self, node: NodeId) -> NodeId {
        let next = self.plans.chain_next[node.index()];
        debug_assert_ne!(next, NO_NEXT, "next_of called on an anchor");
        NodeId::from_index(next as usize)
    }

    /// Observe-point indices of `node`'s signal (the artifacts'
    /// observe order).
    #[inline]
    #[must_use]
    pub fn observes_of(&self, node: NodeId) -> &'a [u32] {
        let v = node.index();
        &self.plans.node_obs
            [self.plans.node_obs_off[v] as usize..self.plans.node_obs_off[v + 1] as usize]
    }

    /// Cone members in topological order; the first is the site.
    #[must_use]
    pub fn members(&self) -> PlanMembers<'a> {
        PlanMembers {
            plans: self.plans,
            next_node: u32::try_from(self.site).expect("node index fits u32"),
            path_left: self.plans.prefix_len[self.site],
            tail: self.tail().positions().iter(),
        }
    }

    /// Decodes the plan into owned, self-contained [`SitePlan`] form —
    /// resolving path fanins by predecessor comparison and rebasing
    /// tail-local references, exactly as the sweep kernel does. This
    /// is the representation `tests/plan_builder.rs` compares against
    /// the flat oracle.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not the circuit the plans were built
    /// from.
    #[must_use]
    pub fn materialize(&self, circuit: &Circuit) -> SitePlan {
        let l = self.prefix_len();
        let tail = self.tail();
        let len = l + tail.len();
        let mut members = Vec::with_capacity(len);
        let mut kinds = Vec::with_capacity(len);
        let mut fanin_refs: Vec<Vec<FaninRef>> = Vec::with_capacity(len);

        // Path members 0..l: the site carries no refs; each subsequent
        // path member's only possible on-path pin is its predecessor.
        // When `l == 0` the site *is* the anchor — its member/kind rows
        // come from the tail below, only the empty ref row is its own.
        let site = self.site();
        if l > 0 {
            members.push(site);
            kinds.push(circuit.node(site).kind());
        }
        fanin_refs.push(Vec::new());
        let mut prev = site;
        for pos in 1..=l {
            let id = self.next_of(prev);
            let node = circuit.node(id);
            if pos < l {
                members.push(id);
                kinds.push(node.kind());
            }
            // Anchor (pos == l) members/kinds come from the tail below;
            // its refs are still resolved here, predecessor-compared.
            let refs: Vec<FaninRef> = node
                .fanin()
                .iter()
                .map(|&pin| {
                    if pin == prev {
                        FaninRef::OnPath(pos - 1)
                    } else {
                        FaninRef::OffPath(pin.index())
                    }
                })
                .collect();
            fanin_refs.push(refs);
            prev = id;
        }

        // Tail members at cone positions l..len. A tail pin is on-path
        // iff its position is in the tail itself (a path node's single
        // successor is the next path node, so no tail member can read
        // one); the cone-local index of tail member k is l + k.
        let positions = tail.positions();
        members.extend(positions.iter().map(|&q| self.plans.node_at(q)));
        kinds.extend(positions.iter().map(|&q| self.plans.kind_at(q)));
        // ser-lint: allow(no-hash-iter) — position→local-index lookup;
        // only `get` is called on it, and the fanin_refs built from it
        // follow the deterministic `positions` order, never map order.
        let local_of: std::collections::HashMap<u32, usize> = positions
            .iter()
            .enumerate()
            .map(|(k, &q)| (q, l + k))
            .collect();
        for &q in &positions[1..] {
            fanin_refs.push(
                self.plans
                    .fanins_at(q)
                    .iter()
                    .map(|&(pf, off)| match local_of.get(&pf) {
                        Some(&loc) => FaninRef::OnPath(loc),
                        None => FaninRef::decode(off),
                    })
                    .collect(),
            );
        }
        debug_assert_eq!(members.len(), len);
        debug_assert_eq!(fanin_refs.len(), len);

        // Observe refs: sorted path observes merged with the tail's
        // (already sorted) observes, rebased by +l. Observe indices
        // are unique per site, so the merge is a strict interleave.
        let mut path_obs: Vec<(u32, u32)> = Vec::new();
        if l > 0 {
            let mut cur = site;
            for pos in 0..l {
                for &obs in self.observes_of(cur) {
                    path_obs.push((obs, u32::try_from(pos).expect("cone fits u32")));
                }
                if pos + 1 < l {
                    cur = self.next_of(cur);
                }
            }
        }
        path_obs.sort_unstable();
        let tobs = tail.observe_refs();
        let mut observe_refs = Vec::with_capacity(path_obs.len() + tobs.len());
        let (mut i, mut j) = (0, 0);
        let l32 = u32::try_from(l).expect("cone fits u32");
        while i < path_obs.len() || j < tobs.len() {
            let take_path = j >= tobs.len() || (i < path_obs.len() && path_obs[i].0 < tobs[j].0);
            if take_path {
                observe_refs.push(path_obs[i]);
                i += 1;
            } else {
                observe_refs.push((tobs[j].0, tobs[j].1 + l32));
                j += 1;
            }
        }

        SitePlan {
            site,
            members,
            kinds,
            fanin_refs,
            observe_refs,
        }
    }
}

/// Iterator over a plan's logical members: the chain path, then the
/// shared tail slice.
#[derive(Debug, Clone)]
pub struct PlanMembers<'a> {
    plans: &'a ConePlans,
    next_node: u32,
    path_left: u32,
    tail: std::slice::Iter<'a, u32>,
}

impl Iterator for PlanMembers<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        if self.path_left > 0 {
            let id = self.next_node as usize;
            self.next_node = self.plans.chain_next[id];
            self.path_left -= 1;
            Some(NodeId::from_index(id))
        } else {
            self.tail.next().map(|&q| self.plans.node_at(q))
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.path_left as usize + self.tail.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for PlanMembers<'_> {}

/// A borrowed view of one shared tail entry (an anchor's cone).
#[derive(Debug, Clone, Copy)]
pub struct TailView<'a> {
    plans: &'a ConePlans,
    tail: usize,
}

impl<'a> TailView<'a> {
    fn member_range(&self) -> Range<usize> {
        self.plans.tail_start[self.tail] as usize..self.plans.tail_end[self.tail] as usize
    }

    /// Number of tail members (anchor included); at least 1.
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_range().len()
    }

    /// Always `false`: a tail contains at least its anchor.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Tail members as ascending topological positions; the first is
    /// the anchor. Resolve a member's node id, gate kind and fanin
    /// pins through [`ConePlans::node_at`], [`ConePlans::kind_at`] and
    /// [`ConePlans::fanins_at`]; a pin is on-path iff its position is
    /// in this slice (tail-local index = slice index, cone-local index
    /// = that plus the site's path length).
    #[must_use]
    pub fn positions(&self) -> &'a [u32] {
        &self.plans.tail_positions[self.member_range()]
    }

    /// Reachable observe points as `(observe index, tail-local
    /// position)` pairs, ordered by observe index.
    #[must_use]
    pub fn observe_refs(&self) -> &'a [(u32, u32)] {
        &self.plans.tail_obs[self.plans.tail_obs_off[self.tail] as usize
            ..self.plans.tail_obs_off[self.tail + 1] as usize]
    }
}

/// Per-topo-position lookup tables compiled once per build for the
/// tail packing pass — the flat-array form of everything the
/// per-member loop needs, so packing never chases a pointer into a
/// `Node`:
///
/// - the gate kind,
/// - each fanin pin as `(fanin topo position, pre-packed off-path
///   ref)` — the off-path encoding of a pin is site-independent, so it
///   is computed exactly once here,
/// - the observe-point indices of the position's signal.
struct PackTables {
    kind_by_pos: Vec<GateKind>,
    /// CSR offsets per position into `fanins`. Length `n + 1`.
    fanin_off: Vec<u32>,
    /// Fanin pins in declaration order, duplicates preserved.
    fanins: Vec<(u32, u32)>,
    /// CSR offsets per position into `observes`. Length `n + 1`.
    obs_off: Vec<u32>,
    /// Observe-point indices (the artifacts' observe order).
    observes: Vec<u32>,
}

impl PackTables {
    fn build(circuit: &Circuit, topo: &TopoArtifacts, obs_of_signal: &[Vec<u32>]) -> Self {
        let n = circuit.len();
        let mut tables = PackTables {
            kind_by_pos: Vec::with_capacity(n),
            fanin_off: Vec::with_capacity(n + 1),
            fanins: Vec::new(),
            obs_off: Vec::with_capacity(n + 1),
            observes: Vec::new(),
        };
        tables.fanin_off.push(0);
        tables.obs_off.push(0);
        for &id in topo.order() {
            let node = circuit.node(id);
            tables.kind_by_pos.push(node.kind());
            for &f in node.fanin() {
                tables
                    .fanins
                    .push((topo.position(f), FaninRef::encode_off_path(f)));
            }
            tables
                .fanin_off
                .push(u32::try_from(tables.fanins.len()).expect("edge count fits u32"));
            tables
                .observes
                .extend_from_slice(&obs_of_signal[id.index()]);
            tables
                .obs_off
                .push(u32::try_from(tables.observes.len()).expect("observe refs fit u32"));
        }
        tables
    }

    fn observes_of(&self, pos: usize) -> &[u32] {
        &self.observes[self.obs_off[pos] as usize..self.obs_off[pos + 1] as usize]
    }
}

/// Phase-1 output: the chain classification and every **anchor's**
/// cone as ascending topological positions in one flat arena.
///
/// Built back-to-front: when anchor position `p` is processed, every
/// combinational successor (all at positions `> p`) already has its
/// cone available — as an arena slice (anchor successor) or as a
/// virtual two-segment sequence (chain successor: its lazily walked
/// path plus its own anchor's arena slice). `p`'s cone is `[p]`
/// followed by the duplicate-free sorted merge of those sequences.
/// Chain positions get **no** arena entry — that is the suffix
/// sharing, and it removes the single-successor `memcpy` that made
/// the old flat builder store-bandwidth-bound.
struct TailCones {
    /// Per topo position: the single successor's position for chain
    /// nodes, [`NO_NEXT`] for anchors.
    next_pos: Vec<u32>,
    /// Per topo position (anchors only): start of the cone's arena
    /// slice.
    start: Vec<u32>,
    /// Per topo position (anchors only): end of that slice.
    end: Vec<u32>,
    /// All anchor cones, concatenated in build order.
    arena: Vec<u32>,
    /// Number of chain nodes (each counts as one stored member).
    chain_count: usize,
}

/// A merge cursor over one successor's (possibly virtual) cone:
/// first the chain path positions, then the anchor's arena slice.
#[derive(Clone, Copy)]
struct ConeCursor {
    /// Current path position, or [`NO_NEXT`] once in slice mode.
    pos: u32,
    /// Arena slice range (set on entering slice mode).
    idx: u32,
    end: u32,
}

impl ConeCursor {
    fn new(q: u32, next_pos: &[u32], start: &[u32], end: &[u32]) -> Self {
        if next_pos[q as usize] == NO_NEXT {
            ConeCursor {
                pos: NO_NEXT,
                idx: start[q as usize],
                end: end[q as usize],
            }
        } else {
            ConeCursor {
                pos: q,
                idx: 0,
                end: 0,
            }
        }
    }

    #[inline]
    fn peek(&self, arena: &[u32]) -> Option<u32> {
        if self.pos != NO_NEXT {
            Some(self.pos)
        } else if self.idx < self.end {
            Some(arena[self.idx as usize])
        } else {
            None
        }
    }

    #[inline]
    fn advance(&mut self, next_pos: &[u32], start: &[u32], end: &[u32]) {
        if self.pos != NO_NEXT {
            let np = self.pos as usize;
            let next = next_pos[np] as usize;
            debug_assert_ne!(next_pos[np], NO_NEXT);
            if next_pos[next] == NO_NEXT {
                // Reached the anchor: switch to its arena slice (which
                // starts with the anchor itself).
                self.pos = NO_NEXT;
                self.idx = start[next];
                self.end = end[next];
            } else {
                self.pos = next_pos[np];
            }
        } else {
            self.idx += 1;
        }
    }
}

impl TailCones {
    /// One anchor's cone as ascending topological positions (the
    /// anchor's own position first).
    fn cone(&self, pos: usize) -> &[u32] {
        debug_assert_eq!(self.next_pos[pos], NO_NEXT, "cone() wants an anchor");
        &self.arena[self.start[pos] as usize..self.end[pos] as usize]
    }

    /// Runs the reverse-topological anchor-only merge pass. Returns
    /// `Ok(None)` as soon as stored members (chain entries + the
    /// arena) exceed `max_members` — a sequential,
    /// scheduling-independent decision — and `Err` when the
    /// cancellation token trips at an anchor checkpoint.
    fn build(
        topo: &TopoArtifacts,
        max_members: usize,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<Self>, CancelCause> {
        let n = topo.len();
        let order = topo.order();
        let mut next_pos = vec![NO_NEXT; n];
        let mut chain_count = 0usize;
        for (p, np) in next_pos.iter_mut().enumerate() {
            let succs = topo.comb_fanout(order[p]);
            if succs.len() == 1 {
                *np = topo.position(succs[0]);
                chain_count += 1;
            }
        }
        if chain_count > max_members {
            return Ok(None);
        }

        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut arena: Vec<u32> = Vec::with_capacity(n - chain_count);
        // Cursor scratch for the rare ≥ 3-way merges; reused.
        let mut cursors: Vec<ConeCursor> = Vec::new();
        let mut merged = 0usize;
        for p in (0..n).rev() {
            if next_pos[p] != NO_NEXT {
                continue;
            }
            if merged.is_multiple_of(ConePlans::CANCEL_CHECK_EVERY) {
                if let Some(token) = cancel {
                    token.check()?;
                }
            }
            merged += 1;
            let cone_start = arena.len();
            arena.push(u32::try_from(p).expect("node count fits u32"));
            let succs = topo.comb_fanout(order[p]);
            // Anchors have 0 or ≥ 2 successors by definition, so the
            // merge is always a true multi-way dedup merge.
            match succs.len() {
                0 => {}
                2 => {
                    // Dominant shape: a tight two-pointer merge. Any
                    // chain-path prefix is drained element-wise first;
                    // once both cursors sit in their anchor slices the
                    // inner loop is branch-light array traversal.
                    // Merged output is pushed straight into the arena:
                    // cursors address it by index, so reallocation
                    // while reading earlier regions is sound.
                    let mut a = ConeCursor::new(topo.position(succs[0]), &next_pos, &start, &end);
                    let mut b = ConeCursor::new(topo.position(succs[1]), &next_pos, &start, &end);
                    while a.pos != NO_NEXT || b.pos != NO_NEXT {
                        let (Some(x), Some(y)) = (a.peek(&arena), b.peek(&arena)) else {
                            break;
                        };
                        arena.push(x.min(y));
                        if x <= y {
                            a.advance(&next_pos, &start, &end);
                        }
                        if y <= x {
                            b.advance(&next_pos, &start, &end);
                        }
                    }
                    if a.pos == NO_NEXT && b.pos == NO_NEXT {
                        let (mut i, ae) = (a.idx as usize, a.end as usize);
                        let (mut j, be) = (b.idx as usize, b.end as usize);
                        while i < ae && j < be {
                            let (x, y) = (arena[i], arena[j]);
                            arena.push(x.min(y));
                            i += usize::from(x <= y);
                            j += usize::from(y <= x);
                        }
                        a.idx = i as u32;
                        b.idx = j as u32;
                    }
                    // At most one cursor still holds elements; append
                    // its remainder (path part, then slice memcpy).
                    for mut c in [a, b] {
                        if c.peek(&arena).is_none() {
                            continue;
                        }
                        while c.pos != NO_NEXT {
                            arena.push(c.pos);
                            c.advance(&next_pos, &start, &end);
                        }
                        arena.extend_from_within(c.idx as usize..c.end as usize);
                    }
                }
                _ => {
                    cursors.clear();
                    cursors.extend(
                        succs
                            .iter()
                            .map(|&s| ConeCursor::new(topo.position(s), &next_pos, &start, &end)),
                    );
                    loop {
                        let mut min = u32::MAX;
                        let mut live = 0usize;
                        let mut last = 0usize;
                        for (ci, c) in cursors.iter().enumerate() {
                            if let Some(v) = c.peek(&arena) {
                                live += 1;
                                last = ci;
                                min = min.min(v);
                            }
                        }
                        match live {
                            0 => break,
                            1 => {
                                // Lone survivor: bulk-append the
                                // remainder (walk the path part,
                                // memcpy the slice part).
                                let mut c = cursors[last];
                                while c.pos != NO_NEXT {
                                    arena.push(c.pos);
                                    c.advance(&next_pos, &start, &end);
                                }
                                arena.extend_from_within(c.idx as usize..c.end as usize);
                                break;
                            }
                            _ => {
                                arena.push(min);
                                for c in &mut cursors {
                                    if c.peek(&arena) == Some(min) {
                                        c.advance(&next_pos, &start, &end);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if chain_count + arena.len() > max_members {
                return Ok(None);
            }
            start[p] = u32::try_from(cone_start).expect("cone members fit u32");
            end[p] = u32::try_from(arena.len()).expect("cone members fit u32");
        }
        Ok(Some(TailCones {
            next_pos,
            start,
            end,
            arena,
            chain_count,
        }))
    }
}

// ---------------------------------------------------------------------------
// The flat per-site-DFS oracle
// ---------------------------------------------------------------------------

/// The original flat cone-plan arena, built by per-site DFS — retained
/// as the **semantic reference**: every site's full cone is stored
/// (members, kinds, per-member packed refs, observe refs), with no
/// suffix sharing. The suffix-shared [`ConePlans`] is proptest-checked
/// to [`materialize`](ConePlan::materialize) site-for-site identically
/// to [`FlatConePlan::materialize`], and the sweep benchmark reports
/// `plan_build_ms` for both builders.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatConePlans {
    member_off: Vec<u32>,
    members: Vec<NodeId>,
    kinds: Vec<GateKind>,
    member_fanin_off: Vec<u32>,
    fanin_refs: Vec<u32>,
    observe_off: Vec<u32>,
    observe_refs: Vec<(u32, u32)>,
    max_cone_len: usize,
}

impl FlatConePlans {
    /// Builds the flat plans with per-site DFS discovery on every
    /// available core.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build(circuit: &Circuit, topo: &TopoArtifacts) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_bounded_with_threads(circuit, topo, usize::MAX, threads)
            .expect("unbounded build cannot decline")
    }

    /// [`build`](Self::build) with an explicit **logical**-member
    /// budget (the flat arena stores every site's full cone, so its
    /// memory is proportional to the logical total, unlike
    /// [`ConePlans::build_bounded`]'s stored-member budget) and worker
    /// count. The per-site DFS loop is embarrassingly parallel:
    /// workers claim contiguous site ranges through an atomic cursor
    /// and the fragments are stitched back in site order; the budget
    /// is a shared counter whose decline decision is deterministic
    /// (the total is scheduling-independent).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or `topo` was not computed from
    /// `circuit`.
    #[must_use]
    pub fn build_bounded_with_threads(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
        threads: usize,
    ) -> Option<Self> {
        assert!(threads > 0, "at least one thread");
        let n = circuit.len();
        assert_eq!(topo.len(), n, "artifacts must cover every node");

        let observe = topo.observe_points();
        let mut obs_of_signal: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, p) in observe.iter().enumerate() {
            obs_of_signal[p.signal().index()].push(u32::try_from(i).expect("observe fits u32"));
        }

        let spent = AtomicUsize::new(0);
        let over_budget = AtomicBool::new(false);
        let budget = BuildBudget {
            max_members,
            spent: &spent,
            over_budget: &over_budget,
        };

        let chunks: Vec<PlanChunk> = if threads == 1 || n < FLAT_PARALLEL_BUILD_THRESHOLD {
            let mut scratch = ChunkScratch::new(n);
            vec![build_chunk_reference(
                circuit,
                topo,
                &obs_of_signal,
                0..n,
                &budget,
                &mut scratch,
            )?]
        } else {
            let chunk_len = n.div_ceil(threads * ConePlans::CHUNKS_PER_THREAD).max(1);
            let ranges: Vec<Range<usize>> = (0..n)
                .step_by(chunk_len)
                .map(|start| start..(start + chunk_len).min(n))
                .collect();
            let cursor = AtomicUsize::new(0);
            let mut parts: Vec<(usize, PlanChunk)> = Vec::with_capacity(ranges.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads.min(ranges.len()))
                    .map(|_| {
                        let cursor = &cursor;
                        let ranges = &ranges;
                        let budget = &budget;
                        let obs_of_signal = &obs_of_signal;
                        scope.spawn(move || {
                            // One scratch per worker, reused across
                            // every range it claims.
                            let mut scratch = ChunkScratch::new(n);
                            let mut built: Vec<(usize, PlanChunk)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(range) = ranges.get(i).cloned() else {
                                    break;
                                };
                                if budget.exceeded() {
                                    break;
                                }
                                let Some(chunk) = build_chunk_reference(
                                    circuit,
                                    topo,
                                    obs_of_signal,
                                    range.clone(),
                                    budget,
                                    &mut scratch,
                                ) else {
                                    break;
                                };
                                built.push((range.start, chunk));
                            }
                            built
                        })
                    })
                    .collect();
                for h in handles {
                    parts.extend(h.join().expect("plan build worker panicked"));
                }
            });
            if budget.exceeded() {
                return None;
            }
            parts.sort_unstable_by_key(|&(start, _)| start);
            debug_assert_eq!(parts.len(), ranges.len(), "every range built");
            parts.into_iter().map(|(_, chunk)| chunk).collect()
        };

        // Adopt a lone fragment; otherwise stitch with offset
        // rebasing (all payload entries are position-independent).
        if chunks.len() == 1 {
            let chunk = chunks.into_iter().next().expect("one chunk");
            debug_assert_eq!(chunk.member_off.len(), n + 1);
            return Some(FlatConePlans {
                member_off: chunk.member_off,
                members: chunk.members,
                kinds: chunk.kinds,
                member_fanin_off: chunk.member_fanin_off,
                fanin_refs: chunk.fanin_refs,
                observe_off: chunk.observe_off,
                observe_refs: chunk.observe_refs,
                max_cone_len: chunk.max_cone_len,
            });
        }
        let mut plans = FlatConePlans {
            member_off: Vec::with_capacity(n + 1),
            members: Vec::new(),
            kinds: Vec::new(),
            member_fanin_off: vec![0],
            fanin_refs: Vec::new(),
            observe_off: Vec::with_capacity(n + 1),
            observe_refs: Vec::new(),
            max_cone_len: 0,
        };
        plans.member_off.push(0);
        plans.observe_off.push(0);
        for chunk in chunks {
            let member_base = u32::try_from(plans.members.len()).expect("cone members fit u32");
            let fanin_base = u32::try_from(plans.fanin_refs.len()).expect("fanin refs fit u32");
            let observe_base =
                u32::try_from(plans.observe_refs.len()).expect("observe refs fit u32");
            plans.members.extend_from_slice(&chunk.members);
            plans.kinds.extend_from_slice(&chunk.kinds);
            plans.fanin_refs.extend_from_slice(&chunk.fanin_refs);
            plans.observe_refs.extend_from_slice(&chunk.observe_refs);
            plans
                .member_off
                .extend(chunk.member_off[1..].iter().map(|&o| o + member_base));
            plans
                .member_fanin_off
                .extend(chunk.member_fanin_off[1..].iter().map(|&o| o + fanin_base));
            plans
                .observe_off
                .extend(chunk.observe_off[1..].iter().map(|&o| o + observe_base));
            plans.max_cone_len = plans.max_cone_len.max(chunk.max_cone_len);
        }
        debug_assert_eq!(plans.member_off.len(), n + 1);
        Some(plans)
    }

    /// Number of sites covered (one plan per circuit node).
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_off.len() - 1
    }

    /// `true` for an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest cone size over all sites.
    #[must_use]
    pub fn max_cone_len(&self) -> usize {
        self.max_cone_len
    }

    /// Total (logical) cone members over all sites — the flat arena
    /// stores every one of them.
    #[must_use]
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Total reachable observe points over all sites.
    #[must_use]
    pub fn total_observe_refs(&self) -> usize {
        self.observe_refs.len()
    }

    /// Heap bytes of the flat arena — the baseline `arena_bytes` the
    /// suffix-shared layout is compared against.
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        fn bytes<T>(v: &[T]) -> usize {
            std::mem::size_of_val(v)
        }
        bytes(&self.member_off)
            + bytes(&self.members)
            + bytes(&self.kinds)
            + bytes(&self.member_fanin_off)
            + bytes(&self.fanin_refs)
            + bytes(&self.observe_off)
            + bytes(&self.observe_refs)
    }

    /// The flat plan of one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn plan(&self, site: NodeId) -> FlatConePlan<'_> {
        assert!(site.index() < self.len(), "site {site} out of range");
        FlatConePlan {
            plans: self,
            site: site.index(),
        }
    }
}

/// Below this many nodes the flat build runs on one thread.
const FLAT_PARALLEL_BUILD_THRESHOLD: usize = 1024;

/// A borrowed view of one site's plan inside [`FlatConePlans`].
#[derive(Debug, Clone, Copy)]
pub struct FlatConePlan<'a> {
    plans: &'a FlatConePlans,
    site: usize,
}

impl<'a> FlatConePlan<'a> {
    /// The error site this plan was compiled for.
    #[must_use]
    pub fn site(&self) -> NodeId {
        NodeId::from_index(self.site)
    }

    fn member_range(&self) -> Range<usize> {
        self.plans.member_off[self.site] as usize..self.plans.member_off[self.site + 1] as usize
    }

    /// Number of cone members (site included); at least 1.
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_range().len()
    }

    /// Always `false`: a cone contains at least its site.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cone members in topological order; `members()[0]` is the site.
    #[must_use]
    pub fn members(&self) -> &'a [NodeId] {
        &self.plans.members[self.member_range()]
    }

    /// Gate kinds parallel to [`members`](Self::members).
    #[must_use]
    pub fn kinds(&self) -> &'a [GateKind] {
        &self.plans.kinds[self.member_range()]
    }

    /// Packed fanin references of cone member `pos` (cone-local
    /// on-path values; decode with [`FaninRef::decode`]). Empty for
    /// `pos == 0` (the site).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range for the cone.
    #[must_use]
    pub fn fanin_refs(&self, pos: usize) -> &'a [u32] {
        let range = self.member_range();
        assert!(pos < range.len(), "cone member {pos} out of range");
        let m = range.start + pos;
        &self.plans.fanin_refs
            [self.plans.member_fanin_off[m] as usize..self.plans.member_fanin_off[m + 1] as usize]
    }

    /// Reachable observe points as `(observe index, cone-local
    /// position)` pairs, ordered by observe index.
    #[must_use]
    pub fn observe_refs(&self) -> &'a [(u32, u32)] {
        &self.plans.observe_refs[self.plans.observe_off[self.site] as usize
            ..self.plans.observe_off[self.site + 1] as usize]
    }

    /// `true` if no observe point is reachable from the site.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.observe_refs().is_empty()
    }

    /// Evaluation cost indicator: cone members plus fanin references.
    #[must_use]
    pub fn cost(&self) -> usize {
        let range = self.member_range();
        let fanins = self.plans.member_fanin_off[range.end] as usize
            - self.plans.member_fanin_off[range.start] as usize;
        range.len() + fanins
    }

    /// Decodes the plan into owned [`SitePlan`] form — the flat arena
    /// already stores everything, so this is a straight copy.
    #[must_use]
    pub fn materialize(&self) -> SitePlan {
        SitePlan {
            site: self.site(),
            members: self.members().to_vec(),
            kinds: self.kinds().to_vec(),
            fanin_refs: (0..self.len())
                .map(|pos| {
                    self.fanin_refs(pos)
                        .iter()
                        .map(|&raw| FaninRef::decode(raw))
                        .collect()
                })
                .collect(),
            observe_refs: self.observe_refs().to_vec(),
        }
    }
}

/// One contiguous site range's share of the flat plan arena, offsets
/// local to the fragment (rebased during the stitch). All payload
/// entries — members, kinds, fanin refs (cone-local or node-id), and
/// observe refs — are position-independent, which is what makes the
/// parallel build's concatenation exact.
struct PlanChunk {
    member_off: Vec<u32>,
    members: Vec<NodeId>,
    kinds: Vec<GateKind>,
    member_fanin_off: Vec<u32>,
    fanin_refs: Vec<u32>,
    observe_off: Vec<u32>,
    observe_refs: Vec<(u32, u32)>,
    max_cone_len: usize,
}

/// Per-worker scratch for the flat build: epoch-stamped membership,
/// the node → cone-local map and the traversal buffers, allocated once
/// per worker and reused across every range the worker claims (the
/// epoch counter carries over, invalidating old stamps in O(1)).
struct ChunkScratch {
    stamp: Vec<u32>,
    local: Vec<u32>,
    epoch: u32,
    cone: Vec<NodeId>,
    stack: Vec<NodeId>,
    site_obs: Vec<(u32, u32)>,
}

impl ChunkScratch {
    fn new(n: usize) -> Self {
        ChunkScratch {
            stamp: vec![0u32; n],
            local: vec![0u32; n],
            epoch: 0,
            cone: Vec::new(),
            stack: Vec::new(),
            site_obs: Vec::new(),
        }
    }
}

/// Shared member-budget accounting for the chunked flat build.
struct BuildBudget<'a> {
    max_members: usize,
    spent: &'a AtomicUsize,
    over_budget: &'a AtomicBool,
}

impl BuildBudget<'_> {
    /// Charges one cone's members; `false` means the arena just
    /// exceeded the budget (the flag is raised so sibling workers stop
    /// early). The accumulated total is order-independent, so whether
    /// the overall build declines is deterministic.
    fn charge(&self, members: usize) -> bool {
        let charged = self.spent.fetch_add(members, Ordering::Relaxed);
        if charged + members > self.max_members {
            self.over_budget.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn exceeded(&self) -> bool {
        self.over_budget.load(Ordering::Relaxed)
    }
}

/// Builds the flat plan fragment for `sites` (a contiguous id range)
/// with per-site-DFS discovery: DFS over the DFF-clipped fanout
/// adjacency, sort by topological position, classify fanins against
/// the epoch-stamped membership. Charges every cone against the shared
/// member budget and returns `None` on overflow.
fn build_chunk_reference(
    circuit: &Circuit,
    topo: &TopoArtifacts,
    obs_of_signal: &[Vec<u32>],
    sites: Range<usize>,
    budget: &BuildBudget<'_>,
    scratch: &mut ChunkScratch,
) -> Option<PlanChunk> {
    let mut chunk = PlanChunk {
        member_off: Vec::with_capacity(sites.len() + 1),
        members: Vec::new(),
        kinds: Vec::new(),
        member_fanin_off: vec![0],
        fanin_refs: Vec::new(),
        observe_off: Vec::with_capacity(sites.len() + 1),
        observe_refs: Vec::new(),
        max_cone_len: 0,
    };
    chunk.member_off.push(0);
    chunk.observe_off.push(0);

    let ChunkScratch {
        stamp,
        local,
        epoch,
        cone,
        stack,
        site_obs,
    } = scratch;

    for site_idx in sites {
        let site = NodeId::from_index(site_idx);
        // New epoch: previous stamps invalidate in O(1). On wrap, reset.
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamp.fill(0);
            *epoch = 1;
        }
        let epoch = *epoch;

        // DFS over the DFF-clipped fanout adjacency.
        cone.clear();
        stack.clear();
        stamp[site_idx] = epoch;
        cone.push(site);
        stack.push(site);
        while let Some(id) = stack.pop() {
            for &succ in topo.comb_fanout(id) {
                if stamp[succ.index()] != epoch {
                    stamp[succ.index()] = epoch;
                    cone.push(succ);
                    stack.push(succ);
                }
            }
        }
        // Topological order within the cone (positions are a total
        // order, so this matches any stable per-site re-sort).
        cone.sort_unstable_by_key(|id| topo.position(*id));
        debug_assert_eq!(cone[0], site, "site orders first in its own cone");
        if !budget.charge(cone.len()) {
            return None;
        }
        chunk.max_cone_len = chunk.max_cone_len.max(cone.len());

        for (pos, &id) in cone.iter().enumerate() {
            local[id.index()] = u32::try_from(pos).expect("cone fits u32");
        }
        site_obs.clear();
        for (pos, &id) in cone.iter().enumerate() {
            let node = circuit.node(id);
            chunk.members.push(id);
            chunk.kinds.push(node.kind());
            if pos > 0 {
                debug_assert!(
                    node.kind().is_logic(),
                    "on-path non-site nodes are logic gates"
                );
                for &f in node.fanin() {
                    chunk.fanin_refs.push(if stamp[f.index()] == epoch {
                        FaninRef::encode_on_path(local[f.index()])
                    } else {
                        FaninRef::encode_off_path(f)
                    });
                }
            }
            chunk
                .member_fanin_off
                .push(u32::try_from(chunk.fanin_refs.len()).expect("fanin refs fit u32"));
            for &obs in &obs_of_signal[id.index()] {
                site_obs.push((obs, u32::try_from(pos).expect("cone fits u32")));
            }
        }
        site_obs.sort_unstable();
        chunk.observe_refs.extend_from_slice(site_obs);
        chunk
            .member_off
            .push(u32::try_from(chunk.members.len()).expect("cone members fit u32"));
        chunk
            .observe_off
            .push(u32::try_from(chunk.observe_refs.len()).expect("observe refs fit u32"));
    }
    Some(chunk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::FanoutCone;
    use crate::parse::parse_bench;

    const FIG1: &str = "
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
D = AND(A, B)
G = AND(E, F)
H = OR(C, D, G)
";

    /// Decodes every site of both builders and asserts they agree.
    fn assert_matches_flat(c: &Circuit) {
        let topo = TopoArtifacts::compute(c).unwrap();
        let shared = ConePlans::build(c, &topo);
        let flat = FlatConePlans::build(c, &topo);
        for id in c.node_ids() {
            assert_eq!(
                shared.plan(id).materialize(c),
                flat.plan(id).materialize(),
                "{} site {id}",
                c.name()
            );
        }
        assert_eq!(shared.max_cone_len(), flat.max_cone_len(), "{}", c.name());
        assert_eq!(
            shared.logical_members(),
            flat.total_members() as u64,
            "{}",
            c.name()
        );
        assert_eq!(
            shared.total_observe_refs(),
            flat.total_observe_refs() as u64,
            "{}",
            c.name()
        );
    }

    #[test]
    fn plans_match_fanout_cones() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert_eq!(plans.len(), c.len());
        for id in c.node_ids() {
            let plan = plans.plan(id);
            let decoded = plan.materialize(&c);
            let cone = FanoutCone::extract(&c, id);
            // Same membership (plan is topo-sorted, cone id-sorted).
            let mut plan_members = decoded.members.clone();
            plan_members.sort_unstable();
            assert_eq!(plan_members, cone.on_path(), "site {id}");
            assert_eq!(decoded.members[0], id, "site first");
            assert_eq!(plan.len(), decoded.members.len(), "O(1) len agrees");
            // The members() iterator walks the same logical cone.
            let walked: Vec<NodeId> = plan.members().collect();
            assert_eq!(walked, decoded.members);
            // Topological order.
            for w in decoded.members.windows(2) {
                assert!(topo.position(w[0]) < topo.position(w[1]));
            }
            // Observe points match.
            assert_eq!(decoded.observe_refs.len(), cone.observe_points().len());
            assert_eq!(plan.observe_len(), decoded.observe_refs.len());
            assert_eq!(plan.is_dead(), cone.is_dead());
            for &(obs, local) in &decoded.observe_refs {
                let p = topo.observe_points()[obs as usize];
                assert_eq!(decoded.members[local as usize], p.signal());
            }
        }
    }

    #[test]
    fn fanin_classification_is_exact() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("A").unwrap();
        let decoded = plans.plan(a).materialize(&c);
        let cone = FanoutCone::extract(&c, a);
        for (pos, &member) in decoded.members.iter().enumerate() {
            if pos == 0 {
                assert!(decoded.fanin_refs[0].is_empty(), "site has no refs");
                continue;
            }
            let node = c.node(member);
            let refs = &decoded.fanin_refs[pos];
            assert_eq!(refs.len(), node.fanin().len(), "one ref per fanin pin");
            for (&r, &f) in refs.iter().zip(node.fanin()) {
                match r {
                    FaninRef::OnPath(local) => {
                        assert!(cone.contains(f), "{f} claimed on-path");
                        assert_eq!(decoded.members[local], f);
                    }
                    FaninRef::OffPath(idx) => {
                        assert!(!cone.contains(f), "{f} claimed off-path");
                        assert_eq!(idx, f.index());
                    }
                }
            }
        }
        // Fig. 1: H = OR(C, D, G) with C off-path, D and G on-path.
        let h_pos = decoded
            .members
            .iter()
            .position(|&m| m == c.find("H").unwrap())
            .unwrap();
        let h_refs = &decoded.fanin_refs[h_pos];
        assert!(matches!(h_refs[0], FaninRef::OffPath(_)), "C off-path");
        assert!(matches!(h_refs[1], FaninRef::OnPath(_)), "D on-path");
        assert!(matches!(h_refs[2], FaninRef::OnPath(_)), "G on-path");
    }

    #[test]
    fn intersects_agrees_with_membership() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        // Every (site, single-node seed) pair: intersects == membership.
        for site in c.node_ids() {
            let plan = plans.plan(site);
            for seed in c.node_ids() {
                let mut marked = vec![false; c.len()];
                marked[seed.index()] = true;
                assert_eq!(
                    plan.intersects(&marked),
                    plan.members().any(|m| m == seed),
                    "site {site} seed {seed}"
                );
            }
        }
        // And the empty mask never intersects.
        let empty = vec![false; c.len()];
        for site in c.node_ids() {
            assert!(!plans.plan(site).intersects(&empty));
        }
    }

    #[test]
    fn duplicate_fanin_pins_are_preserved() {
        // y = AND(a, a): the plan must carry two references to `a`.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "dup").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("a").unwrap();
        let decoded = plans.plan(a).materialize(&c);
        assert_eq!(decoded.members.len(), 2);
        assert_eq!(
            decoded.fanin_refs[1],
            vec![FaninRef::OnPath(0), FaninRef::OnPath(0)],
            "both pins resolve to local 0"
        );
        assert_matches_flat(&c);
    }

    #[test]
    fn dff_clips_the_cone_but_is_observed() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(z)\ng = NOT(x)\nq = DFF(g)\nz = NOT(q)\n",
            "seq",
        )
        .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let x = c.find("x").unwrap();
        let decoded = plans.plan(x).materialize(&c);
        let member_names: Vec<&str> = decoded.members.iter().map(|&m| c.node(m).name()).collect();
        assert_eq!(member_names, vec!["x", "g"], "cone stops at the DFF");
        assert_eq!(decoded.observe_refs.len(), 1);
        let (obs, local) = decoded.observe_refs[0];
        assert!(topo.observe_points()[obs as usize].is_flip_flop());
        assert_eq!(c.node(decoded.members[local as usize]).name(), "g");
        assert_matches_flat(&c);
    }

    #[test]
    fn cost_counts_members_and_fanins() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("A").unwrap();
        // Cone {A, E, D, G, H}: 5 members; fanins E:1, D:2, G:2, H:3 = 8.
        assert_eq!(plans.plan(a).cost(), 13);
        assert!(plans.max_cone_len() >= 5);
        // The O(1) cost of every site equals the decoded pin total.
        for id in c.node_ids() {
            let plan = plans.plan(id);
            let decoded = plan.materialize(&c);
            let pins: usize = decoded.fanin_refs.iter().map(Vec::len).sum();
            assert_eq!(plan.cost(), decoded.members.len() + pins, "site {id}");
        }
        assert_eq!(
            plans.total_observe_refs(),
            c.node_ids()
                .map(|i| plans.plan(i).observe_len() as u64)
                .sum::<u64>()
        );
    }

    #[test]
    fn suffix_sharing_dedups_chain_members() {
        // FIG1: anchors are A (2 successors) and H (none); the other 6
        // nodes are chain nodes. Stored = 6 chain entries + the two
        // tail cones {A,E,D,G,H} and {H} = 12, against 19 logical.
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert_eq!(plans.tail_count(), 2);
        assert_eq!(plans.stored_members(), 12);
        assert_eq!(
            plans.logical_members(),
            c.node_ids()
                .map(|i| plans.plan(i).len() as u64)
                .sum::<u64>()
        );
        assert!(plans.logical_members() > plans.stored_members() as u64);
        assert!(plans.arena_bytes() > 0);
    }

    #[test]
    fn bounded_build_counts_stored_members() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let full = ConePlans::build(&c, &topo);
        let stored = full.stored_members();
        // The stored (deduplicated) total is what the budget bounds:
        // a budget below it declines, at it the build is identical.
        assert!(ConePlans::build_bounded(&c, &topo, stored - 1).is_none());
        let bounded = ConePlans::build_bounded(&c, &topo, stored).unwrap();
        assert_eq!(bounded, full);
        // The logical total no longer matters: FIG1 stores 12 of 19
        // logical members, so a budget between the two still fits.
        assert!(stored < full.logical_members() as usize);
        assert!(ConePlans::build_bounded(&c, &topo, stored + 1).is_some());
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        // A chain with side inputs: 2,401 nodes (above the parallel
        // threshold), cone sizes from the whole chain down to 1.
        let stages = 1200;
        let mut src = String::from("INPUT(x0)\n");
        for i in 0..stages {
            src.push_str(&format!("INPUT(s{i})\n"));
        }
        src.push_str(&format!("OUTPUT(g{})\n", stages - 1));
        for i in 0..stages {
            let prev = if i == 0 {
                "x0".to_owned()
            } else {
                format!("g{}", i - 1)
            };
            src.push_str(&format!("g{i} = AND({prev}, s{i})\n"));
        }
        let c = parse_bench(&src, "chain").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let sequential = ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, 1).unwrap();
        for threads in [2, 4, 7] {
            let parallel =
                ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, threads).unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        // The budget decision is deterministic in parallel too: decline
        // below the stored total, accept at it.
        let stored = sequential.stored_members();
        assert!(ConePlans::build_bounded_with_threads(&c, &topo, stored - 1, 4).is_none());
        let at_budget = ConePlans::build_bounded_with_threads(&c, &topo, stored, 4).unwrap();
        assert_eq!(at_budget, sequential);
        // Every chain node shares the suffix: the stored total is
        // linear while the logical total is quadratic.
        assert!(sequential.logical_members() > 10 * sequential.stored_members() as u64);
    }

    #[test]
    fn suffix_shared_matches_flat_oracle() {
        for (name, src) in [
            ("fig1", FIG1),
            ("dup", "INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n"),
            ("seq", "INPUT(x)\nOUTPUT(z)\ng = NOT(x)\nq = DFF(g)\nz = NOT(q)\n"),
            (
                "reconv",
                "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NOT(a)\nv = NAND(a, b)\nw = XOR(u, v)\ny = OR(w, u)\n",
            ),
        ] {
            let c = parse_bench(src, name).unwrap();
            assert_matches_flat(&c);
        }
    }

    #[test]
    fn cancelled_build_aborts_and_live_token_is_identical() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let reference = ConePlans::build(&c, &topo);

        // A live token changes nothing: the build is bit-identical.
        let live = crate::CancelToken::new();
        let with_token =
            ConePlans::build_bounded_cancellable(&c, &topo, usize::MAX, 1, Some(&live))
                .unwrap()
                .unwrap();
        assert_eq!(with_token, reference);

        // A tripped token aborts at the first checkpoint with its
        // cause; the budget decline stays distinguishable.
        let tripped = crate::CancelToken::new();
        tripped.cancel();
        assert_eq!(
            ConePlans::build_bounded_cancellable(&c, &topo, usize::MAX, 1, Some(&tripped)),
            Err(crate::CancelCause::Cancelled)
        );
        let expired = crate::CancelToken::with_deadline(std::time::Instant::now());
        assert_eq!(
            ConePlans::build_bounded_cancellable(&c, &topo, usize::MAX, 1, Some(&expired)),
            Err(crate::CancelCause::DeadlineExceeded)
        );
        assert_eq!(
            ConePlans::build_bounded_cancellable(&c, &topo, 1, 1, Some(&live)),
            Ok(None)
        );
    }

    #[test]
    fn empty_circuit_has_no_plans() {
        let c = crate::builder::CircuitBuilder::new("empty")
            .finish()
            .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert!(plans.is_empty());
        assert_eq!(plans.max_cone_len(), 0);
        assert_eq!(plans.stored_members(), 0);
        let flat = FlatConePlans::build(&c, &topo);
        assert!(flat.is_empty());
    }
}
