//! Precomputed per-site cone plans — the compiled form of the paper's
//! "path construction" step.
//!
//! The per-site EPP pass needs, for every error site: the DFF-clipped
//! fanout cone in topological order, each cone member's gate kind, and
//! each member fanin classified as **on-path** (it carries a four-value
//! tuple, addressed by its cone-local position) or **off-path** (it is
//! described by its signal probability, addressed by node id). The
//! legacy sweep rediscovered all of this per site per sweep — a DFS, a
//! sort and a per-fanin membership test. [`ConePlans`] computes it
//! **once per circuit** in one flat CSR-style arena, so a sweep kernel
//! degenerates to reading precomputed indices.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::artifacts::TopoArtifacts;
use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// Bit marking a fanin reference as off-path (node index) rather than
/// on-path (cone-local index).
const OFF_PATH_BIT: u32 = 1 << 31;

/// One decoded fanin reference of a cone member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaninRef {
    /// The fanin is inside the cone: its value is the four-value tuple
    /// at this cone-local position.
    OnPath(usize),
    /// The fanin is outside the cone: its value is the signal
    /// probability of this node (by [`NodeId::index`]).
    OffPath(usize),
}

impl FaninRef {
    /// Decodes a packed reference.
    #[inline]
    #[must_use]
    pub fn decode(raw: u32) -> Self {
        if raw & OFF_PATH_BIT == 0 {
            FaninRef::OnPath(raw as usize)
        } else {
            FaninRef::OffPath((raw & !OFF_PATH_BIT) as usize)
        }
    }

    fn encode_on_path(local: u32) -> u32 {
        debug_assert_eq!(local & OFF_PATH_BIT, 0, "cone larger than 2^31");
        local
    }

    fn encode_off_path(node: NodeId) -> u32 {
        let idx = u32::try_from(node.index()).expect("node index fits u32");
        debug_assert_eq!(idx & OFF_PATH_BIT, 0, "circuit larger than 2^31 nodes");
        idx | OFF_PATH_BIT
    }
}

/// The compiled cone plans of every site of one circuit, stored as one
/// flat arena (no per-site allocation once built).
///
/// Layout: `members`/`kinds`/`member_fanin_off` are parallel arrays over
/// all cone members of all sites; `member_off` delimits each site's
/// slice. The site itself is always member 0 of its own cone and cone
/// members appear in topological order, so evaluating members
/// `1..len` in sequence visits every on-path gate after all of its
/// on-path fanins.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, FaninRef, TopoArtifacts};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let topo = TopoArtifacts::compute(&c)?;
/// let plans = topo.cone_plans(&c).expect("tiny circuit fits the plan budget");
/// let a = c.find("a").unwrap();
/// let plan = plans.plan(a);
/// assert_eq!(plan.len(), 2); // a itself plus the AND gate
/// // The AND gate reads one on-path fanin (a, cone-local 0) and one
/// // off-path fanin (b, by node id).
/// let refs: Vec<FaninRef> = plan.fanin_refs(1).iter().map(|&r| FaninRef::decode(r)).collect();
/// let b = c.find("b").unwrap();
/// assert!(refs.contains(&FaninRef::OnPath(0)));
/// assert!(refs.contains(&FaninRef::OffPath(b.index())));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConePlans {
    /// Per site: range `member_off[i]..member_off[i+1]` into the member
    /// arrays. Length `n + 1`.
    member_off: Vec<u32>,
    /// Cone members, site first, then the on-path gates in topological
    /// order.
    members: Vec<NodeId>,
    /// Gate kind per member (the site's own entry is present but unused
    /// by the kernel).
    kinds: Vec<GateKind>,
    /// Per member: range into `fanin_refs` (empty for each site's own
    /// entry). Length `members.len() + 1`.
    member_fanin_off: Vec<u32>,
    /// Packed fanin references (see [`FaninRef::decode`]), in fanin
    /// declaration order, duplicates preserved.
    fanin_refs: Vec<u32>,
    /// Per site: range into `observe_refs`. Length `n + 1`.
    observe_off: Vec<u32>,
    /// `(observe-point index, cone-local position of its signal)` pairs,
    /// ordered by observe-point index — the same order the artifacts'
    /// observe list has.
    observe_refs: Vec<(u32, u32)>,
    /// Largest cone size over all sites (workspace sizing).
    max_cone_len: usize,
}

impl ConePlans {
    /// Default budget for the total member count of one circuit's plan
    /// arena (~1.3 GB at ~20 bytes amortized per member). Sum-of-cones
    /// is Θ(n²) in the worst case (deep chain-dominated circuits), so
    /// consumers must be prepared for [`build_bounded`](Self::build_bounded)
    /// to decline and fall back to per-site traversal.
    pub const DEFAULT_MEMBER_BUDGET: usize = 1 << 26;

    /// Below this many sites the build runs on one thread: spawning
    /// workers would cost more than the per-site DFS loop it splits.
    const PARALLEL_BUILD_THRESHOLD: usize = 1024;

    /// How many contiguous site ranges the parallel build cuts per
    /// worker. Cone sizes are unknown up front, so oversubscription plus
    /// an atomic claim cursor is what balances the load.
    const CHUNKS_PER_THREAD: usize = 8;

    /// Builds the plans for every node of `circuit`. One DFS + one sort
    /// per site, paid once; `topo` supplies the positions and the
    /// DFF-clipped fanout adjacency. Sites are independent, so large
    /// circuits are built in parallel (see
    /// [`build_bounded_with_threads`](Self::build_bounded_with_threads));
    /// the result is identical whatever the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build(circuit: &Circuit, topo: &TopoArtifacts) -> Self {
        Self::build_bounded(circuit, topo, usize::MAX).expect("unbounded build cannot decline")
    }

    /// Like [`build`](Self::build), but aborts and returns `None` as
    /// soon as the arena would exceed `max_members` total cone members —
    /// the guard that keeps pathological Θ(n²) circuits from exhausting
    /// memory (the per-site reference path handles them in O(n) scratch
    /// instead). Uses every available core on large circuits.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build_bounded(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
    ) -> Option<Self> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_bounded_with_threads(circuit, topo, max_members, threads)
    }

    /// [`build_bounded`](Self::build_bounded) with an explicit worker
    /// count. The per-site DFS loop is embarrassingly parallel: workers
    /// claim contiguous site ranges through an atomic cursor, build
    /// per-range plan fragments, and the fragments are stitched back in
    /// site order — so the arena is bit-identical to a single-threaded
    /// build. The member budget is enforced globally through a shared
    /// counter; whether the build declines is deterministic (the total
    /// member count does not depend on scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or `topo` was not computed from
    /// `circuit`.
    #[must_use]
    pub fn build_bounded_with_threads(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
        threads: usize,
    ) -> Option<Self> {
        assert!(threads > 0, "at least one thread");
        let n = circuit.len();
        assert_eq!(topo.len(), n, "artifacts must cover every node");

        // Observe points indexed by observed signal, in observe order;
        // shared read-only by every worker.
        let observe = topo.observe_points();
        let mut obs_of_signal: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, p) in observe.iter().enumerate() {
            obs_of_signal[p.signal().index()].push(u32::try_from(i).expect("observe fits u32"));
        }

        let spent = AtomicUsize::new(0);
        let over_budget = AtomicBool::new(false);
        let budget = BuildBudget {
            max_members,
            spent: &spent,
            over_budget: &over_budget,
        };

        let chunks: Vec<PlanChunk> = if threads == 1 || n < Self::PARALLEL_BUILD_THRESHOLD {
            let mut scratch = ChunkScratch::new(n);
            vec![build_chunk(
                circuit,
                topo,
                &obs_of_signal,
                0..n,
                &budget,
                &mut scratch,
            )?]
        } else {
            let chunk_len = n.div_ceil(threads * Self::CHUNKS_PER_THREAD).max(1);
            let ranges: Vec<Range<usize>> = (0..n)
                .step_by(chunk_len)
                .map(|start| start..(start + chunk_len).min(n))
                .collect();
            let cursor = AtomicUsize::new(0);
            let mut parts: Vec<(usize, PlanChunk)> = Vec::with_capacity(ranges.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads.min(ranges.len()))
                    .map(|_| {
                        let cursor = &cursor;
                        let ranges = &ranges;
                        let obs_of_signal = &obs_of_signal;
                        let budget = &budget;
                        scope.spawn(move || {
                            // One scratch per worker, reused across every
                            // range it claims.
                            let mut scratch = ChunkScratch::new(n);
                            let mut built: Vec<(usize, PlanChunk)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(range) = ranges.get(i).cloned() else {
                                    break;
                                };
                                if budget.exceeded() {
                                    break;
                                }
                                let Some(chunk) = build_chunk(
                                    circuit,
                                    topo,
                                    obs_of_signal,
                                    range.clone(),
                                    budget,
                                    &mut scratch,
                                ) else {
                                    break;
                                };
                                built.push((range.start, chunk));
                            }
                            built
                        })
                    })
                    .collect();
                for h in handles {
                    parts.extend(h.join().expect("plan build worker panicked"));
                }
            });
            if budget.exceeded() {
                return None;
            }
            parts.sort_unstable_by_key(|&(start, _)| start);
            debug_assert_eq!(parts.len(), ranges.len(), "every range built");
            parts.into_iter().map(|(_, chunk)| chunk).collect()
        };

        // Stitch the fragments in site order. Member and observe entries
        // are position-independent (fanin refs are cone-local or node
        // ids), so concatenation plus offset rebasing reproduces the
        // sequential arena exactly.
        let mut plans = ConePlans {
            member_off: Vec::with_capacity(n + 1),
            members: Vec::new(),
            kinds: Vec::new(),
            member_fanin_off: vec![0],
            fanin_refs: Vec::new(),
            observe_off: Vec::with_capacity(n + 1),
            observe_refs: Vec::new(),
            max_cone_len: 0,
        };
        plans.member_off.push(0);
        plans.observe_off.push(0);
        for chunk in chunks {
            let member_base = u32::try_from(plans.members.len()).expect("cone members fit u32");
            let fanin_base = u32::try_from(plans.fanin_refs.len()).expect("fanin refs fit u32");
            let observe_base =
                u32::try_from(plans.observe_refs.len()).expect("observe refs fit u32");
            plans.members.extend_from_slice(&chunk.members);
            plans.kinds.extend_from_slice(&chunk.kinds);
            plans.fanin_refs.extend_from_slice(&chunk.fanin_refs);
            plans.observe_refs.extend_from_slice(&chunk.observe_refs);
            plans
                .member_off
                .extend(chunk.member_off[1..].iter().map(|&o| o + member_base));
            plans
                .member_fanin_off
                .extend(chunk.member_fanin_off[1..].iter().map(|&o| o + fanin_base));
            plans
                .observe_off
                .extend(chunk.observe_off[1..].iter().map(|&o| o + observe_base));
            plans.max_cone_len = plans.max_cone_len.max(chunk.max_cone_len);
        }
        debug_assert_eq!(plans.member_off.len(), n + 1);
        Some(plans)
    }

    /// Number of sites covered (one plan per circuit node).
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_off.len() - 1
    }

    /// `true` for an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest cone size over all sites — the capacity a cone-local
    /// value plane needs.
    #[must_use]
    pub fn max_cone_len(&self) -> usize {
        self.max_cone_len
    }

    /// Total cone members over all sites (a memory/cost indicator).
    #[must_use]
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Total reachable observe points over all sites — the exact arena
    /// size a whole-circuit sweep's per-point results need.
    #[must_use]
    pub fn total_observe_refs(&self) -> usize {
        self.observe_refs.len()
    }

    /// The plan of one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn plan(&self, site: NodeId) -> ConePlan<'_> {
        assert!(site.index() < self.len(), "site {site} out of range");
        ConePlan {
            plans: self,
            site: site.index(),
        }
    }
}

/// One contiguous site range's share of the plan arena, with offsets
/// local to the fragment (rebased during the stitch). All payload
/// entries — members, kinds, fanin refs (cone-local or node-id), and
/// observe refs — are position-independent, which is what makes the
/// parallel build's concatenation exact.
struct PlanChunk {
    member_off: Vec<u32>,
    members: Vec<NodeId>,
    kinds: Vec<GateKind>,
    member_fanin_off: Vec<u32>,
    fanin_refs: Vec<u32>,
    observe_off: Vec<u32>,
    observe_refs: Vec<(u32, u32)>,
    max_cone_len: usize,
}

/// Per-worker scratch for the chunked plan build: epoch-stamped
/// membership, the node → cone-local map and the traversal buffers,
/// allocated **once per worker** and reused across every range the
/// worker claims (the epoch counter carries over, invalidating old
/// stamps in O(1) exactly like the per-site sweep workspace).
struct ChunkScratch {
    stamp: Vec<u32>,
    local: Vec<u32>,
    epoch: u32,
    cone: Vec<NodeId>,
    stack: Vec<NodeId>,
    site_obs: Vec<(u32, u32)>,
}

impl ChunkScratch {
    fn new(n: usize) -> Self {
        ChunkScratch {
            stamp: vec![0u32; n],
            local: vec![0u32; n],
            epoch: 0,
            cone: Vec::new(),
            stack: Vec::new(),
            site_obs: Vec::new(),
        }
    }
}

/// Shared member-budget accounting for the chunked build.
struct BuildBudget<'a> {
    max_members: usize,
    spent: &'a AtomicUsize,
    over_budget: &'a AtomicBool,
}

impl BuildBudget<'_> {
    /// Charges one cone's members; `false` means the arena just
    /// exceeded the budget (the flag is raised so sibling workers stop
    /// early). The accumulated total is order-independent, so whether
    /// the overall build declines is deterministic.
    fn charge(&self, members: usize) -> bool {
        let charged = self.spent.fetch_add(members, Ordering::Relaxed);
        if charged + members > self.max_members {
            self.over_budget.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn exceeded(&self) -> bool {
        self.over_budget.load(Ordering::Relaxed)
    }
}

/// Builds the plan fragment for `sites` (a contiguous id range). Charges
/// every cone against the shared member budget and returns `None` on
/// overflow.
fn build_chunk(
    circuit: &Circuit,
    topo: &TopoArtifacts,
    obs_of_signal: &[Vec<u32>],
    sites: Range<usize>,
    budget: &BuildBudget<'_>,
    scratch: &mut ChunkScratch,
) -> Option<PlanChunk> {
    let mut chunk = PlanChunk {
        member_off: Vec::with_capacity(sites.len() + 1),
        members: Vec::new(),
        kinds: Vec::new(),
        member_fanin_off: vec![0],
        fanin_refs: Vec::new(),
        observe_off: Vec::with_capacity(sites.len() + 1),
        observe_refs: Vec::new(),
        max_cone_len: 0,
    };
    chunk.member_off.push(0);
    chunk.observe_off.push(0);

    let ChunkScratch {
        stamp,
        local,
        epoch,
        cone,
        stack,
        site_obs,
    } = scratch;

    for site_idx in sites {
        let site = NodeId::from_index(site_idx);
        // New epoch: previous stamps invalidate in O(1). On wrap, reset.
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamp.fill(0);
            *epoch = 1;
        }
        let epoch = *epoch;

        // DFS over the DFF-clipped fanout adjacency.
        cone.clear();
        stack.clear();
        stamp[site_idx] = epoch;
        cone.push(site);
        stack.push(site);
        while let Some(id) = stack.pop() {
            for &succ in topo.comb_fanout(id) {
                if stamp[succ.index()] != epoch {
                    stamp[succ.index()] = epoch;
                    cone.push(succ);
                    stack.push(succ);
                }
            }
        }
        // Topological order within the cone (positions are a total
        // order, so this matches any stable per-site re-sort).
        cone.sort_unstable_by_key(|id| topo.position(*id));
        debug_assert_eq!(cone[0], site, "site orders first in its own cone");
        if !budget.charge(cone.len()) {
            return None;
        }
        chunk.max_cone_len = chunk.max_cone_len.max(cone.len());

        for (pos, &id) in cone.iter().enumerate() {
            local[id.index()] = u32::try_from(pos).expect("cone fits u32");
        }
        site_obs.clear();
        for (pos, &id) in cone.iter().enumerate() {
            let node = circuit.node(id);
            chunk.members.push(id);
            chunk.kinds.push(node.kind());
            if pos > 0 {
                debug_assert!(
                    node.kind().is_logic(),
                    "on-path non-site nodes are logic gates"
                );
                for &f in node.fanin() {
                    chunk.fanin_refs.push(if stamp[f.index()] == epoch {
                        FaninRef::encode_on_path(local[f.index()])
                    } else {
                        FaninRef::encode_off_path(f)
                    });
                }
            }
            chunk
                .member_fanin_off
                .push(u32::try_from(chunk.fanin_refs.len()).expect("fanin refs fit u32"));
            for &obs in &obs_of_signal[id.index()] {
                site_obs.push((obs, u32::try_from(pos).expect("cone fits u32")));
            }
        }
        // Reachable observe points in the artifacts' observe order.
        site_obs.sort_unstable();
        chunk.observe_refs.extend_from_slice(site_obs);

        chunk
            .member_off
            .push(u32::try_from(chunk.members.len()).expect("cone members fit u32"));
        chunk
            .observe_off
            .push(u32::try_from(chunk.observe_refs.len()).expect("observe refs fit u32"));
    }
    Some(chunk)
}

/// A borrowed view of one site's cone plan inside [`ConePlans`].
#[derive(Debug, Clone, Copy)]
pub struct ConePlan<'a> {
    plans: &'a ConePlans,
    site: usize,
}

impl<'a> ConePlan<'a> {
    /// The error site this plan was compiled for.
    #[must_use]
    pub fn site(&self) -> NodeId {
        NodeId::from_index(self.site)
    }

    fn member_range(&self) -> std::ops::Range<usize> {
        self.plans.member_off[self.site] as usize..self.plans.member_off[self.site + 1] as usize
    }

    /// Number of cone members (site included); at least 1.
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_range().len()
    }

    /// Always `false`: a cone contains at least its site.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cone members in topological order; `members()[0]` is the site.
    #[must_use]
    pub fn members(&self) -> &'a [NodeId] {
        &self.plans.members[self.member_range()]
    }

    /// Gate kinds parallel to [`members`](Self::members).
    #[must_use]
    pub fn kinds(&self) -> &'a [GateKind] {
        &self.plans.kinds[self.member_range()]
    }

    /// Packed fanin references of cone member `pos` (decode with
    /// [`FaninRef::decode`]). Empty for `pos == 0` (the site).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range for the cone.
    #[must_use]
    pub fn fanin_refs(&self, pos: usize) -> &'a [u32] {
        let range = self.member_range();
        assert!(pos < range.len(), "cone member {pos} out of range");
        let m = range.start + pos;
        &self.plans.fanin_refs
            [self.plans.member_fanin_off[m] as usize..self.plans.member_fanin_off[m + 1] as usize]
    }

    /// Reachable observe points as `(observe index, cone-local position
    /// of the observed signal)` pairs, ordered by observe index —
    /// the artifacts' observe order restricted to this cone.
    #[must_use]
    pub fn observe_refs(&self) -> &'a [(u32, u32)] {
        &self.plans.observe_refs[self.plans.observe_off[self.site] as usize
            ..self.plans.observe_off[self.site + 1] as usize]
    }

    /// `true` if no observe point is reachable from the site.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.observe_refs().is_empty()
    }

    /// Evaluation cost indicator: cone members plus fanin references —
    /// proportional to the work one EPP pass over this cone performs.
    #[must_use]
    pub fn cost(&self) -> usize {
        let range = self.member_range();
        let fanins = self.plans.member_fanin_off[range.end] as usize
            - self.plans.member_fanin_off[range.start] as usize;
        range.len() + fanins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::FanoutCone;
    use crate::parse::parse_bench;

    const FIG1: &str = "
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
D = AND(A, B)
G = AND(E, F)
H = OR(C, D, G)
";

    #[test]
    fn plans_match_fanout_cones() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert_eq!(plans.len(), c.len());
        for id in c.node_ids() {
            let plan = plans.plan(id);
            let cone = FanoutCone::extract(&c, id);
            // Same membership (plan is topo-sorted, cone id-sorted).
            let mut plan_members: Vec<NodeId> = plan.members().to_vec();
            plan_members.sort_unstable();
            assert_eq!(plan_members, cone.on_path(), "site {id}");
            assert_eq!(plan.members()[0], id, "site first");
            // Topological order.
            for w in plan.members().windows(2) {
                assert!(topo.position(w[0]) < topo.position(w[1]));
            }
            // Observe points match.
            assert_eq!(plan.observe_refs().len(), cone.observe_points().len());
            assert_eq!(plan.is_dead(), cone.is_dead());
            for &(obs, local) in plan.observe_refs() {
                let p = topo.observe_points()[obs as usize];
                assert_eq!(plan.members()[local as usize], p.signal());
            }
        }
    }

    #[test]
    fn fanin_classification_is_exact() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("A").unwrap();
        let plan = plans.plan(a);
        let cone = FanoutCone::extract(&c, a);
        for (pos, &member) in plan.members().iter().enumerate() {
            if pos == 0 {
                assert!(plan.fanin_refs(0).is_empty(), "site has no refs");
                continue;
            }
            let node = c.node(member);
            let refs = plan.fanin_refs(pos);
            assert_eq!(refs.len(), node.fanin().len(), "one ref per fanin pin");
            for (&raw, &f) in refs.iter().zip(node.fanin()) {
                match FaninRef::decode(raw) {
                    FaninRef::OnPath(local) => {
                        assert!(cone.contains(f), "{f} claimed on-path");
                        assert_eq!(plan.members()[local], f);
                    }
                    FaninRef::OffPath(idx) => {
                        assert!(!cone.contains(f), "{f} claimed off-path");
                        assert_eq!(idx, f.index());
                    }
                }
            }
        }
        // Fig. 1: H = OR(C, D, G) with C off-path, D and G on-path.
        let h_pos = plan
            .members()
            .iter()
            .position(|&m| m == c.find("H").unwrap())
            .unwrap();
        let decoded: Vec<FaninRef> = plan
            .fanin_refs(h_pos)
            .iter()
            .map(|&r| FaninRef::decode(r))
            .collect();
        assert!(matches!(decoded[0], FaninRef::OffPath(_)), "C off-path");
        assert!(matches!(decoded[1], FaninRef::OnPath(_)), "D on-path");
        assert!(matches!(decoded[2], FaninRef::OnPath(_)), "G on-path");
    }

    #[test]
    fn duplicate_fanin_pins_are_preserved() {
        // y = AND(a, a): the plan must carry two references to `a`.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "dup").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("a").unwrap();
        let plan = plans.plan(a);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fanin_refs(1), &[0, 0], "both pins resolve to local 0");
    }

    #[test]
    fn dff_clips_the_cone_but_is_observed() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(z)\ng = NOT(x)\nq = DFF(g)\nz = NOT(q)\n",
            "seq",
        )
        .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let x = c.find("x").unwrap();
        let plan = plans.plan(x);
        let member_names: Vec<&str> = plan.members().iter().map(|&m| c.node(m).name()).collect();
        assert_eq!(member_names, vec!["x", "g"], "cone stops at the DFF");
        assert_eq!(plan.observe_refs().len(), 1);
        let (obs, local) = plan.observe_refs()[0];
        assert!(topo.observe_points()[obs as usize].is_flip_flop());
        assert_eq!(c.node(plan.members()[local as usize]).name(), "g");
    }

    #[test]
    fn cost_counts_members_and_fanins() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("A").unwrap();
        // Cone {A, E, D, G, H}: 5 members; fanins E:1, D:2, G:2, H:3 = 8.
        assert_eq!(plans.plan(a).cost(), 13);
        assert!(plans.max_cone_len() >= 5);
        assert_eq!(
            plans.total_observe_refs(),
            c.node_ids()
                .map(|i| plans.plan(i).observe_refs().len())
                .sum::<usize>()
        );
    }

    #[test]
    fn bounded_build_declines_over_budget() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let full = ConePlans::build(&c, &topo);
        // A budget below the real total: declined.
        assert!(ConePlans::build_bounded(&c, &topo, full.total_members() - 1).is_none());
        // At or above the total: identical to the unbounded build.
        let bounded = ConePlans::build_bounded(&c, &topo, full.total_members()).unwrap();
        assert_eq!(bounded, full);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        // A chain with side inputs: 2,401 nodes (above the parallel
        // threshold), cone sizes from the whole chain down to 1.
        let stages = 1200;
        let mut src = String::from("INPUT(x0)\n");
        for i in 0..stages {
            src.push_str(&format!("INPUT(s{i})\n"));
        }
        src.push_str(&format!("OUTPUT(g{})\n", stages - 1));
        for i in 0..stages {
            let prev = if i == 0 {
                "x0".to_owned()
            } else {
                format!("g{}", i - 1)
            };
            src.push_str(&format!("g{i} = AND({prev}, s{i})\n"));
        }
        let c = parse_bench(&src, "chain").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let sequential = ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, 1).unwrap();
        for threads in [2, 4, 7] {
            let parallel =
                ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, threads).unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        // The budget decision is deterministic in parallel too: decline
        // below the true total, accept at it.
        let total = sequential.total_members();
        assert!(ConePlans::build_bounded_with_threads(&c, &topo, total - 1, 4).is_none());
        let at_budget = ConePlans::build_bounded_with_threads(&c, &topo, total, 4).unwrap();
        assert_eq!(at_budget, sequential);
    }

    #[test]
    fn empty_circuit_has_no_plans() {
        let c = crate::builder::CircuitBuilder::new("empty")
            .finish()
            .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert!(plans.is_empty());
        assert_eq!(plans.max_cone_len(), 0);
    }
}
