//! Precomputed per-site cone plans — the compiled form of the paper's
//! "path construction" step.
//!
//! The per-site EPP pass needs, for every error site: the DFF-clipped
//! fanout cone in topological order, each cone member's gate kind, and
//! each member fanin classified as **on-path** (it carries a four-value
//! tuple, addressed by its cone-local position) or **off-path** (it is
//! described by its signal probability, addressed by node id). The
//! legacy sweep rediscovered all of this per site per sweep — a DFS, a
//! sort and a per-fanin membership test. [`ConePlans`] computes it
//! **once per circuit** in one flat CSR-style arena, so a sweep kernel
//! degenerates to reading precomputed indices.
//!
//! # How the plans are built
//!
//! Cone *membership* is computed by a single **reverse-topological
//! pass** ([`MergedCones`]): walking nodes from the last topological
//! position down to the first, each node's cone is `{self}` followed by
//! the sorted-merge of its combinational successors' already-built
//! cones. Reachability over the DFF-clipped adjacency satisfies
//! `reach(v) = {v} ∪ ⋃_{s ∈ comb_fanout(v)} reach(s)`, every successor
//! cone is already a position-sorted list, and `v`'s position is
//! strictly below everything reachable from it — so one merge per node
//! replaces the per-site DFS *and* the per-site sort the original
//! builder paid. The classification pass (fanin on/off-path packing,
//! observe refs) then runs over contiguous site ranges exactly as
//! before, in parallel, stitched deterministically.
//!
//! The original per-site-DFS builder is retained as
//! [`ConePlans::build_reference`] — the semantic definition the
//! reverse-topological builder is proptest-checked to match bit for
//! bit (`tests/plan_builder.rs`), and the baseline the sweep benchmark
//! reports `plan_build_ms` against.

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::artifacts::TopoArtifacts;
use crate::circuit::{Circuit, NodeId};
use crate::gate::GateKind;

/// Bit marking a fanin reference as off-path (node index) rather than
/// on-path (cone-local index).
const OFF_PATH_BIT: u32 = 1 << 31;

/// One decoded fanin reference of a cone member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaninRef {
    /// The fanin is inside the cone: its value is the four-value tuple
    /// at this cone-local position.
    OnPath(usize),
    /// The fanin is outside the cone: its value is the signal
    /// probability of this node (by [`NodeId::index`]).
    OffPath(usize),
}

impl FaninRef {
    /// Decodes a packed reference.
    #[inline]
    #[must_use]
    pub fn decode(raw: u32) -> Self {
        if raw & OFF_PATH_BIT == 0 {
            FaninRef::OnPath(raw as usize)
        } else {
            FaninRef::OffPath((raw & !OFF_PATH_BIT) as usize)
        }
    }

    fn encode_on_path(local: u32) -> u32 {
        debug_assert_eq!(local & OFF_PATH_BIT, 0, "cone larger than 2^31");
        local
    }

    fn encode_off_path(node: NodeId) -> u32 {
        let idx = u32::try_from(node.index()).expect("node index fits u32");
        debug_assert_eq!(idx & OFF_PATH_BIT, 0, "circuit larger than 2^31 nodes");
        idx | OFF_PATH_BIT
    }
}

/// The compiled cone plans of every site of one circuit, stored as one
/// flat arena (no per-site allocation once built).
///
/// Layout: `members`/`kinds`/`member_fanin_off` are parallel arrays over
/// all cone members of all sites; `member_off` delimits each site's
/// slice. The site itself is always member 0 of its own cone and cone
/// members appear in topological order, so evaluating members
/// `1..len` in sequence visits every on-path gate after all of its
/// on-path fanins.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, FaninRef, TopoArtifacts};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let topo = TopoArtifacts::compute(&c)?;
/// let plans = topo.cone_plans(&c).expect("tiny circuit fits the plan budget");
/// let a = c.find("a").unwrap();
/// let plan = plans.plan(a);
/// assert_eq!(plan.len(), 2); // a itself plus the AND gate
/// // The AND gate reads one on-path fanin (a, cone-local 0) and one
/// // off-path fanin (b, by node id).
/// let refs: Vec<FaninRef> = plan.fanin_refs(1).iter().map(|&r| FaninRef::decode(r)).collect();
/// let b = c.find("b").unwrap();
/// assert!(refs.contains(&FaninRef::OnPath(0)));
/// assert!(refs.contains(&FaninRef::OffPath(b.index())));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConePlans {
    /// Per site: range `member_off[i]..member_off[i+1]` into the member
    /// arrays. Length `n + 1`.
    member_off: Vec<u32>,
    /// Cone members, site first, then the on-path gates in topological
    /// order.
    members: Vec<NodeId>,
    /// Gate kind per member (the site's own entry is present but unused
    /// by the kernel).
    kinds: Vec<GateKind>,
    /// Per member: range into `fanin_refs` (empty for each site's own
    /// entry). Length `members.len() + 1`.
    member_fanin_off: Vec<u32>,
    /// Packed fanin references (see [`FaninRef::decode`]), in fanin
    /// declaration order, duplicates preserved.
    fanin_refs: Vec<u32>,
    /// Per site: range into `observe_refs`. Length `n + 1`.
    observe_off: Vec<u32>,
    /// `(observe-point index, cone-local position of its signal)` pairs,
    /// ordered by observe-point index — the same order the artifacts'
    /// observe list has.
    observe_refs: Vec<(u32, u32)>,
    /// Largest cone size over all sites (workspace sizing).
    max_cone_len: usize,
}

impl ConePlans {
    /// Default budget for the total member count of one circuit's plan
    /// arena (~1.3 GB at ~20 bytes amortized per member). Sum-of-cones
    /// is Θ(n²) in the worst case (deep chain-dominated circuits), so
    /// consumers must be prepared for [`build_bounded`](Self::build_bounded)
    /// to decline and fall back to per-site traversal.
    pub const DEFAULT_MEMBER_BUDGET: usize = 1 << 26;

    /// Below this many sites the build runs on one thread: spawning
    /// workers would cost more than the per-site DFS loop it splits.
    const PARALLEL_BUILD_THRESHOLD: usize = 1024;

    /// How many contiguous site ranges the parallel build cuts per
    /// worker. Cone sizes are unknown up front, so oversubscription plus
    /// an atomic claim cursor is what balances the load.
    const CHUNKS_PER_THREAD: usize = 8;

    /// Builds the plans for every node of `circuit` with the
    /// reverse-topological builder: one merge pass over all cones, then
    /// a parallel classification pass. `topo` supplies the positions and
    /// the DFF-clipped fanout adjacency. The result is identical
    /// whatever the thread count, and bit-identical to
    /// [`build_reference`](Self::build_reference).
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build(circuit: &Circuit, topo: &TopoArtifacts) -> Self {
        Self::build_bounded(circuit, topo, usize::MAX).expect("unbounded build cannot decline")
    }

    /// Like [`build`](Self::build), but aborts and returns `None` as
    /// soon as the arena would exceed `max_members` total cone members —
    /// the guard that keeps pathological Θ(n²) circuits from exhausting
    /// memory (the per-site reference path handles them in O(n) scratch
    /// instead). Uses every available core on large circuits.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build_bounded(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
    ) -> Option<Self> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_bounded_with_threads(circuit, topo, max_members, threads)
    }

    /// [`build_bounded`](Self::build_bounded) with an explicit worker
    /// count.
    ///
    /// Phase 1 computes every cone's membership in one sequential
    /// reverse-topological merge pass (see the [module docs](self)) —
    /// this is where the member budget is enforced, and the decision is
    /// trivially deterministic (the pass is sequential and the total is
    /// scheduling-independent, exactly like the reference builder's
    /// shared counter). Phase 2 classifies fanins and packs the arena
    /// over contiguous site ranges claimed through an atomic cursor and
    /// stitched back in site order, so the arena is bit-identical to a
    /// single-threaded build — and to the per-site-DFS
    /// [`build_reference_bounded_with_threads`](Self::build_reference_bounded_with_threads).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or `topo` was not computed from
    /// `circuit`.
    #[must_use]
    pub fn build_bounded_with_threads(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
        threads: usize,
    ) -> Option<Self> {
        assert!(threads > 0, "at least one thread");
        assert_eq!(topo.len(), circuit.len(), "artifacts must cover every node");
        let cones = MergedCones::build(topo, max_members)?;
        Self::assemble(circuit, topo, Some(&cones), max_members, threads)
    }

    /// The original per-site-DFS builder, retained as the semantic
    /// reference: one DFS + one sort per site. The reverse-topological
    /// [`build`](Self::build) is proptest-checked to be bit-identical
    /// to this path; the sweep benchmark reports both builders' cost.
    ///
    /// # Panics
    ///
    /// Panics if `topo` was not computed from `circuit`.
    #[must_use]
    pub fn build_reference(circuit: &Circuit, topo: &TopoArtifacts) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::build_reference_bounded_with_threads(circuit, topo, usize::MAX, threads)
            .expect("unbounded build cannot decline")
    }

    /// [`build_reference`](Self::build_reference) with an explicit
    /// member budget and worker count — the per-site DFS loop is
    /// embarrassingly parallel: workers claim contiguous site ranges
    /// through an atomic cursor, build per-range plan fragments, and
    /// the fragments are stitched back in site order. The member budget
    /// is enforced globally through a shared counter; whether the build
    /// declines is deterministic (the total member count does not
    /// depend on scheduling).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or `topo` was not computed from
    /// `circuit`.
    #[must_use]
    pub fn build_reference_bounded_with_threads(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        max_members: usize,
        threads: usize,
    ) -> Option<Self> {
        assert!(threads > 0, "at least one thread");
        Self::assemble(circuit, topo, None, max_members, threads)
    }

    /// The shared classification-and-packing pass: derives each site's
    /// packed plan either from phase-1 [`MergedCones`] (the
    /// reverse-topological builder) or by per-site DFS + sort (the
    /// reference builder), over contiguous site ranges, in parallel,
    /// stitched deterministically.
    fn assemble(
        circuit: &Circuit,
        topo: &TopoArtifacts,
        cones: Option<&MergedCones>,
        max_members: usize,
        threads: usize,
    ) -> Option<Self> {
        let n = circuit.len();
        assert_eq!(topo.len(), n, "artifacts must cover every node");

        // Observe points indexed by observed signal, in observe order;
        // shared read-only by every worker.
        let observe = topo.observe_points();
        let mut obs_of_signal: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, p) in observe.iter().enumerate() {
            obs_of_signal[p.signal().index()].push(u32::try_from(i).expect("observe fits u32"));
        }

        let spent = AtomicUsize::new(0);
        let over_budget = AtomicBool::new(false);
        let budget = BuildBudget {
            max_members,
            spent: &spent,
            over_budget: &over_budget,
        };

        // The merged path packs through flat per-position tables; the
        // reference path walks `Node`s directly.
        let tables = cones.map(|_| PackTables::build(circuit, topo, &obs_of_signal));
        let run_range = |range: Range<usize>, scratch: &mut ChunkScratch| match (cones, &tables) {
            (Some(c), Some(t)) => build_chunk_merged(topo, c, t, range, &budget, scratch),
            _ => build_chunk_reference(circuit, topo, &obs_of_signal, range, &budget, scratch),
        };

        let chunks: Vec<PlanChunk> = if threads == 1 || n < Self::PARALLEL_BUILD_THRESHOLD {
            let mut scratch = ChunkScratch::new(n);
            vec![run_range(0..n, &mut scratch)?]
        } else {
            let chunk_len = n.div_ceil(threads * Self::CHUNKS_PER_THREAD).max(1);
            let ranges: Vec<Range<usize>> = (0..n)
                .step_by(chunk_len)
                .map(|start| start..(start + chunk_len).min(n))
                .collect();
            let cursor = AtomicUsize::new(0);
            let mut parts: Vec<(usize, PlanChunk)> = Vec::with_capacity(ranges.len());
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads.min(ranges.len()))
                    .map(|_| {
                        let cursor = &cursor;
                        let ranges = &ranges;
                        let budget = &budget;
                        let run_range = &run_range;
                        scope.spawn(move || {
                            // One scratch per worker, reused across every
                            // range it claims.
                            let mut scratch = ChunkScratch::new(n);
                            let mut built: Vec<(usize, PlanChunk)> = Vec::new();
                            loop {
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(range) = ranges.get(i).cloned() else {
                                    break;
                                };
                                if budget.exceeded() {
                                    break;
                                }
                                let Some(chunk) = run_range(range.clone(), &mut scratch) else {
                                    break;
                                };
                                built.push((range.start, chunk));
                            }
                            built
                        })
                    })
                    .collect();
                for h in handles {
                    parts.extend(h.join().expect("plan build worker panicked"));
                }
            });
            if budget.exceeded() {
                return None;
            }
            parts.sort_unstable_by_key(|&(start, _)| start);
            debug_assert_eq!(parts.len(), ranges.len(), "every range built");
            parts.into_iter().map(|(_, chunk)| chunk).collect()
        };

        // A single fragment (the sequential path) already is the final
        // arena — adopt its vectors instead of copying ~all of the plan
        // memory through the stitch loop.
        if chunks.len() == 1 {
            let chunk = chunks.into_iter().next().expect("one chunk");
            debug_assert_eq!(chunk.member_off.len(), n + 1);
            return Some(ConePlans {
                member_off: chunk.member_off,
                members: chunk.members,
                kinds: chunk.kinds,
                member_fanin_off: chunk.member_fanin_off,
                fanin_refs: chunk.fanin_refs,
                observe_off: chunk.observe_off,
                observe_refs: chunk.observe_refs,
                max_cone_len: chunk.max_cone_len,
            });
        }

        // Stitch the fragments in site order. Member and observe entries
        // are position-independent (fanin refs are cone-local or node
        // ids), so concatenation plus offset rebasing reproduces the
        // sequential arena exactly.
        let mut plans = ConePlans {
            member_off: Vec::with_capacity(n + 1),
            members: Vec::new(),
            kinds: Vec::new(),
            member_fanin_off: vec![0],
            fanin_refs: Vec::new(),
            observe_off: Vec::with_capacity(n + 1),
            observe_refs: Vec::new(),
            max_cone_len: 0,
        };
        plans.member_off.push(0);
        plans.observe_off.push(0);
        for chunk in chunks {
            let member_base = u32::try_from(plans.members.len()).expect("cone members fit u32");
            let fanin_base = u32::try_from(plans.fanin_refs.len()).expect("fanin refs fit u32");
            let observe_base =
                u32::try_from(plans.observe_refs.len()).expect("observe refs fit u32");
            plans.members.extend_from_slice(&chunk.members);
            plans.kinds.extend_from_slice(&chunk.kinds);
            plans.fanin_refs.extend_from_slice(&chunk.fanin_refs);
            plans.observe_refs.extend_from_slice(&chunk.observe_refs);
            plans
                .member_off
                .extend(chunk.member_off[1..].iter().map(|&o| o + member_base));
            plans
                .member_fanin_off
                .extend(chunk.member_fanin_off[1..].iter().map(|&o| o + fanin_base));
            plans
                .observe_off
                .extend(chunk.observe_off[1..].iter().map(|&o| o + observe_base));
            plans.max_cone_len = plans.max_cone_len.max(chunk.max_cone_len);
        }
        debug_assert_eq!(plans.member_off.len(), n + 1);
        Some(plans)
    }

    /// Number of sites covered (one plan per circuit node).
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_off.len() - 1
    }

    /// `true` for an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Largest cone size over all sites — the capacity a cone-local
    /// value plane needs.
    #[must_use]
    pub fn max_cone_len(&self) -> usize {
        self.max_cone_len
    }

    /// Total cone members over all sites (a memory/cost indicator).
    #[must_use]
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Total reachable observe points over all sites — the exact arena
    /// size a whole-circuit sweep's per-point results need.
    #[must_use]
    pub fn total_observe_refs(&self) -> usize {
        self.observe_refs.len()
    }

    /// The plan of one site.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range.
    #[must_use]
    pub fn plan(&self, site: NodeId) -> ConePlan<'_> {
        assert!(site.index() < self.len(), "site {site} out of range");
        ConePlan {
            plans: self,
            site: site.index(),
        }
    }
}

/// Per-topo-position lookup tables compiled once per build for the
/// packing pass — the flat-array form of everything the per-member
/// loop needs, so packing 9M+ cone members never chases a pointer into
/// a `Node`:
///
/// - the gate kind,
/// - each fanin pin as `(fanin topo position, pre-packed off-path
///   ref)` — the off-path encoding of a pin is site-independent, so it
///   is computed exactly once here; the packing loop only has to pick
///   between it and the cone-local on-path index,
/// - the observe-point indices of the position's signal.
struct PackTables {
    kind_by_pos: Vec<GateKind>,
    /// CSR offsets per position into `fanins`. Length `n + 1`.
    fanin_off: Vec<u32>,
    /// Fanin pins in declaration order, duplicates preserved.
    fanins: Vec<(u32, u32)>,
    /// CSR offsets per position into `observes`. Length `n + 1`.
    obs_off: Vec<u32>,
    /// Observe-point indices (the artifacts' observe order).
    observes: Vec<u32>,
    /// `(topo position of the observed signal, observe index)` in
    /// observe order — for the per-site scan strategy (see
    /// [`scan_observe_points`](Self::scan_observe_points)).
    obs_points: Vec<(u32, u32)>,
}

impl PackTables {
    fn build(circuit: &Circuit, topo: &TopoArtifacts, obs_of_signal: &[Vec<u32>]) -> Self {
        let n = circuit.len();
        let mut tables = PackTables {
            kind_by_pos: Vec::with_capacity(n),
            fanin_off: Vec::with_capacity(n + 1),
            fanins: Vec::new(),
            obs_off: Vec::with_capacity(n + 1),
            observes: Vec::new(),
            obs_points: Vec::new(),
        };
        tables.fanin_off.push(0);
        tables.obs_off.push(0);
        for &id in topo.order() {
            let node = circuit.node(id);
            tables.kind_by_pos.push(node.kind());
            for &f in node.fanin() {
                tables
                    .fanins
                    .push((topo.position(f), FaninRef::encode_off_path(f)));
            }
            tables
                .fanin_off
                .push(u32::try_from(tables.fanins.len()).expect("edge count fits u32"));
            tables
                .observes
                .extend_from_slice(&obs_of_signal[id.index()]);
            tables
                .obs_off
                .push(u32::try_from(tables.observes.len()).expect("observe refs fit u32"));
        }
        for (i, p) in topo.observe_points().iter().enumerate() {
            tables.obs_points.push((
                topo.position(p.signal()),
                u32::try_from(i).expect("observe fits u32"),
            ));
        }
        tables
    }

    fn fanins_of(&self, pos: usize) -> &[(u32, u32)] {
        &self.fanins[self.fanin_off[pos] as usize..self.fanin_off[pos + 1] as usize]
    }

    fn observes_of(&self, pos: usize) -> &[u32] {
        &self.observes[self.obs_off[pos] as usize..self.obs_off[pos + 1] as usize]
    }

    /// Chooses how a chunk's reachable observe points are gathered —
    /// the two strategies emit identical refs (observe order), they
    /// only differ in cost:
    ///
    /// - **scan** (`true`): walk the circuit's observe-point list once
    ///   per site testing cone membership — `O(sites × observe points)`
    ///   for the chunk, already sorted;
    /// - **probe** (`false`): consult the per-position CSR for every
    ///   cone member, then sort — `O(chunk members)`, the right choice
    ///   for observe-dense circuits (e.g. deep DFF pipelines).
    ///
    /// Both costs are chunk-local (`sites` is the chunk's site count,
    /// `total_members` its member total), so parallel builds make the
    /// same per-chunk choice a sequential build would.
    fn scan_observe_points(&self, sites: usize, total_members: usize) -> bool {
        (self.obs_points.len() as u64) * (sites as u64) < total_members as u64
    }
}

/// Phase-1 output of the reverse-topological builder: every site's
/// DFF-clipped cone as a list of **ascending topological positions**,
/// in one flat arena indexed by topological position.
///
/// Built back-to-front: when position `p` is processed, every
/// combinational successor (all at positions `> p`) already has its
/// cone in the arena, so `p`'s cone is `[p]` followed by the
/// duplicate-free sorted merge of the successors' cones. A single
/// successor degenerates to a `memcpy` (`extend_from_within`), which is
/// the overwhelmingly common case in gate-level netlists.
struct MergedCones {
    /// Per topo position: start of the cone's slice in `members_by_pos`.
    start: Vec<u32>,
    /// Per topo position: end of that slice.
    end: Vec<u32>,
    /// All cones, concatenated in build (reverse-topological) order.
    members_by_pos: Vec<u32>,
}

impl MergedCones {
    /// One site's cone as ascending topological positions (the site's
    /// own position first).
    fn cone(&self, pos: usize) -> &[u32] {
        &self.members_by_pos[self.cone_range(pos)]
    }

    /// The arena slice of one site's cone — the same indices address
    /// the [`ArenaTranslations`] arrays.
    fn cone_range(&self, pos: usize) -> Range<usize> {
        self.start[pos] as usize..self.end[pos] as usize
    }

    /// Runs the reverse-topological merge pass. Returns `None` as soon
    /// as the arena exceeds `max_members` total cone members — the same
    /// deterministic decision as the reference builder's shared
    /// counter, since the total is a property of the circuit alone.
    fn build(topo: &TopoArtifacts, max_members: usize) -> Option<Self> {
        let n = topo.len();
        let order = topo.order();
        let mut start = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut members: Vec<u32> = Vec::with_capacity(n);
        // Scratch for the ≥2-successor merge; reused across nodes.
        let mut merge_buf: Vec<u32> = Vec::new();
        let mut heads: Vec<(usize, usize)> = Vec::new();
        for p in (0..n).rev() {
            let cone_start = members.len();
            members.push(u32::try_from(p).expect("node count fits u32"));
            let succs = topo.comb_fanout(order[p]);
            match succs.len() {
                0 => {}
                1 => {
                    let sp = topo.position(succs[0]) as usize;
                    members.extend_from_within(start[sp] as usize..end[sp] as usize);
                }
                2 => {
                    // The most common multi-successor shape gets a
                    // tight two-pointer merge with dedup.
                    let ap = topo.position(succs[0]) as usize;
                    let bp = topo.position(succs[1]) as usize;
                    merge_buf.clear();
                    let (mut i, ae) = (start[ap] as usize, end[ap] as usize);
                    let (mut j, be) = (start[bp] as usize, end[bp] as usize);
                    while i < ae && j < be {
                        let (a, b) = (members[i], members[j]);
                        merge_buf.push(a.min(b));
                        i += usize::from(a <= b);
                        j += usize::from(b <= a);
                    }
                    members.extend_from_slice(&merge_buf);
                    // At most one tail remains; it is disjoint and
                    // sorted, so it concatenates by straight copy.
                    if i < ae {
                        members.extend_from_within(i..ae);
                    } else if j < be {
                        members.extend_from_within(j..be);
                    }
                }
                _ => {
                    // K-way merge with dedup over the successors' sorted
                    // position lists. K is the fanout degree (small);
                    // every head equal to the minimum advances together,
                    // which is what collapses reconvergent overlap.
                    merge_buf.clear();
                    heads.clear();
                    heads.extend(succs.iter().map(|&s| {
                        let sp = topo.position(s) as usize;
                        (start[sp] as usize, end[sp] as usize)
                    }));
                    loop {
                        let mut min: Option<u32> = None;
                        for &(cur, e) in &heads {
                            if cur < e {
                                let v = members[cur];
                                min = Some(min.map_or(v, |m| m.min(v)));
                            }
                        }
                        let Some(m) = min else { break };
                        merge_buf.push(m);
                        for (cur, e) in &mut heads {
                            if *cur < *e && members[*cur] == m {
                                *cur += 1;
                            }
                        }
                    }
                    members.extend_from_slice(&merge_buf);
                }
            }
            if members.len() > max_members {
                return None;
            }
            start[p] = u32::try_from(cone_start).expect("cone members fit u32");
            end[p] = u32::try_from(members.len()).expect("cone members fit u32");
        }
        Some(MergedCones {
            start,
            end,
            members_by_pos: members,
        })
    }
}

/// One contiguous site range's share of the plan arena, with offsets
/// local to the fragment (rebased during the stitch). All payload
/// entries — members, kinds, fanin refs (cone-local or node-id), and
/// observe refs — are position-independent, which is what makes the
/// parallel build's concatenation exact.
struct PlanChunk {
    member_off: Vec<u32>,
    members: Vec<NodeId>,
    kinds: Vec<GateKind>,
    member_fanin_off: Vec<u32>,
    fanin_refs: Vec<u32>,
    observe_off: Vec<u32>,
    observe_refs: Vec<(u32, u32)>,
    max_cone_len: usize,
}

impl PlanChunk {
    /// An empty fragment with offset rows opened for `sites` sites.
    fn with_site_capacity(sites: usize) -> Self {
        let mut chunk = PlanChunk {
            member_off: Vec::with_capacity(sites + 1),
            members: Vec::new(),
            kinds: Vec::new(),
            member_fanin_off: vec![0],
            fanin_refs: Vec::new(),
            observe_off: Vec::with_capacity(sites + 1),
            observe_refs: Vec::new(),
            max_cone_len: 0,
        };
        chunk.member_off.push(0);
        chunk.observe_off.push(0);
        chunk
    }

    /// Flushes one site's gathered observe refs (sorted into the
    /// artifacts' observe order) and closes its offset rows.
    fn finish_site(&mut self, site_obs: &mut [(u32, u32)]) {
        site_obs.sort_unstable();
        self.observe_refs.extend_from_slice(site_obs);
        self.close_site_offsets();
    }

    /// Closes one site's offset rows (observe refs already emitted).
    fn close_site_offsets(&mut self) {
        self.member_off
            .push(u32::try_from(self.members.len()).expect("cone members fit u32"));
        self.observe_off
            .push(u32::try_from(self.observe_refs.len()).expect("observe refs fit u32"));
    }
}

/// Per-worker scratch for the chunked plan build: epoch-stamped
/// membership, the node → cone-local map and the traversal buffers,
/// allocated **once per worker** and reused across every range the
/// worker claims (the epoch counter carries over, invalidating old
/// stamps in O(1) exactly like the per-site sweep workspace).
struct ChunkScratch {
    stamp: Vec<u32>,
    local: Vec<u32>,
    /// The merged path's combined membership + cone-local map, indexed
    /// by topological position: `epoch << 32 | local`, so one L1 read
    /// answers both "is this fanin on-path?" and "at which index?".
    stamp_local: Vec<u64>,
    epoch: u32,
    cone: Vec<NodeId>,
    stack: Vec<NodeId>,
    site_obs: Vec<(u32, u32)>,
}

impl ChunkScratch {
    fn new(n: usize) -> Self {
        ChunkScratch {
            stamp: vec![0u32; n],
            local: vec![0u32; n],
            stamp_local: vec![0u64; n],
            epoch: 0,
            cone: Vec::new(),
            stack: Vec::new(),
            site_obs: Vec::new(),
        }
    }
}

/// Shared member-budget accounting for the chunked build.
struct BuildBudget<'a> {
    max_members: usize,
    spent: &'a AtomicUsize,
    over_budget: &'a AtomicBool,
}

impl BuildBudget<'_> {
    /// Charges one cone's members; `false` means the arena just
    /// exceeded the budget (the flag is raised so sibling workers stop
    /// early). The accumulated total is order-independent, so whether
    /// the overall build declines is deterministic.
    fn charge(&self, members: usize) -> bool {
        let charged = self.spent.fetch_add(members, Ordering::Relaxed);
        if charged + members > self.max_members {
            self.over_budget.store(true, Ordering::Relaxed);
            return false;
        }
        true
    }

    fn exceeded(&self) -> bool {
        self.over_budget.load(Ordering::Relaxed)
    }
}

/// Builds the plan fragment for `sites` (a contiguous id range) with
/// the per-site-DFS reference discovery: DFS over the DFF-clipped
/// fanout adjacency, sort by topological position, classify fanins
/// against the epoch-stamped membership. Charges every cone against
/// the shared member budget and returns `None` on overflow.
fn build_chunk_reference(
    circuit: &Circuit,
    topo: &TopoArtifacts,
    obs_of_signal: &[Vec<u32>],
    sites: Range<usize>,
    budget: &BuildBudget<'_>,
    scratch: &mut ChunkScratch,
) -> Option<PlanChunk> {
    let mut chunk = PlanChunk::with_site_capacity(sites.len());

    let ChunkScratch {
        stamp,
        local,
        epoch,
        cone,
        stack,
        site_obs,
        ..
    } = scratch;

    for site_idx in sites {
        let site = NodeId::from_index(site_idx);
        // New epoch: previous stamps invalidate in O(1). On wrap, reset.
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamp.fill(0);
            *epoch = 1;
        }
        let epoch = *epoch;

        // DFS over the DFF-clipped fanout adjacency.
        cone.clear();
        stack.clear();
        stamp[site_idx] = epoch;
        cone.push(site);
        stack.push(site);
        while let Some(id) = stack.pop() {
            for &succ in topo.comb_fanout(id) {
                if stamp[succ.index()] != epoch {
                    stamp[succ.index()] = epoch;
                    cone.push(succ);
                    stack.push(succ);
                }
            }
        }
        // Topological order within the cone (positions are a total
        // order, so this matches any stable per-site re-sort).
        cone.sort_unstable_by_key(|id| topo.position(*id));
        debug_assert_eq!(cone[0], site, "site orders first in its own cone");
        if !budget.charge(cone.len()) {
            return None;
        }
        chunk.max_cone_len = chunk.max_cone_len.max(cone.len());

        for (pos, &id) in cone.iter().enumerate() {
            local[id.index()] = u32::try_from(pos).expect("cone fits u32");
        }
        site_obs.clear();
        for (pos, &id) in cone.iter().enumerate() {
            let node = circuit.node(id);
            chunk.members.push(id);
            chunk.kinds.push(node.kind());
            if pos > 0 {
                debug_assert!(
                    node.kind().is_logic(),
                    "on-path non-site nodes are logic gates"
                );
                for &f in node.fanin() {
                    chunk.fanin_refs.push(if stamp[f.index()] == epoch {
                        FaninRef::encode_on_path(local[f.index()])
                    } else {
                        FaninRef::encode_off_path(f)
                    });
                }
            }
            chunk
                .member_fanin_off
                .push(u32::try_from(chunk.fanin_refs.len()).expect("fanin refs fit u32"));
            for &obs in &obs_of_signal[id.index()] {
                site_obs.push((obs, u32::try_from(pos).expect("cone fits u32")));
            }
        }
        chunk.finish_site(site_obs);
    }
    Some(chunk)
}

/// Builds the plan fragment for `sites` (a contiguous id range) from
/// the phase-1 [`MergedCones`] arena and the flat [`PackTables`] — the
/// reverse-topological builder’s packing pass.
///
/// One **fused pass** per cone does everything: stamp membership,
/// emit the member/kind rows, and classify + emit the member's fanin
/// refs. The fusion is sound because cones are sorted by topological
/// position and every fanin's position is strictly below its
/// consumer's — so by the time a member's pins are classified, every
/// pin that *can* be on-path has already been stamped earlier in this
/// same pass. Per member the loop touches only flat arrays indexed by
/// topological position (it never walks a `Node`); membership and the
/// cone-local index live in **one** epoch-stamped `u64` per position
/// (`epoch << 32 | local`), so classification is a single L1 read; and
/// every output vector is reserved up front from the phase-1 cone
/// sizes so the packing runs realloc-free.
fn build_chunk_merged(
    topo: &TopoArtifacts,
    cones: &MergedCones,
    tables: &PackTables,
    sites: Range<usize>,
    budget: &BuildBudget<'_>,
    scratch: &mut ChunkScratch,
) -> Option<PlanChunk> {
    let mut chunk = PlanChunk::with_site_capacity(sites.len());
    let order = topo.order();

    // Exact member total for this range (phase 1 knows every cone
    // size), plus a density-based estimate for the fanin refs.
    let total: usize = sites
        .clone()
        .map(|site_idx| {
            cones
                .cone_range(topo.position(NodeId::from_index(site_idx)) as usize)
                .len()
        })
        .sum();
    chunk.members.reserve_exact(total);
    chunk.kinds.reserve_exact(total);
    chunk.member_fanin_off.reserve_exact(total);
    // Cone members skew toward logic gates, whose degree exceeds the
    // all-nodes average (sources have none) — reserve with headroom so
    // the hot loop never triggers a multi-ten-MB realloc copy.
    let n = tables.kind_by_pos.len().max(1);
    chunk
        .fanin_refs
        .reserve(total * tables.fanins.len() * 2 / n + 16);
    let scan_observe = tables.scan_observe_points(sites.len(), total);

    let ChunkScratch {
        stamp_local,
        epoch,
        site_obs,
        ..
    } = scratch;

    for site_idx in sites {
        let site = NodeId::from_index(site_idx);
        // New epoch: previous stamps invalidate in O(1). On wrap, reset.
        *epoch = epoch.wrapping_add(1);
        if *epoch == 0 {
            stamp_local.fill(0);
            *epoch = 1;
        }
        let epoch = u64::from(*epoch) << 32;

        let cone = cones.cone(topo.position(site) as usize);
        debug_assert_eq!(order[cone[0] as usize], site, "site first in cone");
        if !budget.charge(cone.len()) {
            return None;
        }
        chunk.max_cone_len = chunk.max_cone_len.max(cone.len());

        // Stamp membership + the position → cone-local map: one u64
        // write per member.
        for (pos, &p) in cone.iter().enumerate() {
            stamp_local[p as usize] = epoch | pos as u64;
        }
        // Members and kinds as exact-size `extend`s (no per-item
        // capacity checks — the iterator length is trusted).
        chunk
            .members
            .extend(cone.iter().map(|&p| order[p as usize]));
        chunk
            .kinds
            .extend(cone.iter().map(|&p| tables.kind_by_pos[p as usize]));
        // The site itself (member 0) carries no fanin refs; per further
        // member, classify its pins straight off the CSR — the
        // off-path packed ref was precomputed once per pin; on-path
        // pins read the cone-local half of the stamp word.
        chunk
            .member_fanin_off
            .push(u32::try_from(chunk.fanin_refs.len()).expect("fanin refs fit u32"));
        for &p in &cone[1..] {
            let p = p as usize;
            debug_assert!(
                tables.kind_by_pos[p].is_logic(),
                "on-path non-site nodes are logic gates"
            );
            for &(pf, off_ref) in tables.fanins_of(p) {
                let sl = stamp_local[pf as usize];
                chunk.fanin_refs.push(if sl & !0xFFFF_FFFF == epoch {
                    FaninRef::encode_on_path(sl as u32)
                } else {
                    off_ref
                });
            }
            chunk
                .member_fanin_off
                .push(u32::try_from(chunk.fanin_refs.len()).expect("fanin refs fit u32"));
        }
        if scan_observe {
            // Observe-sparse circuits: test each observe point against
            // the cone instead of probing the CSR per member. Walking
            // the observe list in order emits the refs already sorted.
            for &(pos, obs) in &tables.obs_points {
                let sl = stamp_local[pos as usize];
                if sl & !0xFFFF_FFFF == epoch {
                    chunk.observe_refs.push((obs, sl as u32));
                }
            }
            chunk.close_site_offsets();
        } else {
            // Observe-dense circuits: gather per member off the CSR,
            // then sort into observe order.
            site_obs.clear();
            for (pos, &p) in cone.iter().enumerate() {
                for &obs in tables.observes_of(p as usize) {
                    site_obs.push((obs, u32::try_from(pos).expect("cone fits u32")));
                }
            }
            chunk.finish_site(site_obs);
        }
    }
    Some(chunk)
}

/// A borrowed view of one site's cone plan inside [`ConePlans`].
#[derive(Debug, Clone, Copy)]
pub struct ConePlan<'a> {
    plans: &'a ConePlans,
    site: usize,
}

impl<'a> ConePlan<'a> {
    /// The error site this plan was compiled for.
    #[must_use]
    pub fn site(&self) -> NodeId {
        NodeId::from_index(self.site)
    }

    fn member_range(&self) -> std::ops::Range<usize> {
        self.plans.member_off[self.site] as usize..self.plans.member_off[self.site + 1] as usize
    }

    /// Number of cone members (site included); at least 1.
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_range().len()
    }

    /// Always `false`: a cone contains at least its site.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Cone members in topological order; `members()[0]` is the site.
    #[must_use]
    pub fn members(&self) -> &'a [NodeId] {
        &self.plans.members[self.member_range()]
    }

    /// Gate kinds parallel to [`members`](Self::members).
    #[must_use]
    pub fn kinds(&self) -> &'a [GateKind] {
        &self.plans.kinds[self.member_range()]
    }

    /// Packed fanin references of cone member `pos` (decode with
    /// [`FaninRef::decode`]). Empty for `pos == 0` (the site).
    ///
    /// # Panics
    ///
    /// Panics if `pos` is out of range for the cone.
    #[must_use]
    pub fn fanin_refs(&self, pos: usize) -> &'a [u32] {
        let range = self.member_range();
        assert!(pos < range.len(), "cone member {pos} out of range");
        let m = range.start + pos;
        &self.plans.fanin_refs
            [self.plans.member_fanin_off[m] as usize..self.plans.member_fanin_off[m + 1] as usize]
    }

    /// Reachable observe points as `(observe index, cone-local position
    /// of the observed signal)` pairs, ordered by observe index —
    /// the artifacts' observe order restricted to this cone.
    #[must_use]
    pub fn observe_refs(&self) -> &'a [(u32, u32)] {
        &self.plans.observe_refs[self.plans.observe_off[self.site] as usize
            ..self.plans.observe_off[self.site + 1] as usize]
    }

    /// `true` if no observe point is reachable from the site.
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.observe_refs().is_empty()
    }

    /// Evaluation cost indicator: cone members plus fanin references —
    /// proportional to the work one EPP pass over this cone performs.
    #[must_use]
    pub fn cost(&self) -> usize {
        let range = self.member_range();
        let fanins = self.plans.member_fanin_off[range.end] as usize
            - self.plans.member_fanin_off[range.start] as usize;
        range.len() + fanins
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::FanoutCone;
    use crate::parse::parse_bench;

    const FIG1: &str = "
INPUT(A)
INPUT(B)
INPUT(C)
INPUT(F)
OUTPUT(H)
E = NOT(A)
D = AND(A, B)
G = AND(E, F)
H = OR(C, D, G)
";

    #[test]
    fn plans_match_fanout_cones() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert_eq!(plans.len(), c.len());
        for id in c.node_ids() {
            let plan = plans.plan(id);
            let cone = FanoutCone::extract(&c, id);
            // Same membership (plan is topo-sorted, cone id-sorted).
            let mut plan_members: Vec<NodeId> = plan.members().to_vec();
            plan_members.sort_unstable();
            assert_eq!(plan_members, cone.on_path(), "site {id}");
            assert_eq!(plan.members()[0], id, "site first");
            // Topological order.
            for w in plan.members().windows(2) {
                assert!(topo.position(w[0]) < topo.position(w[1]));
            }
            // Observe points match.
            assert_eq!(plan.observe_refs().len(), cone.observe_points().len());
            assert_eq!(plan.is_dead(), cone.is_dead());
            for &(obs, local) in plan.observe_refs() {
                let p = topo.observe_points()[obs as usize];
                assert_eq!(plan.members()[local as usize], p.signal());
            }
        }
    }

    #[test]
    fn fanin_classification_is_exact() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("A").unwrap();
        let plan = plans.plan(a);
        let cone = FanoutCone::extract(&c, a);
        for (pos, &member) in plan.members().iter().enumerate() {
            if pos == 0 {
                assert!(plan.fanin_refs(0).is_empty(), "site has no refs");
                continue;
            }
            let node = c.node(member);
            let refs = plan.fanin_refs(pos);
            assert_eq!(refs.len(), node.fanin().len(), "one ref per fanin pin");
            for (&raw, &f) in refs.iter().zip(node.fanin()) {
                match FaninRef::decode(raw) {
                    FaninRef::OnPath(local) => {
                        assert!(cone.contains(f), "{f} claimed on-path");
                        assert_eq!(plan.members()[local], f);
                    }
                    FaninRef::OffPath(idx) => {
                        assert!(!cone.contains(f), "{f} claimed off-path");
                        assert_eq!(idx, f.index());
                    }
                }
            }
        }
        // Fig. 1: H = OR(C, D, G) with C off-path, D and G on-path.
        let h_pos = plan
            .members()
            .iter()
            .position(|&m| m == c.find("H").unwrap())
            .unwrap();
        let decoded: Vec<FaninRef> = plan
            .fanin_refs(h_pos)
            .iter()
            .map(|&r| FaninRef::decode(r))
            .collect();
        assert!(matches!(decoded[0], FaninRef::OffPath(_)), "C off-path");
        assert!(matches!(decoded[1], FaninRef::OnPath(_)), "D on-path");
        assert!(matches!(decoded[2], FaninRef::OnPath(_)), "G on-path");
    }

    #[test]
    fn duplicate_fanin_pins_are_preserved() {
        // y = AND(a, a): the plan must carry two references to `a`.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n", "dup").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("a").unwrap();
        let plan = plans.plan(a);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fanin_refs(1), &[0, 0], "both pins resolve to local 0");
    }

    #[test]
    fn dff_clips_the_cone_but_is_observed() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(z)\ng = NOT(x)\nq = DFF(g)\nz = NOT(q)\n",
            "seq",
        )
        .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let x = c.find("x").unwrap();
        let plan = plans.plan(x);
        let member_names: Vec<&str> = plan.members().iter().map(|&m| c.node(m).name()).collect();
        assert_eq!(member_names, vec!["x", "g"], "cone stops at the DFF");
        assert_eq!(plan.observe_refs().len(), 1);
        let (obs, local) = plan.observe_refs()[0];
        assert!(topo.observe_points()[obs as usize].is_flip_flop());
        assert_eq!(c.node(plan.members()[local as usize]).name(), "g");
    }

    #[test]
    fn cost_counts_members_and_fanins() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        let a = c.find("A").unwrap();
        // Cone {A, E, D, G, H}: 5 members; fanins E:1, D:2, G:2, H:3 = 8.
        assert_eq!(plans.plan(a).cost(), 13);
        assert!(plans.max_cone_len() >= 5);
        assert_eq!(
            plans.total_observe_refs(),
            c.node_ids()
                .map(|i| plans.plan(i).observe_refs().len())
                .sum::<usize>()
        );
    }

    #[test]
    fn bounded_build_declines_over_budget() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let full = ConePlans::build(&c, &topo);
        // A budget below the real total: declined.
        assert!(ConePlans::build_bounded(&c, &topo, full.total_members() - 1).is_none());
        // At or above the total: identical to the unbounded build.
        let bounded = ConePlans::build_bounded(&c, &topo, full.total_members()).unwrap();
        assert_eq!(bounded, full);
    }

    #[test]
    fn parallel_build_is_identical_to_sequential() {
        // A chain with side inputs: 2,401 nodes (above the parallel
        // threshold), cone sizes from the whole chain down to 1.
        let stages = 1200;
        let mut src = String::from("INPUT(x0)\n");
        for i in 0..stages {
            src.push_str(&format!("INPUT(s{i})\n"));
        }
        src.push_str(&format!("OUTPUT(g{})\n", stages - 1));
        for i in 0..stages {
            let prev = if i == 0 {
                "x0".to_owned()
            } else {
                format!("g{}", i - 1)
            };
            src.push_str(&format!("g{i} = AND({prev}, s{i})\n"));
        }
        let c = parse_bench(&src, "chain").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let sequential = ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, 1).unwrap();
        for threads in [2, 4, 7] {
            let parallel =
                ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, threads).unwrap();
            assert_eq!(parallel, sequential, "{threads} threads");
        }
        // The budget decision is deterministic in parallel too: decline
        // below the true total, accept at it.
        let total = sequential.total_members();
        assert!(ConePlans::build_bounded_with_threads(&c, &topo, total - 1, 4).is_none());
        let at_budget = ConePlans::build_bounded_with_threads(&c, &topo, total, 4).unwrap();
        assert_eq!(at_budget, sequential);
    }

    #[test]
    fn reverse_topo_matches_reference_builder() {
        // The merge builder and the DFS reference must agree bit for
        // bit — including on duplicate fanin pins, DFF clipping and
        // multi-successor reconvergence.
        for (name, src) in [
            ("fig1", FIG1),
            ("dup", "INPUT(a)\nOUTPUT(y)\ny = AND(a, a)\n"),
            ("seq", "INPUT(x)\nOUTPUT(z)\ng = NOT(x)\nq = DFF(g)\nz = NOT(q)\n"),
            (
                "reconv",
                "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nu = NOT(a)\nv = NAND(a, b)\nw = XOR(u, v)\ny = OR(w, u)\n",
            ),
        ] {
            let c = parse_bench(src, name).unwrap();
            let topo = TopoArtifacts::compute(&c).unwrap();
            let reference = ConePlans::build_reference(&c, &topo);
            for threads in [1, 3] {
                let merged =
                    ConePlans::build_bounded_with_threads(&c, &topo, usize::MAX, threads).unwrap();
                assert_eq!(merged, reference, "{name} ({threads} threads)");
            }
        }
    }

    #[test]
    fn reference_builder_budget_decision_matches() {
        let c = parse_bench(FIG1, "fig1").unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let total = ConePlans::build(&c, &topo).total_members();
        for threads in [1, 4] {
            assert!(
                ConePlans::build_reference_bounded_with_threads(&c, &topo, total - 1, threads)
                    .is_none(),
                "reference declines below the true total"
            );
            assert!(
                ConePlans::build_bounded_with_threads(&c, &topo, total - 1, threads).is_none(),
                "merge builder declines below the true total"
            );
            assert_eq!(
                ConePlans::build_reference_bounded_with_threads(&c, &topo, total, threads),
                ConePlans::build_bounded_with_threads(&c, &topo, total, threads),
                "both accept at the exact total"
            );
        }
    }

    #[test]
    fn empty_circuit_has_no_plans() {
        let c = crate::builder::CircuitBuilder::new("empty")
            .finish()
            .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        assert!(plans.is_empty());
        assert_eq!(plans.max_cone_len(), 0);
    }
}
