//! Error types for netlist construction and parsing.

use std::error::Error;
use std::fmt;

/// Errors produced while building or analyzing a [`Circuit`](crate::Circuit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate refers to a signal name that was never defined.
    UndefinedSignal {
        /// Name of the missing signal.
        name: String,
    },
    /// The same signal name was defined more than once.
    DuplicateSignal {
        /// Name of the signal that was redefined.
        name: String,
    },
    /// A gate was declared with an arity its kind does not allow
    /// (e.g. a two-input NOT).
    BadArity {
        /// The offending gate's output signal name.
        name: String,
        /// The gate kind as written.
        kind: String,
        /// Number of inputs supplied.
        got: usize,
    },
    /// The combinational portion of the circuit contains a cycle
    /// (a loop not broken by a flip-flop).
    CombinationalCycle {
        /// Name of one signal on the cycle.
        witness: String,
    },
    /// An `OUTPUT(x)` declaration refers to a signal never driven.
    UndrivenOutput {
        /// Name of the undriven output.
        name: String,
    },
    /// A node id was used with a circuit it does not belong to.
    InvalidNodeId {
        /// The raw index.
        index: usize,
        /// Number of nodes in the circuit.
        len: usize,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::UndefinedSignal { name } => {
                write!(f, "undefined signal `{name}`")
            }
            NetlistError::DuplicateSignal { name } => {
                write!(f, "signal `{name}` defined more than once")
            }
            NetlistError::BadArity { name, kind, got } => {
                write!(f, "gate `{name}` of kind {kind} cannot take {got} input(s)")
            }
            NetlistError::CombinationalCycle { witness } => {
                write!(f, "combinational cycle through signal `{witness}`")
            }
            NetlistError::UndrivenOutput { name } => {
                write!(f, "output `{name}` is never driven")
            }
            NetlistError::InvalidNodeId { index, len } => {
                write!(
                    f,
                    "node id {index} out of range for circuit with {len} nodes"
                )
            }
        }
    }
}

impl Error for NetlistError {}

/// Errors produced while parsing an ISCAS `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be recognized as a comment, declaration or gate.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// An unknown gate kind keyword was used.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The keyword as written.
        kind: String,
    },
    /// The netlist was syntactically fine but semantically invalid.
    Semantic(NetlistError),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Syntax { line, text } => {
                write!(f, "syntax error on line {line}: `{text}`")
            }
            ParseError::UnknownGate { line, kind } => {
                write!(f, "unknown gate kind `{kind}` on line {line}")
            }
            ParseError::Semantic(e) => write!(f, "invalid netlist: {e}"),
        }
    }
}

impl Error for ParseError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseError::Semantic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for ParseError {
    fn from(e: NetlistError) -> Self {
        ParseError::Semantic(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_undefined_signal() {
        let e = NetlistError::UndefinedSignal { name: "G7".into() };
        assert_eq!(e.to_string(), "undefined signal `G7`");
    }

    #[test]
    fn display_bad_arity() {
        let e = NetlistError::BadArity {
            name: "n1".into(),
            kind: "NOT".into(),
            got: 2,
        };
        assert!(e.to_string().contains("NOT"));
        assert!(e.to_string().contains('2'));
    }

    #[test]
    fn parse_error_wraps_netlist_error() {
        let inner = NetlistError::DuplicateSignal { name: "x".into() };
        let e: ParseError = inner.clone().into();
        assert_eq!(e, ParseError::Semantic(inner));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
        assert_send_sync::<ParseError>();
    }
}
