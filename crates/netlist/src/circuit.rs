//! The gate-level circuit arena.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::gate::GateKind;

/// Index of a node inside one [`Circuit`]'s arena.
///
/// Node ids are dense (`0..circuit.len()`), stable for the lifetime of the
/// circuit, and meaningless across circuits. They index plain `Vec`s, which
/// is what makes the per-node traversal kernels of the EPP engine cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node id from a raw index.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("circuit larger than u32::MAX nodes"))
    }

    /// The raw index, for use with slices sized `circuit.len()`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of the circuit: a primary input, flip-flop, constant or gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<NodeId>,
    pub(crate) fanout: Vec<NodeId>,
}

impl Node {
    /// The node's signal name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Fanin node ids, in declaration order. For a [`GateKind::Dff`] this
    /// is the single D-pin driver.
    #[must_use]
    pub fn fanin(&self) -> &[NodeId] {
        &self.fanin
    }

    /// Fanout node ids (every node that lists this one in its fanin),
    /// in ascending id order. A node driving `k` pins of the same gate
    /// appears `k` times, mirroring the multiplicity of edges.
    #[must_use]
    pub fn fanout(&self) -> &[NodeId] {
        &self.fanout
    }
}

/// A gate-level sequential circuit.
///
/// The arena holds every signal as a [`Node`]; primary inputs and D
/// flip-flops are node kinds. Primary outputs are a *list of node ids*
/// (the `.bench` format marks existing signals as outputs rather than
/// introducing new nodes).
///
/// For combinational analyses (signal probability, EPP, bit-parallel
/// simulation) the circuit is viewed as a DAG whose **sources** are
/// primary inputs, flip-flop outputs (Q) and constants, and whose
/// **sinks** are primary outputs and flip-flop inputs (D). The paper's
/// `P_sensitized` counts propagation to either kind of sink.
///
/// # Examples
///
/// ```
/// use ser_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("toy");
/// let a = b.input("a");
/// let bb = b.input("b");
/// let g = b.gate("g", GateKind::And, &[a, bb]);
/// b.mark_output(g);
/// let c = b.finish().unwrap();
/// assert_eq!(c.num_inputs(), 2);
/// assert_eq!(c.outputs(), &[g]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Circuit {
    pub(crate) name: String,
    pub(crate) nodes: Vec<Node>,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
    pub(crate) dffs: Vec<NodeId>,
    pub(crate) names: HashMap<String, NodeId>,
}

impl Circuit {
    /// The circuit's name (e.g. `"s953"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (inputs + flip-flops + constants + gates).
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the circuit has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from a different circuit).
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Fallible variant of [`node`](Self::node).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::InvalidNodeId`] if `id` is out of range.
    pub fn try_node(&self, id: NodeId) -> Result<&Node, NetlistError> {
        self.nodes
            .get(id.index())
            .ok_or(NetlistError::InvalidNodeId {
                index: id.index(),
                len: self.nodes.len(),
            })
    }

    /// Iterate over `(id, node)` pairs in arena order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// All node ids, in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// Primary input ids, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary output ids, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Flip-flop node ids, in declaration order.
    #[must_use]
    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Number of primary inputs.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops.
    #[must_use]
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// Number of logic gates (excludes inputs, flip-flops and constants).
    #[must_use]
    pub fn num_gates(&self) -> usize {
        self.nodes.iter().filter(|n| n.kind.is_logic()).count()
    }

    /// Look a node up by signal name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names.get(name).copied()
    }

    /// Combinational *sources*: primary inputs, flip-flop outputs and
    /// constants — the nodes with no combinational fanin.
    pub fn comb_sources(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter()
            .filter(|(_, n)| {
                matches!(
                    n.kind,
                    GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
                )
            })
            .map(|(id, _)| id)
    }

    /// Combinational *sinks* where an error becomes observable: each
    /// primary output, plus each flip-flop's D driver. A node is yielded
    /// once per sink role it plays (a signal can be both a PO and feed a
    /// DFF); call `.collect::<BTreeSet<_>>()` to deduplicate.
    pub fn observe_points(&self) -> impl Iterator<Item = ObservePoint> + '_ {
        let pos = self
            .outputs
            .iter()
            .map(|&id| ObservePoint::PrimaryOutput(id));
        let ffs = self.dffs.iter().map(|&ff| ObservePoint::FlipFlop {
            dff: ff,
            data: self.nodes[ff.index()].fanin[0],
        });
        pos.chain(ffs)
    }

    /// Returns `true` if the circuit is purely combinational.
    #[must_use]
    pub fn is_combinational(&self) -> bool {
        self.dffs.is_empty()
    }

    /// A 64-bit structural fingerprint of the netlist: name, every
    /// node's (name, kind, fanin), and the output list, folded with
    /// FNV-1a. Identical netlists always hash equal; it is a
    /// *fingerprint*, so distinct netlists can collide (64 bits,
    /// non-cryptographic) — consumers that must never confuse circuits
    /// should confirm equality on a hash match, the way `SerService`'s
    /// session cache does before serving a warm session.
    ///
    /// The hash is deterministic across processes and platforms (no
    /// `RandomState`), so it can be logged, compared between runs and
    /// used as a stable cache key.
    #[must_use]
    pub fn structural_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        eat(self.name.as_bytes());
        eat(&(self.nodes.len() as u64).to_le_bytes());
        for node in &self.nodes {
            eat(node.name.as_bytes());
            eat(&[0xFF, node.kind as u8]);
            eat(&(node.fanin.len() as u32).to_le_bytes());
            for f in &node.fanin {
                eat(&(f.0).to_le_bytes());
            }
        }
        eat(&(self.outputs.len() as u64).to_le_bytes());
        for o in &self.outputs {
            eat(&(o.0).to_le_bytes());
        }
        h
    }

    /// Internal validation used by the builder and parser: arity checks
    /// and fanout consistency. Exposed for tests of hand-built circuits.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::BadArity`] for an illegal fanin count.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for node in &self.nodes {
            if !node.kind.arity_ok(node.fanin.len()) {
                return Err(NetlistError::BadArity {
                    name: node.name.clone(),
                    kind: node.kind.to_string(),
                    got: node.fanin.len(),
                });
            }
        }
        Ok(())
    }
}

/// The bridge that lets every owned analysis entry point (`BitSim`,
/// `EppAnalysis`, `AnalysisSession`, …) keep accepting `&Circuit` at
/// call sites: a borrowed circuit is promoted to a shared handle by
/// cloning it once. Hot paths that already hold an `Arc<Circuit>`
/// should pass (a clone of) the `Arc` instead, which is O(1).
impl From<&Circuit> for std::sync::Arc<Circuit> {
    fn from(circuit: &Circuit) -> Self {
        std::sync::Arc::new(circuit.clone())
    }
}

/// A point at which a propagating error becomes observable.
///
/// `P_sensitized` in the paper is computed over *all* observe points
/// reachable from the error site: primary outputs and flip-flops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObservePoint {
    /// A primary output; the observed signal is the output node itself.
    PrimaryOutput(NodeId),
    /// A flip-flop; the observed signal is the D-pin driver `data`.
    FlipFlop {
        /// The flip-flop node.
        dff: NodeId,
        /// The node driving the flip-flop's D pin.
        data: NodeId,
    },
}

impl ObservePoint {
    /// The signal whose logic value is observed at this point.
    #[must_use]
    pub fn signal(self) -> NodeId {
        match self {
            ObservePoint::PrimaryOutput(id) => id,
            ObservePoint::FlipFlop { data, .. } => data,
        }
    }

    /// `true` if this observe point is a flip-flop (the error would be
    /// *latched* rather than leaving the circuit).
    #[must_use]
    pub fn is_flip_flop(self) -> bool {
        matches!(self, ObservePoint::FlipFlop { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn tiny() -> Circuit {
        // a, b inputs; g = AND(a,b); f = DFF(g); h = OR(f, a); output h, g
        let mut b = CircuitBuilder::new("tiny");
        let a = b.input("a");
        let bb = b.input("b");
        let g = b.gate("g", GateKind::And, &[a, bb]);
        let f = b.dff("f", g);
        let h = b.gate("h", GateKind::Or, &[f, a]);
        b.mark_output(h);
        b.mark_output(g);
        b.finish().unwrap()
    }

    #[test]
    fn counts() {
        let c = tiny();
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_dffs(), 1);
        assert_eq!(c.num_gates(), 2);
        assert!(!c.is_empty());
        assert!(!c.is_combinational());
    }

    #[test]
    fn find_by_name() {
        let c = tiny();
        let g = c.find("g").unwrap();
        assert_eq!(c.node(g).name(), "g");
        assert_eq!(c.node(g).kind(), GateKind::And);
        assert!(c.find("nope").is_none());
    }

    #[test]
    fn fanout_is_consistent_with_fanin() {
        let c = tiny();
        for (id, node) in c.iter() {
            for &fi in node.fanin() {
                assert!(
                    c.node(fi).fanout().contains(&id),
                    "{fi} missing fanout to {id}"
                );
            }
            for &fo in node.fanout() {
                assert!(
                    c.node(fo).fanin().contains(&id),
                    "{fo} missing fanin from {id}"
                );
            }
        }
    }

    #[test]
    fn observe_points_cover_pos_and_ffs() {
        let c = tiny();
        let pts: Vec<ObservePoint> = c.observe_points().collect();
        assert_eq!(pts.len(), 3); // two POs + one FF
        let h = c.find("h").unwrap();
        let g = c.find("g").unwrap();
        let f = c.find("f").unwrap();
        assert!(pts.contains(&ObservePoint::PrimaryOutput(h)));
        assert!(pts.contains(&ObservePoint::PrimaryOutput(g)));
        assert!(pts.contains(&ObservePoint::FlipFlop { dff: f, data: g }));
        // The FF observes the D driver signal.
        assert_eq!(ObservePoint::FlipFlop { dff: f, data: g }.signal(), g);
        assert!(ObservePoint::FlipFlop { dff: f, data: g }.is_flip_flop());
        assert!(!ObservePoint::PrimaryOutput(h).is_flip_flop());
    }

    #[test]
    fn comb_sources_are_inputs_and_ffs() {
        let c = tiny();
        let srcs: Vec<NodeId> = c.comb_sources().collect();
        assert_eq!(srcs.len(), 3);
        assert!(srcs.contains(&c.find("a").unwrap()));
        assert!(srcs.contains(&c.find("b").unwrap()));
        assert!(srcs.contains(&c.find("f").unwrap()));
    }

    #[test]
    fn try_node_out_of_range() {
        let c = tiny();
        let bad = NodeId::from_index(99);
        assert!(matches!(
            c.try_node(bad),
            Err(NetlistError::InvalidNodeId { index: 99, .. })
        ));
    }

    #[test]
    fn node_id_display_and_order() {
        let a = NodeId::from_index(3);
        let b = NodeId::from_index(7);
        assert!(a < b);
        assert_eq!(a.to_string(), "n3");
        assert_eq!(a.index(), 3);
    }

    #[test]
    fn structural_hash_distinguishes_netlists() {
        fn build(name: &str, kind: GateKind) -> Circuit {
            let mut b = CircuitBuilder::new(name);
            let a = b.input("a");
            let bb = b.input("b");
            let g = b.gate("g", kind, &[a, bb]);
            b.mark_output(g);
            b.finish().unwrap()
        }
        let c = build("tiny", GateKind::And);
        // Stable: same netlist, same hash, including across clones.
        assert_eq!(c.structural_hash(), c.structural_hash());
        assert_eq!(
            c.structural_hash(),
            build("tiny", GateKind::And).structural_hash()
        );
        // An Arc promoted from a borrow hashes identically.
        let shared: std::sync::Arc<Circuit> = (&c).into();
        assert_eq!(shared.structural_hash(), c.structural_hash());

        // A single gate-kind change or a rename flips the hash.
        assert_ne!(
            c.structural_hash(),
            build("tiny", GateKind::Or).structural_hash()
        );
        assert_ne!(
            c.structural_hash(),
            build("tiny2", GateKind::And).structural_hash()
        );
        assert_ne!(c.structural_hash(), tiny().structural_hash());
    }
}
