//! Fanout/fanin cone extraction — step 1 of the paper's algorithm.
//!
//! "Path Construction: Extract all on-path signals (and gates) from `ni`
//! to every reachable primary output and/or flip-flop using the forward
//! Depth-First Search algorithm."
//!
//! Within one clock cycle an error does not pass *through* a flip-flop,
//! so the forward traversal stops at DFF nodes: reaching a D pin means
//! the error is latched (an observe point), not combinationally
//! propagated.
//!
//! [`FanoutCone`] is the *definitional* (per-site DFS) form of the
//! cone; the sweep engine compiles the same sets for every site at
//! once through the reverse-topological [`crate::ConePlans`] builder,
//! which is tested to agree with this one.

use crate::circuit::{Circuit, NodeId, ObservePoint};
use crate::gate::GateKind;

/// The fanout cone of a single error site: the paper's on-path signals,
/// on-path gates and off-path signals, plus the reachable observe points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutCone {
    /// The error site this cone was extracted for.
    site: NodeId,
    /// All on-path signals (nodes reachable from the site, site included),
    /// in ascending id order.
    on_path: Vec<NodeId>,
    /// Off-path signals: fanins of on-path gates that are not themselves
    /// on-path, in ascending id order, deduplicated.
    off_path: Vec<NodeId>,
    /// Observe points (POs / flip-flops) whose observed signal is on-path.
    observe_points: Vec<ObservePoint>,
    /// Dense membership mask indexed by node id.
    mask: Vec<bool>,
}

impl FanoutCone {
    /// Extracts the cone of `site` by forward DFS over combinational
    /// edges (stopping at flip-flops).
    ///
    /// # Panics
    ///
    /// Panics if `site` is not a node of `circuit`.
    #[must_use]
    pub fn extract(circuit: &Circuit, site: NodeId) -> Self {
        let n = circuit.len();
        assert!(site.index() < n, "error site {site} out of range");
        let mut mask = vec![false; n];
        // Iterative DFS; the paper cites CLRS DFS, any traversal order
        // yields the same reachable set.
        let mut stack = vec![site];
        mask[site.index()] = true;
        while let Some(id) = stack.pop() {
            for &succ in circuit.node(id).fanout() {
                // Do not propagate through a flip-flop within this cycle.
                if circuit.node(succ).kind() == GateKind::Dff {
                    continue;
                }
                if !mask[succ.index()] {
                    mask[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        let on_path: Vec<NodeId> = circuit.node_ids().filter(|id| mask[id.index()]).collect();
        // Off-path: fanins of on-path *gates* that are not on-path.
        let mut off_mask = vec![false; n];
        for &id in &on_path {
            if id == site {
                continue; // the site's own fanins play no role
            }
            for &f in circuit.node(id).fanin() {
                if !mask[f.index()] {
                    off_mask[f.index()] = true;
                }
            }
        }
        let off_path: Vec<NodeId> = circuit
            .node_ids()
            .filter(|id| off_mask[id.index()])
            .collect();
        let observe_points: Vec<ObservePoint> = circuit
            .observe_points()
            .filter(|p| mask[p.signal().index()])
            .collect();
        FanoutCone {
            site,
            on_path,
            off_path,
            observe_points,
            mask,
        }
    }

    /// The error site.
    #[must_use]
    pub fn site(&self) -> NodeId {
        self.site
    }

    /// On-path signals (site included), ascending by id.
    #[must_use]
    pub fn on_path(&self) -> &[NodeId] {
        &self.on_path
    }

    /// Off-path signals, ascending by id.
    #[must_use]
    pub fn off_path(&self) -> &[NodeId] {
        &self.off_path
    }

    /// Observe points whose signal lies in the cone.
    #[must_use]
    pub fn observe_points(&self) -> &[ObservePoint] {
        &self.observe_points
    }

    /// `true` if `id` is an on-path signal.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.mask.get(id.index()).copied().unwrap_or(false)
    }

    /// Number of on-path signals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.on_path.len()
    }

    /// `true` if the cone is just the site itself with no reachable
    /// observe point (the error is never observable).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.observe_points.is_empty()
    }

    /// Always `false`: a cone contains at least its site.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The transitive fanin of `targets` over combinational edges (stopping
/// at sources: inputs, flip-flops, constants). Returns a dense mask
/// indexed by node id; targets themselves are included.
#[must_use]
pub fn fanin_mask(circuit: &Circuit, targets: &[NodeId]) -> Vec<bool> {
    let mut mask = vec![false; circuit.len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for &t in targets {
        if !mask[t.index()] {
            mask[t.index()] = true;
            stack.push(t);
        }
    }
    while let Some(id) = stack.pop() {
        if circuit.node(id).kind() == GateKind::Dff {
            continue; // Q does not combinationally depend on D
        }
        for &f in circuit.node(id).fanin() {
            if !mask[f.index()] {
                mask[f.index()] = true;
                stack.push(f);
            }
        }
    }
    mask
}

/// Ids of the primary inputs / flip-flop outputs / constants that the
/// value of any of `targets` depends on (the *support*).
#[must_use]
pub fn support(circuit: &Circuit, targets: &[NodeId]) -> Vec<NodeId> {
    let mask = fanin_mask(circuit, targets);
    circuit
        .comb_sources()
        .filter(|id| mask[id.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    /// The Fig. 1 circuit of the paper (shape only):
    /// inputs a (site driver stand-in), B, C, F;
    /// D = AND(A, B); E = NOT(A); G = AND(E, F); H = OR(C, D, G); PO = H.
    fn fig1_shape() -> Circuit {
        let mut b = CircuitBuilder::new("fig1");
        let a = b.input("A");
        let sb = b.input("B");
        let sc = b.input("C");
        let sf = b.input("F");
        let e = b.gate("E", GateKind::Not, &[a]);
        let d = b.gate("D", GateKind::And, &[a, sb]);
        let g = b.gate("G", GateKind::And, &[e, sf]);
        let h = b.gate("H", GateKind::Or, &[sc, d, g]);
        b.mark_output(h);
        b.finish().unwrap()
    }

    #[test]
    fn fig1_on_off_path() {
        let c = fig1_shape();
        let a = c.find("A").unwrap();
        let cone = FanoutCone::extract(&c, a);
        let names =
            |ids: &[NodeId]| -> Vec<&str> { ids.iter().map(|&i| c.node(i).name()).collect() };
        // On-path: A, E, D, G, H — exactly the darkened gates of Fig. 1.
        assert_eq!(names(cone.on_path()), vec!["A", "E", "D", "G", "H"]);
        // Off-path: B, C, F.
        assert_eq!(names(cone.off_path()), vec!["B", "C", "F"]);
        assert_eq!(cone.observe_points().len(), 1);
        assert_eq!(cone.site(), a);
        assert!(cone.contains(c.find("H").unwrap()));
        assert!(!cone.contains(c.find("B").unwrap()));
        assert!(!cone.is_dead());
        assert_eq!(cone.len(), 5);
    }

    #[test]
    fn cone_of_output_is_itself() {
        let c = fig1_shape();
        let h = c.find("H").unwrap();
        let cone = FanoutCone::extract(&c, h);
        assert_eq!(cone.on_path(), &[h]);
        assert!(cone.off_path().is_empty());
        assert_eq!(cone.observe_points().len(), 1);
    }

    #[test]
    fn dead_cone_when_no_output_reachable() {
        // x -> g, g drives nothing and is not an output.
        let mut b = CircuitBuilder::new("dead");
        let x = b.input("x");
        let y = b.input("y");
        b.gate("g", GateKind::And, &[x, y]);
        // mark y as output so the circuit has one, but g is unobservable
        b.mark_output(y);
        let c = b.finish().unwrap();
        let g = c.find("g").unwrap();
        let cone = FanoutCone::extract(&c, g);
        assert!(cone.is_dead());
        assert!(!cone.is_empty());
    }

    #[test]
    fn traversal_stops_at_dff_but_observes_it() {
        // x -> g = NOT(x) -> q = DFF(g) -> z = NOT(q), PO z.
        // Cone of x: {x, g, z?}. z is NOT reachable within a cycle because
        // the path crosses the DFF; observe point is the DFF itself.
        let mut b = CircuitBuilder::new("seq");
        let x = b.input("x");
        let g = b.gate("g", GateKind::Not, &[x]);
        let q = b.dff("q", g);
        let z = b.gate("z", GateKind::Not, &[q]);
        b.mark_output(z);
        let c = b.finish().unwrap();
        let cone = FanoutCone::extract(&c, x);
        assert!(cone.contains(g));
        assert!(!cone.contains(q));
        assert!(!cone.contains(z));
        assert_eq!(cone.observe_points().len(), 1);
        assert!(cone.observe_points()[0].is_flip_flop());
        assert_eq!(cone.observe_points()[0].signal(), g);
    }

    #[test]
    fn fanin_support() {
        let c = fig1_shape();
        let d = c.find("D").unwrap();
        let sup = support(&c, &[d]);
        let names: Vec<&str> = sup.iter().map(|&i| c.node(i).name()).collect();
        assert_eq!(names, vec!["A", "B"]);
        let h = c.find("H").unwrap();
        let sup = support(&c, &[h]);
        assert_eq!(sup.len(), 4); // A, B, C, F
    }

    #[test]
    fn fanin_mask_stops_at_dff() {
        let mut b = CircuitBuilder::new("seq2");
        let x = b.input("x");
        let g = b.gate("g", GateKind::Not, &[x]);
        let q = b.dff("q", g);
        let z = b.gate("z", GateKind::Not, &[q]);
        b.mark_output(z);
        let c = b.finish().unwrap();
        let mask = fanin_mask(&c, &[z]);
        assert!(mask[z.index()]);
        assert!(mask[q.index()]);
        // The DFF cuts the backward traversal: g and x not in z's comb fanin.
        assert!(!mask[g.index()]);
        assert!(!mask[x.index()]);
        let sup = support(&c, &[z]);
        assert_eq!(sup, vec![q]);
    }
}
