//! Persistent on-disk cache for compiled [`ConePlans`] — so a fleet
//! restart or a new replica never pays plan compilation for a circuit
//! any process has compiled before.
//!
//! # File format
//!
//! One file per circuit under the cache directory, named
//! `{structural_hash:016x}.serplan`. The layout is a flat,
//! mmap-friendly byte stream (fixed header, then contiguous
//! little-endian sections — no pointers, no compression):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "SERPLANC"
//! 8       4     format version (u32 LE) — bump on any layout change
//! 12      4     reserved (0)
//! 16      8     circuit structural hash (u64 LE)
//! 24      8     payload length in bytes (u64 LE)
//! 32      8     FNV-1a checksum of the payload (u64 LE)
//! 40      …     payload: the arena tables, each as
//!               u64 element count + packed LE elements
//! ```
//!
//! The payload sections mirror [`ConePlans`]' fields in declaration
//! order (per-node chain tables, the per-position kind/fanin tables,
//! the shared tail position arena, then the four scalar stats).
//! [`NodeId`]s serialize as `u32` indices and [`GateKind`]s as
//! explicit `u8` tags — both stable across platforms.
//!
//! # Integrity
//!
//! [`PlanCache::load`] verifies magic, version, key and checksum and
//! returns `None` on **any** mismatch — truncated writes, bit rot,
//! stale format versions and hash collisions all degrade to a silent
//! recompile, never an error and never a wrong plan. Writes go through
//! a temp file + atomic rename so readers only ever observe complete
//! entries.
//!
//! # Size cap
//!
//! An optional byte budget ([`PlanCache::with_max_bytes`]) turns the
//! directory into an LRU: every successful [`PlanCache::load`] re-dates
//! its entry's mtime, and [`PlanCache::store`] evicts
//! oldest-mtime-first until the directory fits the cap again. Eviction
//! runs at store time only — a cache that is never written never
//! shrinks — and never removes the entry just stored, so a single
//! over-budget circuit still caches (the cap is a target, not an
//! invariant).

use std::collections::VecDeque;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

use crate::circuit::NodeId;
use crate::gate::GateKind;
use crate::plan::ConePlans;

const MAGIC: &[u8; 8] = b"SERPLANC";
const HEADER_LEN: usize = 40;

/// Extension of cache entries (`{hash:016x}.serplan`).
pub const PLAN_CACHE_EXT: &str = "serplan";

/// Aggregate statistics of one cache directory.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Number of `.serplan` entries present.
    pub entries: usize,
    /// Their total size in bytes.
    pub bytes: u64,
}

/// A persistent compile-artifact cache rooted at one directory (see
/// the [module docs](self) for the file format).
///
/// # Examples
///
/// ```no_run
/// use ser_netlist::{parse_bench, PlanCache, TopoArtifacts};
///
/// let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t")?;
/// let topo = TopoArtifacts::compute(&c)?;
/// let cache = PlanCache::new("/var/cache/ser");
/// let key = c.structural_hash();
/// let plans = match cache.load(key) {
///     Some(cached) => cached, // skip compilation entirely
///     None => {
///         let built = topo.cone_plans(&c).expect("fits budget").as_ref().clone();
///         let _ = cache.store(key, &built); // best-effort persist
///         built
///     }
/// };
/// # let _ = plans;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct PlanCache {
    dir: PathBuf,
    /// Byte budget for the directory (`None` = unbounded). See the
    /// [module docs](self) on the eviction policy.
    max_bytes: Option<u64>,
    /// Chaos-test fault injection; `None` in production.
    faults: Option<Arc<FaultPlan>>,
}

/// A single injected fault for one [`PlanCache::store`] call — the
/// crash shapes a production filesystem can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Write only the first `keep` bytes of the encoded entry, then
    /// rename anyway: a present-but-torn file, as after power loss on
    /// a filesystem that reordered the rename past the data blocks.
    /// [`PlanCache::load`] must reject it via length/checksum.
    Torn {
        /// Bytes of the encoded entry actually written.
        keep: usize,
    },
    /// The data write itself fails (disk full / I/O error mid-write);
    /// `store` returns the error and cleans up the temp file.
    WriteError,
    /// The final rename fails; the complete temp file is cleaned up
    /// and `store` returns the error — no entry appears.
    RenameError,
}

/// A deterministic fault schedule for [`PlanCache`] chaos tests: each
/// [`PlanCache::store`] call consumes the next slot in order (`None` =
/// store healthily). Once the schedule is exhausted every store is
/// healthy. Shared via `Arc` so the injecting test keeps a handle.
#[derive(Debug, Default)]
pub struct FaultPlan {
    schedule: Mutex<VecDeque<Option<StoreFault>>>,
    injected: AtomicU64,
}

impl FaultPlan {
    /// A schedule consumed one slot per store, in order.
    #[must_use]
    pub fn new(schedule: impl IntoIterator<Item = Option<StoreFault>>) -> Self {
        FaultPlan {
            schedule: Mutex::new(schedule.into_iter().collect()),
            injected: AtomicU64::new(0),
        }
    }

    /// How many faults have actually been injected so far — lets a
    /// test assert its schedule was exercised, not silently skipped.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    fn next(&self) -> Option<StoreFault> {
        let fault = self
            .schedule
            .lock()
            .expect("fault schedule poisoned")
            .pop_front()
            .flatten();
        if fault.is_some() {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        fault
    }
}

/// What one [`PlanCache::store`] did: where the entry landed, and how
/// many older entries were evicted to make room under the byte cap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStoreOutcome {
    /// The stored entry's path.
    pub path: PathBuf,
    /// `.serplan` entries removed by LRU-by-mtime eviction (always 0
    /// on an unbounded cache).
    pub evicted: usize,
}

impl PlanCache {
    /// Version tag of the on-disk layout. Bumped whenever the
    /// [`ConePlans`] arena or the serialization changes; entries with
    /// any other version are ignored (and recompiled over).
    pub const FORMAT_VERSION: u32 = 1;

    /// A cache rooted at `dir` (created lazily on first store),
    /// unbounded.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PlanCache {
            dir: dir.into(),
            max_bytes: None,
            faults: None,
        }
    }

    /// Arms a chaos-test [`FaultPlan`]: each subsequent
    /// [`store`](Self::store) consumes one slot of the schedule. Never
    /// used in production paths.
    #[must_use]
    pub fn with_fault_plan(mut self, faults: Arc<FaultPlan>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Caps the directory at `max_bytes` total `.serplan` bytes
    /// (`None` removes the cap). At every store the oldest-mtime
    /// entries are evicted until the directory fits; loads re-date
    /// their entry so "oldest" means least recently *used*.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: Option<u64>) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The byte cap in force, if any.
    #[must_use]
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    /// The cache directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for one structural hash.
    #[must_use]
    pub fn entry_path(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.{PLAN_CACHE_EXT}"))
    }

    /// Loads the cached plans for `hash`, or `None` when the entry is
    /// absent, truncated, corrupted, version-mismatched or keyed to a
    /// different hash — every failure mode means "recompile", never an
    /// error.
    #[must_use]
    pub fn load(&self, hash: u64) -> Option<ConePlans> {
        let path = self.entry_path(hash);
        let bytes = fs::read(&path).ok()?;
        let plans = decode(hash, &bytes)?;
        // Under a byte cap the mtime is the LRU recency, so a hit must
        // re-date the entry or eviction would remove the hottest
        // circuits in insertion order. Best-effort: a read-only
        // directory still serves hits, it just ages them.
        if self.max_bytes.is_some() {
            let _ = fs::File::options()
                .append(true)
                .open(&path)
                .and_then(|f| f.set_modified(SystemTime::now()));
        }
        Some(plans)
    }

    /// Persists `plans` under `hash`, atomically (temp file + rename):
    /// concurrent readers see either the old entry or the complete new
    /// one, never a torn write. Under a byte cap, then evicts
    /// oldest-mtime entries (never the one just stored) until the
    /// directory fits again.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (callers typically treat a failed
    /// store as best-effort and carry on with the in-memory plans).
    pub fn store(&self, hash: u64, plans: &ConePlans) -> io::Result<PlanStoreOutcome> {
        fs::create_dir_all(&self.dir)?;
        let path = self.entry_path(hash);
        let tmp = self.dir.join(format!(
            "{hash:016x}.{PLAN_CACHE_EXT}.tmp{}",
            std::process::id()
        ));
        let bytes = encode(hash, plans);
        let fault = self.faults.as_ref().and_then(|f| f.next());
        let result = (|| {
            let mut f = fs::File::create(&tmp)?;
            match fault {
                Some(StoreFault::Torn { keep }) => {
                    // The crash shape: a truncated entry becomes
                    // visible under the final name. `load` must treat
                    // it as a miss and the next store overwrites it.
                    f.write_all(&bytes[..keep.min(bytes.len())])?;
                    f.sync_all()?;
                    return fs::rename(&tmp, &path);
                }
                Some(StoreFault::WriteError) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "injected mid-write failure",
                    ));
                }
                Some(StoreFault::RenameError) | None => {}
            }
            f.write_all(&bytes)?;
            f.sync_all()?;
            if matches!(fault, Some(StoreFault::RenameError)) {
                return Err(io::Error::other("injected rename failure"));
            }
            fs::rename(&tmp, &path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result?;
        let evicted = self.evict_to_cap(&path)?;
        Ok(PlanStoreOutcome { path, evicted })
    }

    /// Removes oldest-mtime `.serplan` entries (never `keep`) until the
    /// directory's total fits the byte cap; a no-op on an unbounded
    /// cache. Returns how many entries were removed.
    fn evict_to_cap(&self, keep: &Path) -> io::Result<usize> {
        let Some(cap) = self.max_bytes else {
            return Ok(0);
        };
        let mut total: u64 = 0;
        let mut candidates: Vec<(SystemTime, u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(PLAN_CACHE_EXT) {
                continue;
            }
            let meta = entry.metadata()?;
            total += meta.len();
            if path != keep {
                // Entries whose mtime is unreadable evict first — on
                // such a filesystem recency is unknowable anyway.
                let mtime = meta.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                candidates.push((mtime, meta.len(), path));
            }
        }
        if total <= cap {
            return Ok(0);
        }
        // Oldest first; path breaks mtime ties so eviction order is
        // deterministic on coarse-timestamp filesystems.
        candidates.sort();
        let mut evicted = 0;
        for (_, len, path) in candidates {
            if total <= cap {
                break;
            }
            match fs::remove_file(&path) {
                Ok(()) => {
                    total -= len;
                    evicted += 1;
                }
                // A concurrent process beat us to it: the bytes are
                // gone either way.
                Err(e) if e.kind() == io::ErrorKind::NotFound => total -= len,
                Err(e) => return Err(e),
            }
        }
        Ok(evicted)
    }

    /// Entry count and total bytes of the cache directory. A missing
    /// directory is an empty cache, not an error.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than a missing directory.
    pub fn stats(&self) -> io::Result<PlanCacheStats> {
        let mut stats = PlanCacheStats::default();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(stats),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if entry.path().extension().and_then(|e| e.to_str()) == Some(PLAN_CACHE_EXT) {
                stats.entries += 1;
                stats.bytes += entry.metadata()?.len();
            }
        }
        Ok(stats)
    }

    /// Removes every `.serplan` entry; returns how many were deleted.
    /// A missing directory counts as already clear.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than a missing directory.
    pub fn clear(&self) -> io::Result<usize> {
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(e),
        };
        let mut removed = 0;
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some(PLAN_CACHE_EXT) {
                fs::remove_file(&path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

fn kind_to_u8(kind: GateKind) -> u8 {
    match kind {
        GateKind::Input => 0,
        GateKind::Dff => 1,
        GateKind::And => 2,
        GateKind::Nand => 3,
        GateKind::Or => 4,
        GateKind::Nor => 5,
        GateKind::Not => 6,
        GateKind::Buf => 7,
        GateKind::Xor => 8,
        GateKind::Xnor => 9,
        GateKind::Const0 => 10,
        GateKind::Const1 => 11,
    }
}

fn kind_from_u8(tag: u8) -> Option<GateKind> {
    GateKind::ALL.get(tag as usize).copied()
}

fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

fn put_u32s(out: &mut Vec<u8>, v: &[u32]) {
    out.extend_from_slice(&(v.len() as u64).to_le_bytes());
    for &x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Serializes `plans` into the full file image (header included).
pub(crate) fn encode(hash: u64, plans: &ConePlans) -> Vec<u8> {
    let mut p = Vec::new();
    put_u32s(&mut p, &plans.chain_next);
    put_u32s(&mut p, &plans.tail_of);
    put_u32s(&mut p, &plans.prefix_len);
    put_u32s(&mut p, &plans.path_pins_after);
    put_u32s(&mut p, &plans.path_obs_from);
    put_u32s(&mut p, &plans.node_obs_off);
    put_u32s(&mut p, &plans.node_obs);
    p.extend_from_slice(&(plans.pos_node.len() as u64).to_le_bytes());
    for &id in &plans.pos_node {
        p.extend_from_slice(&(id.index() as u32).to_le_bytes());
    }
    p.extend_from_slice(&(plans.pos_kind.len() as u64).to_le_bytes());
    for &kind in &plans.pos_kind {
        p.push(kind_to_u8(kind));
    }
    put_u32s(&mut p, &plans.pos_fanin_off);
    p.extend_from_slice(&(plans.pos_fanins.len() as u64).to_le_bytes());
    for &(pf, off) in &plans.pos_fanins {
        p.extend_from_slice(&pf.to_le_bytes());
        p.extend_from_slice(&off.to_le_bytes());
    }
    put_u32s(&mut p, &plans.tail_start);
    put_u32s(&mut p, &plans.tail_end);
    put_u32s(&mut p, &plans.tail_pins);
    put_u32s(&mut p, &plans.tail_positions);
    put_u32s(&mut p, &plans.tail_obs_off);
    p.extend_from_slice(&(plans.tail_obs.len() as u64).to_le_bytes());
    for &(obs, local) in &plans.tail_obs {
        p.extend_from_slice(&obs.to_le_bytes());
        p.extend_from_slice(&local.to_le_bytes());
    }
    p.extend_from_slice(&(plans.max_cone_len as u64).to_le_bytes());
    p.extend_from_slice(&(plans.chain_count as u64).to_le_bytes());
    p.extend_from_slice(&plans.logical_members.to_le_bytes());
    p.extend_from_slice(&plans.logical_observe_refs.to_le_bytes());

    let mut out = Vec::with_capacity(HEADER_LEN + p.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&PlanCache::FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&0u32.to_le_bytes());
    out.extend_from_slice(&hash.to_le_bytes());
    out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(&p).to_le_bytes());
    out.extend_from_slice(&p);
    out
}

/// Sequential little-endian reader over the payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.at.checked_add(n)?;
        let s = self.bytes.get(self.at..end)?;
        self.at = end;
        Some(s)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn len(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn u32s(&mut self) -> Option<Vec<u32>> {
        let n = self.len()?;
        let raw = self.take(n.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
                .collect(),
        )
    }
}

/// Parses a full file image back into [`ConePlans`]; `None` on any
/// mismatch (wrong magic/version/key, bad checksum, truncation,
/// trailing garbage, invalid gate tags).
pub(crate) fn decode(hash: u64, bytes: &[u8]) -> Option<ConePlans> {
    let header = bytes.get(..HEADER_LEN)?;
    if &header[..8] != MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(header[8..12].try_into().ok()?);
    if version != PlanCache::FORMAT_VERSION {
        return None;
    }
    let key = u64::from_le_bytes(header[16..24].try_into().ok()?);
    if key != hash {
        return None;
    }
    let payload_len = u64::from_le_bytes(header[24..32].try_into().ok()?);
    let checksum = u64::from_le_bytes(header[32..40].try_into().ok()?);
    let payload = bytes.get(HEADER_LEN..)?;
    if payload.len() as u64 != payload_len || fnv1a(payload) != checksum {
        return None;
    }

    let mut c = Cursor {
        bytes: payload,
        at: 0,
    };
    let chain_next = c.u32s()?;
    let tail_of = c.u32s()?;
    let prefix_len = c.u32s()?;
    let path_pins_after = c.u32s()?;
    let path_obs_from = c.u32s()?;
    let node_obs_off = c.u32s()?;
    let node_obs = c.u32s()?;
    let pos_node = c
        .u32s()?
        .into_iter()
        .map(|i| NodeId::from_index(i as usize))
        .collect();
    let n_kinds = c.len()?;
    let pos_kind = c
        .take(n_kinds)?
        .iter()
        .map(|&t| kind_from_u8(t))
        .collect::<Option<Vec<GateKind>>>()?;
    let pos_fanin_off = c.u32s()?;
    let n_fanins = c.len()?;
    let raw_fanins = c.take(n_fanins.checked_mul(8)?)?;
    let pos_fanins = raw_fanins
        .chunks_exact(8)
        .map(|p| {
            (
                u32::from_le_bytes(p[..4].try_into().expect("4-byte half")),
                u32::from_le_bytes(p[4..].try_into().expect("4-byte half")),
            )
        })
        .collect();
    let tail_start = c.u32s()?;
    let tail_end = c.u32s()?;
    let tail_pins = c.u32s()?;
    let tail_positions = c.u32s()?;
    let tail_obs_off = c.u32s()?;
    let n_obs = c.len()?;
    let raw_obs = c.take(n_obs.checked_mul(8)?)?;
    let tail_obs = raw_obs
        .chunks_exact(8)
        .map(|p| {
            (
                u32::from_le_bytes(p[..4].try_into().expect("4-byte half")),
                u32::from_le_bytes(p[4..].try_into().expect("4-byte half")),
            )
        })
        .collect();
    let max_cone_len = usize::try_from(c.u64()?).ok()?;
    let chain_count = usize::try_from(c.u64()?).ok()?;
    let logical_members = c.u64()?;
    let logical_observe_refs = c.u64()?;
    if c.at != payload.len() {
        return None; // trailing garbage: treat as corrupt
    }

    Some(ConePlans {
        chain_next,
        tail_of,
        prefix_len,
        path_pins_after,
        path_obs_from,
        node_obs_off,
        node_obs,
        pos_node,
        pos_kind,
        pos_fanin_off,
        pos_fanins,
        tail_start,
        tail_end,
        tail_pins,
        tail_positions,
        tail_obs_off,
        tail_obs,
        max_cone_len,
        chain_count,
        logical_members,
        logical_observe_refs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::TopoArtifacts;
    use crate::parse::parse_bench;

    fn sample() -> (crate::circuit::Circuit, ConePlans) {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nu = NOT(a)\nv = AND(a, b)\nq = DFF(v)\nw = XOR(u, q)\nz = OR(w, v)\n",
            "cachetest",
        )
        .unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        (c, plans)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (c, plans) = sample();
        let hash = c.structural_hash();
        let bytes = encode(hash, &plans);
        let back = decode(hash, &bytes).expect("round trip");
        assert_eq!(back, plans);
    }

    #[test]
    fn decode_rejects_wrong_key_version_and_corruption() {
        let (c, plans) = sample();
        let hash = c.structural_hash();
        let bytes = encode(hash, &plans);
        // Wrong key.
        assert!(decode(hash ^ 1, &bytes).is_none());
        // Version bump.
        let mut v = bytes.clone();
        v[8] = PlanCache::FORMAT_VERSION as u8 + 1;
        assert!(decode(hash, &v).is_none());
        // Bad magic.
        let mut m = bytes.clone();
        m[0] ^= 0xFF;
        assert!(decode(hash, &m).is_none());
        // Truncation at every section boundary-ish point.
        for cut in [10, HEADER_LEN - 1, HEADER_LEN + 3, bytes.len() - 1] {
            assert!(decode(hash, &bytes[..cut]).is_none(), "cut at {cut}");
        }
        // Single-byte payload corruption breaks the checksum.
        let mut f = bytes.clone();
        let last = f.len() - 1;
        f[last] ^= 0x40;
        assert!(decode(hash, &f).is_none());
        // Trailing garbage is rejected too (checksum covers declared
        // payload length only, so the length check must catch it).
        let mut t = bytes.clone();
        t.push(0);
        assert!(decode(hash, &t).is_none());
    }

    /// A per-test scratch directory under the system temp dir, removed
    /// on drop (tests run in parallel, so the name carries the tag).
    struct TempCacheDir(PathBuf);

    impl TempCacheDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir()
                .join(format!("ser-plan-cache-test-{tag}-{}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            TempCacheDir(dir)
        }
    }

    impl Drop for TempCacheDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    #[test]
    fn store_load_round_trips_on_disk() {
        let (c, plans) = sample();
        let hash = c.structural_hash();
        let dir = TempCacheDir::new("roundtrip");
        let cache = PlanCache::new(&dir.0);
        // Nothing stored yet: miss, and stats see an absent dir.
        assert!(cache.load(hash).is_none());
        assert_eq!(cache.stats().unwrap(), PlanCacheStats::default());
        cache.store(hash, &plans).expect("store");
        assert_eq!(cache.load(hash).expect("hit"), plans);
        // A different key misses without touching the stored entry.
        assert!(cache.load(hash ^ 1).is_none());
        let stats = cache.stats().unwrap();
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > HEADER_LEN as u64);
        assert_eq!(cache.clear().unwrap(), 1);
        assert!(cache.load(hash).is_none());
        assert_eq!(cache.stats().unwrap(), PlanCacheStats::default());
    }

    #[test]
    fn damaged_entries_on_disk_degrade_to_misses() {
        let (c, plans) = sample();
        let hash = c.structural_hash();
        let dir = TempCacheDir::new("damage");
        let cache = PlanCache::new(&dir.0);
        cache.store(hash, &plans).expect("store");
        let path = cache.entry_path(hash);
        let full = fs::read(&path).unwrap();

        // Truncated write (e.g. a crashed process): silent miss.
        fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load(hash).is_none());

        // Flipped payload byte: checksum catches it, silent miss.
        let mut corrupt = full.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x10;
        fs::write(&path, &corrupt).unwrap();
        assert!(cache.load(hash).is_none());

        // Stale format version: silent miss (recompile territory).
        let mut stale = full.clone();
        stale[8] = PlanCache::FORMAT_VERSION as u8 + 1;
        fs::write(&path, &stale).unwrap();
        assert!(cache.load(hash).is_none());

        // Restoring the original bytes restores the hit.
        fs::write(&path, &full).unwrap();
        assert_eq!(cache.load(hash).expect("hit"), plans);
    }

    #[test]
    fn fault_plan_torn_write_recovers_silently() {
        let (c, plans) = sample();
        let hash = c.structural_hash();
        let dir = TempCacheDir::new("fault-torn");
        let faults = Arc::new(FaultPlan::new([Some(StoreFault::Torn { keep: 13 }), None]));
        let cache = PlanCache::new(&dir.0).with_fault_plan(Arc::clone(&faults));

        // The torn store "succeeds" (the rename landed) but the entry
        // on disk is garbage: the next load is a silent miss.
        cache.store(hash, &plans).expect("torn store still renames");
        assert!(fs::read(cache.entry_path(hash)).unwrap().len() < HEADER_LEN);
        assert!(cache.load(hash).is_none());
        assert_eq!(faults.injected(), 1);

        // Recompile-and-store overwrites the torn entry; hits resume.
        cache.store(hash, &plans).expect("healthy store");
        assert_eq!(cache.load(hash).expect("hit"), plans);
    }

    #[test]
    fn fault_plan_write_and_rename_failures_leave_no_entry() {
        let (c, plans) = sample();
        let hash = c.structural_hash();
        let dir = TempCacheDir::new("fault-write");
        let faults = Arc::new(FaultPlan::new([
            Some(StoreFault::WriteError),
            Some(StoreFault::RenameError),
        ]));
        let cache = PlanCache::new(&dir.0).with_fault_plan(Arc::clone(&faults));

        for expect in ["mid-write", "rename"] {
            let err = cache.store(hash, &plans).expect_err(expect);
            assert!(err.to_string().contains("injected"), "{expect}: {err}");
            // No entry, no stray temp file: the directory stays clean.
            assert!(cache.load(hash).is_none());
            assert_eq!(fs::read_dir(&dir.0).unwrap().count(), 0, "{expect}");
        }
        assert_eq!(faults.injected(), 2);

        // Schedule exhausted: stores are healthy again.
        cache.store(hash, &plans).expect("healthy store");
        assert_eq!(cache.load(hash).expect("hit"), plans);
    }

    /// A NOT-chain circuit of the given depth — each depth has a
    /// distinct structural hash, giving eviction tests distinct keys.
    fn chain_sample(depth: usize) -> (u64, ConePlans) {
        let mut src = String::from("INPUT(a)\nOUTPUT(z)\n");
        let mut prev = "a".to_owned();
        for i in 0..depth {
            src.push_str(&format!("n{i} = NOT({prev})\n"));
            prev = format!("n{i}");
        }
        src.push_str(&format!("z = NOT({prev})\n"));
        let c = parse_bench(&src, &format!("chain{depth}")).unwrap();
        let topo = TopoArtifacts::compute(&c).unwrap();
        let plans = ConePlans::build(&c, &topo);
        (c.structural_hash(), plans)
    }

    fn set_mtime(path: &Path, t: std::time::SystemTime) {
        fs::File::options()
            .append(true)
            .open(path)
            .unwrap()
            .set_modified(t)
            .unwrap();
    }

    #[test]
    fn byte_cap_evicts_oldest_entries_at_store_time() {
        let dir = TempCacheDir::new("evict");
        let (h1, p1) = chain_sample(1);
        let (h2, p2) = chain_sample(2);
        let (h3, p3) = chain_sample(3);
        let sizes: Vec<u64> = [(h1, &p1), (h2, &p2), (h3, &p3)]
            .iter()
            .map(|&(h, p)| encode(h, p).len() as u64)
            .collect();

        let unbounded = PlanCache::new(&dir.0);
        assert_eq!(unbounded.store(h1, &p1).unwrap().evicted, 0);
        assert_eq!(unbounded.store(h2, &p2).unwrap().evicted, 0);
        // Age the entries deterministically: h1 oldest.
        let epoch = std::time::SystemTime::UNIX_EPOCH;
        set_mtime(
            &unbounded.entry_path(h1),
            epoch + std::time::Duration::from_secs(1_000),
        );
        set_mtime(
            &unbounded.entry_path(h2),
            epoch + std::time::Duration::from_secs(2_000),
        );

        // Cap sized so that evicting exactly the oldest entry fits.
        let bounded = PlanCache::new(&dir.0).with_max_bytes(Some(sizes[1] + sizes[2]));
        assert_eq!(bounded.max_bytes(), Some(sizes[1] + sizes[2]));
        let outcome = bounded.store(h3, &p3).unwrap();
        assert_eq!(outcome.evicted, 1, "exactly the oldest entry goes");
        assert!(bounded.load(h1).is_none(), "h1 was least recently used");
        assert_eq!(bounded.load(h2).expect("survives"), p2);
        assert_eq!(bounded.load(h3).expect("just stored"), p3);
        assert!(bounded.stats().unwrap().bytes <= sizes[1] + sizes[2]);
    }

    #[test]
    fn a_load_hit_re_dates_its_entry_under_a_cap() {
        let dir = TempCacheDir::new("redate");
        let (h1, p1) = chain_sample(4);
        let (h2, p2) = chain_sample(5);
        let (h3, p3) = chain_sample(6);
        let s1 = encode(h1, &p1).len() as u64;
        let s3 = encode(h3, &p3).len() as u64;

        let bounded = PlanCache::new(&dir.0).with_max_bytes(Some(s1 + s3));
        bounded.store(h1, &p1).unwrap();
        bounded.store(h2, &p2).unwrap();
        let epoch = std::time::SystemTime::UNIX_EPOCH;
        set_mtime(
            &bounded.entry_path(h1),
            epoch + std::time::Duration::from_secs(1_000),
        );
        set_mtime(
            &bounded.entry_path(h2),
            epoch + std::time::Duration::from_secs(2_000),
        );
        // h1 is older on disk, but this hit marks it as in active use…
        assert_eq!(bounded.load(h1).expect("hit"), p1);
        // …so the eviction triggered by storing h3 removes h2 instead.
        assert_eq!(bounded.store(h3, &p3).unwrap().evicted, 1);
        assert_eq!(bounded.load(h1).expect("recency protected"), p1);
        assert!(bounded.load(h2).is_none(), "h2 became the LRU entry");
        assert_eq!(bounded.load(h3).expect("just stored"), p3);
    }

    #[test]
    fn an_unbounded_store_never_evicts() {
        let dir = TempCacheDir::new("unbounded");
        let cache = PlanCache::new(&dir.0);
        assert_eq!(cache.max_bytes(), None);
        for depth in 1..=4 {
            let (h, p) = chain_sample(depth);
            assert_eq!(cache.store(h, &p).unwrap().evicted, 0);
        }
        assert_eq!(cache.stats().unwrap().entries, 4);
    }

    #[test]
    fn gate_kind_tags_are_stable_and_total() {
        for (i, &kind) in GateKind::ALL.iter().enumerate() {
            assert_eq!(kind_to_u8(kind) as usize, i);
            assert_eq!(kind_from_u8(kind_to_u8(kind)), Some(kind));
        }
        assert_eq!(kind_from_u8(GateKind::ALL.len() as u8), None);
    }
}
