//! Structural Verilog subset: parser and writer.
//!
//! Gate-level netlists in the wild are usually structural Verilog, not
//! `.bench`; this module accepts the subset synthesis tools emit for
//! primitive-gate netlists:
//!
//! ```verilog
//! // line comments and /* block comments */
//! module top (a, b, y);
//!   input a, b;
//!   output y;
//!   wire w;
//!   nand g1 (w, a, b);   // primitive gates: output first, then inputs
//!   not  g2 (y, w);
//! endmodule
//! ```
//!
//! Supported primitives: `and`, `nand`, `or`, `nor`, `xor`, `xnor`,
//! `not`, `buf`, plus two conveniences: `dff q (Q, D);` for a D
//! flip-flop and `assign x = y;` as a buffer alias. One module per
//! file; vectors/parameters/always blocks are out of scope (they are
//! not gate-level constructs).

use std::collections::HashMap;

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::error::ParseError;
use crate::gate::GateKind;

/// Parses a structural Verilog module into a [`Circuit`].
///
/// The circuit takes the module's name; `INPUT`/`OUTPUT` roles come
/// from the `input`/`output` declarations.
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] (with a line number) for anything
/// outside the subset, [`ParseError::UnknownGate`] for an unsupported
/// primitive, and [`ParseError::Semantic`] for structurally invalid
/// netlists (undriven signals, cycles, duplicates).
///
/// # Examples
///
/// ```
/// let src = "
/// module half_adder (a, b, s, c);
///   input a, b;
///   output s, c;
///   xor g1 (s, a, b);
///   and g2 (c, a, b);
/// endmodule
/// ";
/// let circuit = ser_netlist::parse_verilog(src)?;
/// assert_eq!(circuit.name(), "half_adder");
/// assert_eq!(circuit.num_gates(), 2);
/// # Ok::<(), ser_netlist::ParseError>(())
/// ```
pub fn parse_verilog(source: &str) -> Result<Circuit, ParseError> {
    let tokens = tokenize(source)?;
    let mut p = Parser {
        tokens: &tokens,
        pos: 0,
    };
    p.module()
}

/// Renders a circuit as a structural Verilog module (round-trips with
/// [`parse_verilog`]).
#[must_use]
pub fn write_verilog(circuit: &Circuit) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let ports: Vec<&str> = circuit
        .inputs()
        .iter()
        .chain(circuit.outputs().iter())
        .map(|&id| circuit.node(id).name())
        .collect();
    let module_name = sanitize(circuit.name());
    let _ = writeln!(out, "module {module_name} ({});", ports.join(", "));
    if !circuit.inputs().is_empty() {
        let names: Vec<&str> = circuit
            .inputs()
            .iter()
            .map(|&id| circuit.node(id).name())
            .collect();
        let _ = writeln!(out, "  input {};", names.join(", "));
    }
    if !circuit.outputs().is_empty() {
        let names: Vec<&str> = circuit
            .outputs()
            .iter()
            .map(|&id| circuit.node(id).name())
            .collect();
        let _ = writeln!(out, "  output {};", names.join(", "));
    }
    let wires: Vec<&str> = circuit
        .iter()
        .filter(|(id, n)| n.kind() != GateKind::Input && !circuit.outputs().contains(id))
        .map(|(_, n)| n.name())
        .collect();
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    let mut gi = 0usize;
    for (_, node) in circuit.iter() {
        let keyword = match node.kind() {
            GateKind::Input => continue,
            GateKind::Const0 => {
                // Verilog subset: constants as buf-from-literal are not
                // in the grammar; emit a supply-style assign.
                let _ = writeln!(out, "  assign {} = 1'b0;", node.name());
                continue;
            }
            GateKind::Const1 => {
                let _ = writeln!(out, "  assign {} = 1'b1;", node.name());
                continue;
            }
            GateKind::Dff => "dff",
            GateKind::And => "and",
            GateKind::Nand => "nand",
            GateKind::Or => "or",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Not => "not",
            GateKind::Buf => "buf",
        };
        let mut pins: Vec<&str> = vec![node.name()];
        pins.extend(node.fanin().iter().map(|&f| circuit.node(f).name()));
        let _ = writeln!(out, "  {keyword} g{gi} ({});", pins.join(", "));
        gi += 1;
    }
    out.push_str("endmodule\n");
    out
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, 'm');
    }
    s
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Equals,
    /// `1'b0` / `1'b1` literals (for `assign`).
    Literal(bool),
}

fn tokenize(source: &str) -> Result<Vec<(usize, Tok)>, ParseError> {
    let mut out = Vec::new();
    let mut chars = source.char_indices().peekable();
    let line_starts: Vec<usize> = std::iter::once(0)
        .chain(source.match_indices('\n').map(|(i, _)| i + 1))
        .collect();
    let line_of = |byte: usize| -> usize {
        match line_starts.binary_search(&byte) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };
    while let Some(&(i, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                match chars.peek() {
                    Some(&(_, '/')) => {
                        for (_, c2) in chars.by_ref() {
                            if c2 == '\n' {
                                break;
                            }
                        }
                    }
                    Some(&(_, '*')) => {
                        chars.next();
                        let mut prev = ' ';
                        for (_, c2) in chars.by_ref() {
                            if prev == '*' && c2 == '/' {
                                break;
                            }
                            prev = c2;
                        }
                    }
                    _ => {
                        return Err(ParseError::Syntax {
                            line: line_of(i),
                            text: "/".into(),
                        })
                    }
                }
            }
            '(' => {
                out.push((line_of(i), Tok::LParen));
                chars.next();
            }
            ')' => {
                out.push((line_of(i), Tok::RParen));
                chars.next();
            }
            ',' => {
                out.push((line_of(i), Tok::Comma));
                chars.next();
            }
            ';' => {
                out.push((line_of(i), Tok::Semi));
                chars.next();
            }
            '=' => {
                out.push((line_of(i), Tok::Equals));
                chars.next();
            }
            '1' => {
                // Possibly a 1'b0 / 1'b1 literal.
                let rest: String = source[i..].chars().take(4).collect();
                if rest == "1'b0" || rest == "1'b1" {
                    out.push((line_of(i), Tok::Literal(rest == "1'b1")));
                    for _ in 0..4 {
                        chars.next();
                    }
                } else {
                    return Err(ParseError::Syntax {
                        line: line_of(i),
                        text: rest,
                    });
                }
            }
            c if c.is_alphanumeric() || c == '_' || c == '\\' => {
                let start = i;
                let mut end = i;
                while let Some(&(j, c2)) = chars.peek() {
                    if c2.is_alphanumeric() || c2 == '_' || c2 == '$' || c2 == '\\' {
                        end = j + c2.len_utf8();
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((line_of(start), Tok::Ident(source[start..end].to_owned())));
            }
            other => {
                return Err(ParseError::Syntax {
                    line: line_of(i),
                    text: other.to_string(),
                })
            }
        }
    }
    Ok(out)
}

struct Parser<'t> {
    tokens: &'t [(usize, Tok)],
    pos: usize,
}

impl Parser<'_> {
    fn line(&self) -> usize {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |&(l, _)| l)
    }

    fn syntax<T>(&self, what: &str) -> Result<T, ParseError> {
        Err(ParseError::Syntax {
            line: self.line(),
            text: what.to_owned(),
        })
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t);
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> Result<(), ParseError> {
        if self.tokens.get(self.pos).map(|(_, t)| t) == Some(tok) {
            self.pos += 1;
            Ok(())
        } else {
            self.syntax(what)
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.tokens.get(self.pos) {
            Some((_, Tok::Ident(s))) => {
                self.pos += 1;
                Ok(s.clone())
            }
            _ => self.syntax(what),
        }
    }

    /// `name, name, ... ;`
    fn name_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut names = vec![self.ident("signal name")?];
        loop {
            match self.tokens.get(self.pos).map(|(_, t)| t) {
                Some(Tok::Comma) => {
                    self.pos += 1;
                    names.push(self.ident("signal name")?);
                }
                Some(Tok::Semi) => {
                    self.pos += 1;
                    return Ok(names);
                }
                _ => return self.syntax("`,` or `;`"),
            }
        }
    }

    fn module(&mut self) -> Result<Circuit, ParseError> {
        let kw = self.ident("`module`")?;
        if kw != "module" {
            return self.syntax("`module`");
        }
        let name = self.ident("module name")?;
        // Port list (names only; roles come from input/output decls).
        self.expect(&Tok::LParen, "`(`")?;
        loop {
            match self.next() {
                Some(Tok::RParen) => break,
                Some(Tok::Ident(_) | Tok::Comma) => {}
                _ => return self.syntax("port list"),
            }
        }
        self.expect(&Tok::Semi, "`;` after port list")?;

        let mut b = CircuitBuilder::new(name);
        let mut declared_outputs: Vec<String> = Vec::new();
        let mut seen_inputs: HashMap<String, ()> = HashMap::new();
        loop {
            let kw = match self.tokens.get(self.pos) {
                Some((_, Tok::Ident(s))) => s.clone(),
                _ => return self.syntax("statement or `endmodule`"),
            };
            self.pos += 1;
            match kw.as_str() {
                "endmodule" => break,
                "input" => {
                    for n in self.name_list()? {
                        seen_inputs.insert(n.clone(), ());
                        b.input(&n);
                    }
                }
                "output" => {
                    declared_outputs.extend(self.name_list()?);
                }
                "wire" => {
                    // Declarations carry no structure in this subset.
                    let _ = self.name_list()?;
                }
                "assign" => {
                    // assign lhs = rhs ;  (rhs: ident or 1'bX)
                    let lhs = self.ident("assign target")?;
                    self.expect(&Tok::Equals, "`=`")?;
                    match self.next() {
                        Some(Tok::Ident(rhs)) => {
                            let rhs = rhs.clone();
                            b.gate_named(&lhs, GateKind::Buf, &[rhs]);
                        }
                        Some(&Tok::Literal(v)) => {
                            b.constant(&lhs, v);
                        }
                        _ => return self.syntax("assign source"),
                    }
                    self.expect(&Tok::Semi, "`;`")?;
                }
                prim => {
                    let kind = match prim {
                        "and" => GateKind::And,
                        "nand" => GateKind::Nand,
                        "or" => GateKind::Or,
                        "nor" => GateKind::Nor,
                        "xor" => GateKind::Xor,
                        "xnor" => GateKind::Xnor,
                        "not" => GateKind::Not,
                        "buf" => GateKind::Buf,
                        "dff" => GateKind::Dff,
                        other => {
                            return Err(ParseError::UnknownGate {
                                line: self.line(),
                                kind: other.to_owned(),
                            })
                        }
                    };
                    // Optional instance name.
                    if matches!(self.tokens.get(self.pos), Some((_, Tok::Ident(_)))) {
                        self.pos += 1;
                    }
                    self.expect(&Tok::LParen, "`(`")?;
                    let mut pins = vec![self.ident("output pin")?];
                    loop {
                        match self.next() {
                            Some(Tok::Comma) => pins.push(self.ident("input pin")?),
                            Some(Tok::RParen) => break,
                            _ => return self.syntax("pin list"),
                        }
                    }
                    self.expect(&Tok::Semi, "`;`")?;
                    if pins.len() < 2 {
                        return self.syntax("gate needs an output and at least one input");
                    }
                    let (out_pin, in_pins) = pins.split_first().expect("nonempty");
                    b.gate_named(out_pin, kind, in_pins);
                }
            }
        }
        for out in declared_outputs {
            b.mark_output_named(&out);
        }
        Ok(b.finish()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bench;

    const HALF_ADDER: &str = "
// a half adder
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor g1 (s, a, b);
  and g2 (c, a, b);
endmodule
";

    #[test]
    fn parses_half_adder() {
        let c = parse_verilog(HALF_ADDER).unwrap();
        assert_eq!(c.name(), "half_adder");
        assert_eq!(c.num_inputs(), 2);
        assert_eq!(c.num_outputs(), 2);
        assert_eq!(c.num_gates(), 2);
        let s = c.find("s").unwrap();
        assert_eq!(c.node(s).kind(), GateKind::Xor);
    }

    #[test]
    fn comments_and_block_comments() {
        let src = "
/* block
   comment */
module t (a, y);
  input a; // trailing
  output y;
  not g (y, a);
endmodule
";
        let c = parse_verilog(src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn dff_and_assign() {
        let src = "
module seq (x, z);
  input x;
  output z;
  wire d, q;
  not g0 (d, x);
  dff ff (q, d);
  assign z = q;
endmodule
";
        let c = parse_verilog(src).unwrap();
        assert_eq!(c.num_dffs(), 1);
        let z = c.find("z").unwrap();
        assert_eq!(c.node(z).kind(), GateKind::Buf);
    }

    #[test]
    fn constants_via_literals() {
        let src = "
module k (a, y);
  input a;
  output y;
  wire one;
  assign one = 1'b1;
  and g (y, a, one);
endmodule
";
        let c = parse_verilog(src).unwrap();
        let one = c.find("one").unwrap();
        assert_eq!(c.node(one).kind(), GateKind::Const1);
    }

    #[test]
    fn instance_names_optional() {
        let src = "module t (a, y);\ninput a;\noutput y;\nnot (y, a);\nendmodule\n";
        let c = parse_verilog(src).unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn unknown_primitive_reported() {
        let src = "module t (a, y);\ninput a;\noutput y;\nlatch g (y, a);\nendmodule\n";
        match parse_verilog(src) {
            Err(ParseError::UnknownGate { kind, .. }) => assert_eq!(kind, "latch"),
            other => panic!("expected unknown gate, got {other:?}"),
        }
    }

    #[test]
    fn syntax_error_carries_line() {
        let src = "module t (a, y);\ninput a;\noutput y;\nnot g (y a);\nendmodule\n";
        match parse_verilog(src) {
            Err(ParseError::Syntax { line, .. }) => assert_eq!(line, 4),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn round_trip_via_verilog() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(q)\nu = NAND(a, b)\nq = DFF(u)\ny = XOR(u, q)\n",
            "rt",
        )
        .unwrap();
        let text = write_verilog(&c);
        let back = parse_verilog(&text).unwrap();
        assert_eq!(back.num_inputs(), c.num_inputs());
        assert_eq!(back.num_outputs(), c.num_outputs());
        assert_eq!(back.num_dffs(), c.num_dffs());
        assert_eq!(back.num_gates(), c.num_gates());
        // Same functionality pin for pin (names preserved).
        for (id, node) in c.iter() {
            let bid = back.find(node.name()).expect("name preserved");
            assert_eq!(
                back.node(bid).kind(),
                node.kind(),
                "kind of {}",
                node.name()
            );
            let _ = id;
        }
    }

    #[test]
    fn round_trip_with_constants() {
        let src = "INPUT(a)\nOUTPUT(y)\nk = CONST0()\ny = OR(a, k)\n";
        let c = parse_bench(src, "kc").unwrap();
        let back = parse_verilog(&write_verilog(&c)).unwrap();
        let k = back.find("k").unwrap();
        assert_eq!(back.node(k).kind(), GateKind::Const0);
    }

    #[test]
    fn module_name_sanitized_on_write() {
        let c = parse_bench("INPUT(a)\nOUTPUT(a)\n", "weird-name.v").unwrap();
        let text = write_verilog(&c);
        assert!(text.starts_with("module weird_name_v ("));
    }
}
