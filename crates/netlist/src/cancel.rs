//! Cooperative cancellation for long-running compute legs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! requester (the service's wire layer) and a worker (plan compilation,
//! a sweep batch, a Monte-Carlo loop). Workers poll
//! [`CancelToken::check`] at natural checkpoints — between site-batch
//! jobs, Mendo observation blocks, reverse-topological merge chunks —
//! and abort with a [`CancelCause`] when the token has been tripped or
//! its deadline has passed. Cancellation is *cooperative*: nothing is
//! interrupted mid-block, so every checkpoint sees internally
//! consistent state and partial results can simply be dropped.
//!
//! # Examples
//!
//! ```
//! use ser_netlist::{CancelCause, CancelToken};
//!
//! let token = CancelToken::new();
//! assert!(token.check().is_ok());
//! token.cancel();
//! assert_eq!(token.check(), Err(CancelCause::Cancelled));
//!
//! // A deadline in the past trips immediately.
//! let expired = CancelToken::with_deadline(std::time::Instant::now());
//! assert_eq!(expired.check(), Err(CancelCause::DeadlineExceeded));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a cooperative checkpoint aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called (a wire `cancel` op, a
    /// dropped connection, or a test harness).
    Cancelled,
    /// The token's deadline passed before the work finished.
    DeadlineExceeded,
}

impl CancelCause {
    /// The wire error-code string for this cause.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            CancelCause::Cancelled => "cancelled",
            CancelCause::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

impl fmt::Display for CancelCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[derive(Debug)]
struct Inner {
    /// Trip count: 0 = live, anything above = cancelled. A generation
    /// counter rather than a bool so repeated `cancel` calls (the
    /// cancel-vs-complete race) stay idempotent and observable.
    generation: AtomicU64,
    deadline: Option<Instant>,
}

/// Shared cancellation handle: an atomic trip counter plus an optional
/// deadline instant. Clones observe the same state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A live token with no deadline.
    #[must_use]
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                generation: AtomicU64::new(0),
                deadline: None,
            }),
        }
    }

    /// A live token that trips once `deadline` passes.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                generation: AtomicU64::new(0),
                deadline: Some(deadline),
            }),
        }
    }

    /// A live token that trips `timeout` from now.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// The configured deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Trips the token. Idempotent; every clone observes the trip.
    pub fn cancel(&self) {
        self.inner.generation.fetch_add(1, Ordering::Release);
    }

    /// `true` once [`cancel`](Self::cancel) has been called (deadline
    /// expiry does not set this — use [`check`](Self::check)).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.generation.load(Ordering::Acquire) > 0
    }

    /// `true` when `other` is a clone of this token (shares the same
    /// trip state). A registry keyed by client-chosen request ids uses
    /// this to deregister exactly its own token, even if another
    /// request reused the id concurrently.
    #[must_use]
    pub fn ptr_eq(&self, other: &CancelToken) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The cooperative checkpoint: `Ok(())` while live, or the cause to
    /// abort with. An explicit `cancel` wins over a passed deadline so
    /// the requester's intent is reported, not the clock.
    ///
    /// # Errors
    ///
    /// [`CancelCause::Cancelled`] once tripped,
    /// [`CancelCause::DeadlineExceeded`] once the deadline passes.
    pub fn check(&self) -> Result<(), CancelCause> {
        if self.is_cancelled() {
            return Err(CancelCause::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Err(CancelCause::DeadlineExceeded),
            _ => Ok(()),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_trips_every_clone() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(t.ptr_eq(&c));
        assert!(!t.ptr_eq(&CancelToken::new()));
        t.cancel();
        assert_eq!(c.check(), Err(CancelCause::Cancelled));
        assert!(c.is_cancelled());
    }

    #[test]
    fn cancel_is_idempotent() {
        let t = CancelToken::new();
        t.cancel();
        t.cancel();
        assert_eq!(t.check(), Err(CancelCause::Cancelled));
    }

    #[test]
    fn deadline_in_the_future_stays_live() {
        let t = CancelToken::with_timeout(Duration::from_secs(3600));
        assert!(t.check().is_ok());
    }

    #[test]
    fn passed_deadline_trips() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.check(), Err(CancelCause::DeadlineExceeded));
        // Deadline expiry is not an explicit cancel.
        assert!(!t.is_cancelled());
    }

    #[test]
    fn explicit_cancel_wins_over_deadline() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        t.cancel();
        assert_eq!(t.check(), Err(CancelCause::Cancelled));
    }

    #[test]
    fn causes_render_wire_codes() {
        assert_eq!(CancelCause::Cancelled.as_str(), "cancelled");
        assert_eq!(CancelCause::DeadlineExceeded.as_str(), "deadline_exceeded");
        assert_eq!(CancelCause::Cancelled.to_string(), "cancelled");
    }
}
