//! Parser for the ISCAS'85/'89 `.bench` netlist format.
//!
//! The format the benchmark suites (and this crate's generators) use:
//!
//! ```text
//! # comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G10 = DFF(G14)
//! G11 = NAND(G0, G10)
//! ```
//!
//! Signal names may be used before they are defined (ISCAS files list
//! outputs and flip-flops up front).

use crate::builder::CircuitBuilder;
use crate::circuit::Circuit;
use crate::error::ParseError;
use crate::gate::GateKind;

/// Parses a `.bench` netlist from a string.
///
/// `name` becomes the circuit name (usually the file stem).
///
/// # Errors
///
/// Returns [`ParseError::Syntax`] for a malformed line,
/// [`ParseError::UnknownGate`] for an unrecognized gate keyword, and
/// [`ParseError::Semantic`] if the parsed netlist is invalid (undefined
/// signals, duplicate definitions, bad arity, combinational cycles).
///
/// # Examples
///
/// ```
/// let src = "
/// INPUT(a)
/// INPUT(b)
/// OUTPUT(y)
/// y = NAND(a, b)
/// ";
/// let c = ser_netlist::parse_bench(src, "tiny")?;
/// assert_eq!(c.num_inputs(), 2);
/// assert_eq!(c.num_gates(), 1);
/// # Ok::<(), ser_netlist::ParseError>(())
/// ```
pub fn parse_bench(source: &str, name: &str) -> Result<Circuit, ParseError> {
    let mut builder = CircuitBuilder::new(name);
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments (both `#` and C-style `//` seen in the wild).
        let text = match raw.find(['#']) {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let text = match text.find("//") {
            Some(pos) => &text[..pos],
            None => text,
        };
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = strip_decl(text, "INPUT") {
            builder.input(rest);
            continue;
        }
        if let Some(rest) = strip_decl(text, "OUTPUT") {
            builder.mark_output_named(rest);
            continue;
        }
        // Gate line: `lhs = KIND(op1, op2, ...)`
        let Some((lhs, rhs)) = text.split_once('=') else {
            return Err(ParseError::Syntax {
                line,
                text: text.to_owned(),
            });
        };
        let lhs = lhs.trim();
        let rhs = rhs.trim();
        if lhs.is_empty() || !valid_name(lhs) {
            return Err(ParseError::Syntax {
                line,
                text: text.to_owned(),
            });
        }
        let Some(open) = rhs.find('(') else {
            return Err(ParseError::Syntax {
                line,
                text: text.to_owned(),
            });
        };
        let Some(rhs_body) = rhs.strip_suffix(')') else {
            return Err(ParseError::Syntax {
                line,
                text: text.to_owned(),
            });
        };
        let keyword = rhs[..open].trim();
        let kind: GateKind = keyword.parse().map_err(|_| ParseError::UnknownGate {
            line,
            kind: keyword.to_owned(),
        })?;
        let args_text = rhs_body[open + 1..].trim();
        let operands: Vec<&str> = if args_text.is_empty() {
            Vec::new()
        } else {
            args_text.split(',').map(str::trim).collect()
        };
        if operands.iter().any(|o| o.is_empty() || !valid_name(o)) {
            return Err(ParseError::Syntax {
                line,
                text: text.to_owned(),
            });
        }
        builder.gate_named(lhs, kind, &operands);
    }
    Ok(builder.finish()?)
}

/// Matches `KEYWORD(name)` declarations, case-insensitively; returns the
/// inner name.
fn strip_decl<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = text.get(..keyword.len()).and_then(|head| {
        head.eq_ignore_ascii_case(keyword)
            .then(|| text[keyword.len()..].trim_start())
    })?;
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    let inner = inner.trim();
    (valid_name(inner)).then_some(inner)
}

/// Signal names: one or more characters, no whitespace, parens or commas.
fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| !c.is_whitespace() && !matches!(c, '(' | ')' | ',' | '=' | '#'))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::NetlistError;

    const S27_LIKE: &str = "
# a small sequential netlist in the s27 spirit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)

G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)

G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
G17 = NOT(G11)
";

    #[test]
    fn parse_sequential_netlist() {
        let c = parse_bench(S27_LIKE, "s27ish").unwrap();
        assert_eq!(c.name(), "s27ish");
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_gates(), 10);
        // Output G17 = NOT(G11).
        let g17 = c.find("G17").unwrap();
        assert_eq!(c.node(g17).kind(), GateKind::Not);
        assert_eq!(c.outputs(), &[g17]);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = "INPUT(a) # trailing comment\n\n// c-style comment line\nOUTPUT(a)\n";
        let c = parse_bench(src, "c").unwrap();
        assert_eq!(c.num_inputs(), 1);
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn case_insensitive_keywords() {
        let src = "input(a)\noutput(y)\ny = nand(a, a)\n";
        let c = parse_bench(src, "c").unwrap();
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn whitespace_tolerance() {
        let src = "INPUT ( a )\nOUTPUT( y )\n y  =  AND ( a , a )\n";
        let c = parse_bench(src, "c").unwrap();
        assert_eq!(c.find("y").map(|id| c.node(id).kind()), Some(GateKind::And));
    }

    #[test]
    fn syntax_error_reports_line() {
        let src = "INPUT(a)\nthis is not a line\n";
        match parse_bench(src, "c") {
            Err(ParseError::Syntax { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected syntax error, got {other:?}"),
        }
    }

    #[test]
    fn unknown_gate_reported() {
        let src = "INPUT(a)\ny = MAJ3(a, a, a)\nOUTPUT(y)\n";
        match parse_bench(src, "c") {
            Err(ParseError::UnknownGate { line, kind }) => {
                assert_eq!(line, 2);
                assert_eq!(kind, "MAJ3");
            }
            other => panic!("expected unknown gate, got {other:?}"),
        }
    }

    #[test]
    fn undefined_signal_is_semantic_error() {
        let src = "INPUT(a)\ny = AND(a, ghost)\nOUTPUT(y)\n";
        match parse_bench(src, "c") {
            Err(ParseError::Semantic(NetlistError::UndefinedSignal { name })) => {
                assert_eq!(name, "ghost");
            }
            other => panic!("expected undefined signal, got {other:?}"),
        }
    }

    #[test]
    fn missing_paren_is_syntax_error() {
        assert!(matches!(
            parse_bench("y = AND(a, b\n", "c"),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            parse_bench("y = AND a, b)\n", "c"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn empty_operand_is_syntax_error() {
        assert!(matches!(
            parse_bench("INPUT(a)\ny = AND(a, )\nOUTPUT(y)\n", "c"),
            Err(ParseError::Syntax { .. })
        ));
    }

    #[test]
    fn output_before_definition() {
        let src = "OUTPUT(y)\nINPUT(a)\ny = NOT(a)\n";
        let c = parse_bench(src, "c").unwrap();
        assert_eq!(c.num_outputs(), 1);
    }

    #[test]
    fn buff_alias() {
        let src = "INPUT(a)\ny = BUFF(a)\nOUTPUT(y)\n";
        let c = parse_bench(src, "c").unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(c.node(y).kind(), GateKind::Buf);
    }
}
