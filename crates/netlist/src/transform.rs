//! Circuit transformations: TMR (triple modular redundancy) hardening.
//!
//! The paper's conclusion motivates EPP with selective hardening:
//! "identify the most vulnerable components to be protected by soft
//! error hardening techniques." This module implements the archetypal
//! such technique — triplicate a gate and vote — so the suite can close
//! the loop: rank, protect, re-analyze.
//!
//! An SEU striking any *one* of the three copies is outvoted (the other
//! two copies compute the same value from the same fanins), so a TMR'd
//! gate's own soft errors are fully masked. Errors arriving *through*
//! the gate from upstream still propagate — all three copies flip
//! together — which is the correct semantics: TMR protects a gate's own
//! upsets, not its inputs'.

use crate::builder::CircuitBuilder;
use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Applies TMR to the given gates, returning the hardened circuit.
///
/// Each selected node must be a logic gate (primary inputs, flip-flops
/// and constants cannot be triplicated by this transform). The gate is
/// cloned twice (`name__r1`, `name__r2`) and a 2-of-3 majority voter
/// (`name__v*` gates) replaces it in every fanout; the voter output
/// keeps the original name so outputs and downstream logic are
/// untouched.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidNodeId`] if a node id is out of
/// range, or [`NetlistError::BadArity`] wrapped as a semantic error if
/// a selected node is not a logic gate.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, harden_tmr};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let y = c.find("y").unwrap();
/// let hardened = harden_tmr(&c, &[y])?;
/// // One gate became 3 copies + 4 voter gates.
/// assert_eq!(hardened.num_gates(), 7);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn harden_tmr(circuit: &Circuit, nodes: &[NodeId]) -> Result<Circuit, NetlistError> {
    let mut selected = vec![false; circuit.len()];
    for &id in nodes {
        let node = circuit.try_node(id)?;
        if !node.kind().is_logic() {
            return Err(NetlistError::BadArity {
                name: node.name().to_owned(),
                kind: node.kind().to_string(),
                got: node.fanin().len(),
            });
        }
        selected[id.index()] = true;
    }

    let mut b = CircuitBuilder::new(format!("{}_tmr", circuit.name()));
    // Recreate every node in arena order; names are preserved, so
    // name-based references (gate_named) resolve regardless of order.
    for (id, node) in circuit.iter() {
        let fanin_names: Vec<String> = node
            .fanin()
            .iter()
            .map(|&f| circuit.node(f).name().to_owned())
            .collect();
        match node.kind() {
            GateKind::Input => {
                b.input(node.name());
            }
            GateKind::Const0 => {
                b.constant(node.name(), false);
            }
            GateKind::Const1 => {
                b.constant(node.name(), true);
            }
            GateKind::Dff => {
                b.gate_named(node.name(), GateKind::Dff, &fanin_names);
            }
            kind if selected[id.index()] => {
                // Three copies feeding a 2-of-3 majority voter that
                // inherits the original name.
                let name = node.name();
                let copy0 = format!("{name}__r0");
                let copy1 = format!("{name}__r1");
                let copy2 = format!("{name}__r2");
                b.gate_named(&copy0, kind, &fanin_names);
                b.gate_named(&copy1, kind, &fanin_names);
                b.gate_named(&copy2, kind, &fanin_names);
                let p01 = format!("{name}__v01");
                let p12 = format!("{name}__v12");
                let p02 = format!("{name}__v02");
                b.gate_named(&p01, GateKind::And, &[copy0.clone(), copy1.clone()]);
                b.gate_named(&p12, GateKind::And, &[copy1, copy2.clone()]);
                b.gate_named(&p02, GateKind::And, &[copy0, copy2]);
                b.gate_named(name, GateKind::Or, &[p01, p12, p02]);
            }
            kind => {
                b.gate_named(node.name(), kind, &fanin_names);
            }
        }
    }
    for &po in circuit.outputs() {
        b.mark_output_named(circuit.node(po).name());
    }
    b.finish()
}

/// Replaces one logic gate's kind, keeping its name, fanins and every
/// other node untouched. The returned circuit keeps the original name:
/// a kind swap is an in-place ECO, not a derived variant.
///
/// Both the current node and the replacement `kind` must be pure logic
/// ([`GateKind::is_logic`]), and the node's existing fanin count must
/// satisfy the new kind's [`GateKind::arity_ok`] — so a 3-input gate
/// cannot become a NOT.
///
/// # Errors
///
/// Returns [`NetlistError::InvalidNodeId`] if `node` is out of range,
/// or [`NetlistError::BadArity`] if either kind check above fails.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, swap_kind, GateKind};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let y = c.find("y").unwrap();
/// let swapped = swap_kind(&c, y, GateKind::Nor)?;
/// assert_eq!(swapped.node(swapped.find("y").unwrap()).kind(), GateKind::Nor);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn swap_kind(circuit: &Circuit, node: NodeId, kind: GateKind) -> Result<Circuit, NetlistError> {
    let target = circuit.try_node(node)?;
    if !target.kind().is_logic() || !kind.is_logic() || !kind.arity_ok(target.fanin().len()) {
        return Err(NetlistError::BadArity {
            name: target.name().to_owned(),
            kind: kind.to_string(),
            got: target.fanin().len(),
        });
    }

    let mut b = CircuitBuilder::new(circuit.name().to_owned());
    for (id, n) in circuit.iter() {
        let fanin_names: Vec<String> = n
            .fanin()
            .iter()
            .map(|&f| circuit.node(f).name().to_owned())
            .collect();
        match n.kind() {
            GateKind::Input => {
                b.input(n.name());
            }
            GateKind::Const0 => {
                b.constant(n.name(), false);
            }
            GateKind::Const1 => {
                b.constant(n.name(), true);
            }
            k => {
                let k = if id == node { kind } else { k };
                b.gate_named(n.name(), k, &fanin_names);
            }
        }
    }
    for &po in circuit.outputs() {
        b.mark_output_named(circuit.node(po).name());
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bench;

    #[test]
    fn single_gate_tmr_counts() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let y = c.find("y").unwrap();
        let h = harden_tmr(&c, &[y]).unwrap();
        assert_eq!(h.name(), "t_tmr");
        assert_eq!(h.num_gates(), 7); // 3 copies + 3 AND + 1 OR
        assert_eq!(h.num_inputs(), 2);
        assert_eq!(h.num_outputs(), 1);
        // The PO is still named y (the voter).
        let yv = h.outputs()[0];
        assert_eq!(h.node(yv).name(), "y");
        assert_eq!(h.node(yv).kind(), GateKind::Or);
    }

    #[test]
    fn rejects_non_gate_nodes() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let a = c.find("a").unwrap();
        assert!(harden_tmr(&c, &[a]).is_err());
    }

    #[test]
    fn sequential_circuit_tmr() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(z)\nq = DFF(d)\nd = NOT(x)\nz = AND(q, x)\n",
            "s",
        )
        .unwrap();
        let d = c.find("d").unwrap();
        let h = harden_tmr(&c, &[d]).unwrap();
        assert_eq!(h.num_dffs(), 1);
        // The DFF still reads the (voted) d.
        let q = h.find("q").unwrap();
        let dv = h.node(q).fanin()[0];
        assert_eq!(h.node(dv).name(), "d");
    }

    #[test]
    fn swap_kind_replaces_exactly_one_kind() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(m, a)\n",
            "t",
        )
        .unwrap();
        let m = c.find("m").unwrap();
        let s = swap_kind(&c, m, GateKind::Nand).unwrap();
        assert_eq!(s.name(), "t", "kind swap keeps the circuit name");
        assert_eq!(s.len(), c.len());
        for (id, node) in c.iter() {
            let sn = s.node(s.find(node.name()).unwrap());
            let expect = if id == m { GateKind::Nand } else { node.kind() };
            assert_eq!(sn.kind(), expect, "{}", node.name());
            let fanins: Vec<&str> = sn.fanin().iter().map(|&f| s.node(f).name()).collect();
            let orig: Vec<&str> = node.fanin().iter().map(|&f| c.node(f).name()).collect();
            assert_eq!(fanins, orig, "{}", node.name());
        }
    }

    #[test]
    fn swap_kind_rejects_bad_targets() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(d)\nOUTPUT(y)\nq = DFF(d)\ny = AND(a, b, q)\n",
            "t",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let q = c.find("q").unwrap();
        let y = c.find("y").unwrap();
        assert!(swap_kind(&c, a, GateKind::Not).is_err(), "input target");
        assert!(swap_kind(&c, q, GateKind::And).is_err(), "dff target");
        assert!(swap_kind(&c, y, GateKind::Dff).is_err(), "non-logic kind");
        assert!(swap_kind(&c, y, GateKind::Not).is_err(), "arity mismatch");
        assert!(swap_kind(&c, y, GateKind::Xor).is_ok(), "n-ary swap ok");
    }

    #[test]
    fn empty_selection_is_identity_modulo_name() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let h = harden_tmr(&c, &[]).unwrap();
        assert_eq!(h.num_gates(), c.num_gates());
        assert_eq!(h.num_inputs(), c.num_inputs());
    }
}
