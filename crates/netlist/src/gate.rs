//! Gate kinds and their boolean semantics.

use std::fmt;
use std::str::FromStr;

/// The kind of a circuit node.
///
/// Primary inputs and flip-flops are modelled as node kinds so a
/// [`Circuit`](crate::Circuit) is a single homogeneous arena: a
/// [`GateKind::Input`] node has no fanin, a [`GateKind::Dff`] node has
/// exactly one fanin (its D pin) and acts as a *source* for combinational
/// analysis (its Q output) and as a *sink* for the D signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Primary input (no fanin).
    Input,
    /// D flip-flop; fanin is the single D signal, node value is Q.
    Dff,
    /// Logical AND of all fanins (n >= 1).
    And,
    /// Logical NAND of all fanins (n >= 1).
    Nand,
    /// Logical OR of all fanins (n >= 1).
    Or,
    /// Logical NOR of all fanins (n >= 1).
    Nor,
    /// Inverter (exactly 1 fanin).
    Not,
    /// Buffer (exactly 1 fanin).
    Buf,
    /// Exclusive OR of all fanins (n >= 1), i.e. odd parity.
    Xor,
    /// Complement of XOR, i.e. even parity (n >= 1).
    Xnor,
    /// Constant logic 0 (no fanin).
    Const0,
    /// Constant logic 1 (no fanin).
    Const1,
}

impl GateKind {
    /// All gate kinds, in a fixed order (useful for exhaustive tests).
    pub const ALL: [GateKind; 12] = [
        GateKind::Input,
        GateKind::Dff,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Const0,
        GateKind::Const1,
    ];

    /// The kinds that compute a boolean function of their fanins
    /// (everything except inputs, flip-flops and constants).
    pub const LOGIC: [GateKind; 8] = [
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Not,
        GateKind::Buf,
        GateKind::Xor,
        GateKind::Xnor,
    ];

    /// Returns `true` if `n` is a legal fanin count for this kind.
    ///
    /// `AND`/`NAND`/`OR`/`NOR`/`XOR`/`XNOR` accept one or more inputs
    /// (a one-input AND degenerates to a buffer, one-input NAND to an
    /// inverter, and so on — the evaluation rules below honour this).
    #[must_use]
    pub fn arity_ok(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Dff | GateKind::Not | GateKind::Buf => n == 1,
            GateKind::And
            | GateKind::Nand
            | GateKind::Or
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => n >= 1,
        }
    }

    /// Returns `true` for kinds that are pure logic gates (excludes
    /// inputs, flip-flops and constants).
    #[must_use]
    pub fn is_logic(self) -> bool {
        !matches!(
            self,
            GateKind::Input | GateKind::Dff | GateKind::Const0 | GateKind::Const1
        )
    }

    /// Returns `true` if the gate inverts the parity of a propagating
    /// error from *one* of its inputs (NAND, NOR, NOT, XNOR).
    #[must_use]
    pub fn inverting(self) -> bool {
        matches!(
            self,
            GateKind::Nand | GateKind::Nor | GateKind::Not | GateKind::Xnor
        )
    }

    /// Evaluate the gate over boolean fanin values.
    ///
    /// # Panics
    ///
    /// Panics (debug assertion) if `inputs.len()` violates
    /// [`arity_ok`](Self::arity_ok), and panics for [`GateKind::Input`]
    /// (inputs have no defining function). [`GateKind::Dff`] evaluates to
    /// its D input, which is the *next-state* function — sequential
    /// semantics live in the simulator, not here.
    #[must_use]
    pub fn eval_bool(self, inputs: &[bool]) -> bool {
        debug_assert!(
            self.arity_ok(inputs.len()),
            "{self} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary input has no defining function"),
            GateKind::Const0 => false,
            GateKind::Const1 => true,
            GateKind::Dff | GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().fold(false, |acc, &b| acc ^ b),
            GateKind::Xnor => !inputs.iter().fold(false, |acc, &b| acc ^ b),
        }
    }

    /// Evaluate the gate bitwise over 64-pattern words (one pattern per
    /// bit), the workhorse of the bit-parallel simulator.
    ///
    /// # Panics
    ///
    /// Same conditions as [`eval_bool`](Self::eval_bool).
    #[must_use]
    pub fn eval_word(self, inputs: &[u64]) -> u64 {
        debug_assert!(
            self.arity_ok(inputs.len()),
            "{self} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input => panic!("primary input has no defining function"),
            GateKind::Const0 => 0,
            GateKind::Const1 => !0,
            GateKind::Dff | GateKind::Buf => inputs[0],
            GateKind::Not => !inputs[0],
            GateKind::And => inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Nand => !inputs.iter().fold(!0u64, |acc, &w| acc & w),
            GateKind::Or => inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Nor => !inputs.iter().fold(0u64, |acc, &w| acc | w),
            GateKind::Xor => inputs.iter().fold(0u64, |acc, &w| acc ^ w),
            GateKind::Xnor => !inputs.iter().fold(0u64, |acc, &w| acc ^ w),
        }
    }

    /// The `.bench` keyword for this kind, upper-case.
    ///
    /// Inputs and constants have no gate keyword in the bench format;
    /// they are rendered as declarations by the writer instead.
    #[must_use]
    pub fn bench_keyword(self) -> &'static str {
        match self {
            GateKind::Input => "INPUT",
            GateKind::Dff => "DFF",
            GateKind::And => "AND",
            GateKind::Nand => "NAND",
            GateKind::Or => "OR",
            GateKind::Nor => "NOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.bench_keyword())
    }
}

/// Error returned when parsing a [`GateKind`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateKindError {
    text: String,
}

impl fmt::Display for ParseGateKindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate kind `{}`", self.text)
    }
}

impl std::error::Error for ParseGateKindError {}

impl FromStr for GateKind {
    type Err = ParseGateKindError;

    /// Parses a `.bench`-style keyword, case-insensitively. `BUFF` is
    /// accepted as an alias for `BUF` (both spellings appear in the wild).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let up = s.to_ascii_uppercase();
        Ok(match up.as_str() {
            "INPUT" => GateKind::Input,
            "DFF" => GateKind::Dff,
            "AND" => GateKind::And,
            "NAND" => GateKind::Nand,
            "OR" => GateKind::Or,
            "NOR" => GateKind::Nor,
            "NOT" | "INV" => GateKind::Not,
            "BUF" | "BUFF" => GateKind::Buf,
            "XOR" => GateKind::Xor,
            "XNOR" => GateKind::Xnor,
            "CONST0" => GateKind::Const0,
            "CONST1" => GateKind::Const1,
            _ => return Err(ParseGateKindError { text: s.to_owned() }),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_rules() {
        assert!(GateKind::Input.arity_ok(0));
        assert!(!GateKind::Input.arity_ok(1));
        assert!(GateKind::Not.arity_ok(1));
        assert!(!GateKind::Not.arity_ok(2));
        assert!(GateKind::Dff.arity_ok(1));
        assert!(!GateKind::Dff.arity_ok(0));
        assert!(GateKind::And.arity_ok(1));
        assert!(GateKind::And.arity_ok(9));
        assert!(!GateKind::And.arity_ok(0));
        assert!(GateKind::Const0.arity_ok(0));
        assert!(!GateKind::Const1.arity_ok(1));
    }

    #[test]
    fn eval_two_input_truth_tables() {
        let cases: [(GateKind, [bool; 4]); 6] = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expected) in cases {
            for (i, want) in expected.iter().enumerate() {
                let a = i & 1 != 0;
                let b = i & 2 != 0;
                assert_eq!(kind.eval_bool(&[a, b]), *want, "{kind}({a},{b})");
            }
        }
    }

    #[test]
    fn eval_unary() {
        assert!(!GateKind::Not.eval_bool(&[true]));
        assert!(GateKind::Not.eval_bool(&[false]));
        assert!(GateKind::Buf.eval_bool(&[true]));
        assert!(!GateKind::Buf.eval_bool(&[false]));
        assert!(GateKind::Dff.eval_bool(&[true]));
    }

    #[test]
    fn eval_constants() {
        assert!(!GateKind::Const0.eval_bool(&[]));
        assert!(GateKind::Const1.eval_bool(&[]));
    }

    #[test]
    fn eval_multi_input_parity() {
        // XOR over 3 inputs is odd parity.
        assert!(GateKind::Xor.eval_bool(&[true, true, true]));
        assert!(!GateKind::Xor.eval_bool(&[true, true, false]));
        assert!(!GateKind::Xnor.eval_bool(&[true, true, true]));
    }

    #[test]
    fn word_eval_matches_bool_eval() {
        // For every logic kind and every 3-input assignment, the word
        // evaluation of broadcast constants must equal the bool evaluation.
        for kind in GateKind::LOGIC {
            let n = if matches!(kind, GateKind::Not | GateKind::Buf) {
                1
            } else {
                3
            };
            for bits in 0u32..(1 << n) {
                let bools: Vec<bool> = (0..n).map(|i| bits >> i & 1 != 0).collect();
                let words: Vec<u64> = bools.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let want = if kind.eval_bool(&bools) { !0u64 } else { 0 };
                assert_eq!(kind.eval_word(&words), want, "{kind} {bools:?}");
            }
        }
    }

    #[test]
    fn word_eval_is_bitwise_independent() {
        // Bit i of the output depends only on bit i of the inputs.
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval_word(&[a, b]), 0b1000);
        assert_eq!(GateKind::Or.eval_word(&[a, b]), 0b1110);
        assert_eq!(GateKind::Xor.eval_word(&[a, b]), 0b0110);
        assert_eq!(GateKind::Nand.eval_word(&[a, b]) & 0xF, 0b0111);
    }

    #[test]
    fn keyword_round_trip() {
        for kind in GateKind::ALL {
            let parsed: GateKind = kind.bench_keyword().parse().unwrap();
            assert_eq!(parsed, kind);
            // lower-case also accepted
            let parsed: GateKind = kind.bench_keyword().to_lowercase().parse().unwrap();
            assert_eq!(parsed, kind);
        }
    }

    #[test]
    fn parse_aliases_and_failures() {
        assert_eq!("BUFF".parse::<GateKind>().unwrap(), GateKind::Buf);
        assert_eq!("inv".parse::<GateKind>().unwrap(), GateKind::Not);
        assert!("MAJ".parse::<GateKind>().is_err());
        let err = "FOO".parse::<GateKind>().unwrap_err();
        assert!(err.to_string().contains("FOO"));
    }

    #[test]
    fn inverting_classification() {
        assert!(GateKind::Nand.inverting());
        assert!(GateKind::Nor.inverting());
        assert!(GateKind::Not.inverting());
        assert!(GateKind::Xnor.inverting());
        assert!(!GateKind::And.inverting());
        assert!(!GateKind::Or.inverting());
        assert!(!GateKind::Buf.inverting());
        assert!(!GateKind::Xor.inverting());
    }
}
