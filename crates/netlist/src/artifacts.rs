//! Cached per-circuit structural artifacts.
//!
//! Every analysis in the suite needs the same three things before it can
//! touch a circuit: a topological order of the combinational graph, the
//! inverse position map (`node → rank in that order`), and the list of
//! observe points. Historically each entry point recomputed them;
//! [`TopoArtifacts`] computes them **once** so a session layer (see
//! `ser-epp`'s `AnalysisSession`) can hand the same compiled artifacts
//! to the EPP engine, the simulators and the signal-probability
//! engines.

use std::sync::{Arc, OnceLock};

use crate::cancel::{CancelCause, CancelToken};
use crate::circuit::{Circuit, NodeId, ObservePoint};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::plan::ConePlans;
use crate::topo;

/// The compiled structural context of one circuit: topological order,
/// topological positions, observe points and the DFF-clipped fanout
/// adjacency in CSR form, computed exactly once — plus a lazily built,
/// shared [`ConePlans`] cache for the whole-circuit sweep.
///
/// The artifacts are immutable and refer to the circuit only by node
/// ids, so they stay valid for as long as the circuit is unchanged and
/// can be shared freely (e.g. behind an `Arc`) between consumers.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, TopoArtifacts};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let topo = TopoArtifacts::compute(&c)?;
/// assert_eq!(topo.order().len(), c.len());
/// // The AND gate orders after both of its inputs.
/// let y = c.find("y").unwrap();
/// let a = c.find("a").unwrap();
/// assert!(topo.position(y) > topo.position(a));
/// assert_eq!(topo.observe_points().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopoArtifacts {
    order: Vec<NodeId>,
    position: Vec<u32>,
    observe: Vec<ObservePoint>,
    /// CSR offsets into `comb_fanout`: node `i`'s combinational
    /// successors are `comb_fanout[comb_fanout_off[i]..comb_fanout_off[i+1]]`.
    comb_fanout_off: Vec<u32>,
    /// Flattened DFF-clipped fanout lists (an error does not propagate
    /// *through* a flip-flop within a cycle, so edges into DFF nodes are
    /// dropped here once instead of being re-filtered per traversal).
    comb_fanout: Vec<NodeId>,
    /// Lazily built cone plans, shared by every clone of these
    /// artifacts (cloning shares the already-built cache). `Some(None)`
    /// records that the circuit's plan arena exceeded the member budget
    /// and per-site traversal should be used instead.
    plans: OnceLock<Option<Arc<ConePlans>>>,
}

/// Equality ignores the lazy plan cache: two artifacts are equal when
/// their structural content is.
impl PartialEq for TopoArtifacts {
    fn eq(&self, other: &Self) -> bool {
        self.order == other.order
            && self.position == other.position
            && self.observe == other.observe
            && self.comb_fanout_off == other.comb_fanout_off
            && self.comb_fanout == other.comb_fanout
    }
}

impl TopoArtifacts {
    /// Computes the artifacts for `circuit`: one topological sort, one
    /// observe-point scan and one fanout-adjacency flattening.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit's
    /// combinational graph is cyclic.
    pub fn compute(circuit: &Circuit) -> Result<Self, NetlistError> {
        let order = topo::topo_order(circuit)?;
        let mut position = vec![0u32; circuit.len()];
        for (i, id) in order.iter().enumerate() {
            position[id.index()] = u32::try_from(i).expect("node count fits u32");
        }
        let observe = circuit.observe_points().collect();
        let mut comb_fanout_off = Vec::with_capacity(circuit.len() + 1);
        let mut comb_fanout = Vec::new();
        comb_fanout_off.push(0);
        for id in circuit.node_ids() {
            for &succ in circuit.node(id).fanout() {
                if circuit.node(succ).kind() != GateKind::Dff {
                    comb_fanout.push(succ);
                }
            }
            comb_fanout_off.push(u32::try_from(comb_fanout.len()).expect("edge count fits u32"));
        }
        Ok(TopoArtifacts {
            order,
            position,
            observe,
            comb_fanout_off,
            comb_fanout,
            plans: OnceLock::new(),
        })
    }

    /// The topological evaluation order over combinational edges.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Rank of each node in [`order`](Self::order), indexed by
    /// [`NodeId::index`].
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.position
    }

    /// Rank of one node in the topological order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the circuit these artifacts
    /// were computed from.
    #[must_use]
    pub fn position(&self, id: NodeId) -> u32 {
        self.position[id.index()]
    }

    /// The circuit's observe points (primary outputs, then flip-flops),
    /// in declaration order.
    #[must_use]
    pub fn observe_points(&self) -> &[ObservePoint] {
        &self.observe
    }

    /// The DFF-clipped combinational fanout of one node: every
    /// successor an error can combinationally propagate into.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the circuit these artifacts
    /// were computed from.
    #[must_use]
    pub fn comb_fanout(&self, id: NodeId) -> &[NodeId] {
        &self.comb_fanout[self.comb_fanout_off[id.index()] as usize
            ..self.comb_fanout_off[id.index() + 1] as usize]
    }

    /// Marks every node whose DFF-clipped cone intersects `seeds` —
    /// the what-if engine's dirty-*site* query. A site's cone is itself
    /// plus its forward closure over the clipped fanout, so the sites
    /// whose cones touch a seed are exactly the seeds' combinational
    /// ancestors (seeds included): the returned mask is computed by one
    /// backward traversal over fanin edges, never entering a flip-flop
    /// from below (an edge *into* a DFF is not a combinational edge, so
    /// a DFF seed is only ever in its own cone).
    ///
    /// Equivalent to testing every site's [`ConePlan`] position list
    /// against the seed set (see
    /// [`ConePlan::intersects`](crate::ConePlan::intersects)),
    /// but O(ancestors + edges) instead of O(sum of cones).
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not the circuit these artifacts were
    /// computed from, or a seed is out of range.
    #[must_use]
    pub fn comb_ancestors(
        &self,
        circuit: &Circuit,
        seeds: impl IntoIterator<Item = NodeId>,
    ) -> Vec<bool> {
        assert_eq!(circuit.len(), self.len(), "artifacts' own circuit");
        let mut marked = vec![false; circuit.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for seed in seeds {
            if !marked[seed.index()] {
                marked[seed.index()] = true;
                stack.push(seed);
            }
        }
        while let Some(id) = stack.pop() {
            // No combinational edge enters a DFF: stop walking up here.
            if circuit.node(id).kind() == GateKind::Dff {
                continue;
            }
            for &pred in circuit.node(id).fanin() {
                if !marked[pred.index()] {
                    marked[pred.index()] = true;
                    stack.push(pred);
                }
            }
        }
        marked
    }

    /// Marks the forward closure of `seeds` over the DFF-clipped
    /// fanout (seeds included) — the nodes an edit at the seeds can
    /// combinationally influence within one cycle.
    ///
    /// # Panics
    ///
    /// Panics if a seed is out of range.
    #[must_use]
    pub fn comb_descendants(&self, seeds: impl IntoIterator<Item = NodeId>) -> Vec<bool> {
        let mut marked = vec![false; self.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for seed in seeds {
            if !marked[seed.index()] {
                marked[seed.index()] = true;
                stack.push(seed);
            }
        }
        while let Some(id) = stack.pop() {
            for &succ in self.comb_fanout(id) {
                if !marked[succ.index()] {
                    marked[succ.index()] = true;
                    stack.push(succ);
                }
            }
        }
        marked
    }

    /// The already-built cone plans, if any — a peek that never
    /// triggers compilation. The what-if engine uses this to decide
    /// whether a dirty re-sweep can ride the warm plan kernel or should
    /// take the per-site reference path instead of paying a cold plan
    /// compile it was created to avoid.
    #[must_use]
    pub fn cone_plans_primed(&self) -> Option<&Arc<ConePlans>> {
        self.plans.get().and_then(Option::as_ref)
    }

    /// The cached per-site cone plans, built on first use and shared by
    /// every consumer of these artifacts (the batched sweep engine reads
    /// them instead of re-running a DFS + sort per site per sweep).
    /// Compilation uses the reverse-topological merge builder
    /// ([`ConePlans::build_bounded`]), which derives each cone from its
    /// successors' instead of rediscovering it by DFS.
    ///
    /// Returns `None` — once, cached — when the circuit's plan arena
    /// would exceed [`ConePlans::DEFAULT_MEMBER_BUDGET`] total cone
    /// members (sum-of-cones is Θ(n²) in the worst case); callers fall
    /// back to per-site traversal, which needs only O(n) scratch.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not the circuit these artifacts were
    /// computed from.
    #[must_use]
    pub fn cone_plans(&self, circuit: &Circuit) -> Option<&Arc<ConePlans>> {
        assert_eq!(
            circuit.len(),
            self.len(),
            "cone plans require the artifacts' own circuit"
        );
        self.plans
            .get_or_init(|| {
                ConePlans::build_bounded(circuit, self, ConePlans::DEFAULT_MEMBER_BUDGET)
                    .map(Arc::new)
            })
            .as_ref()
    }

    /// [`cone_plans`](Self::cone_plans) with a cooperative cancel
    /// checkpoint inside the compile.
    ///
    /// A tripped token aborts the build and returns the cause — and,
    /// critically, leaves the plan slot *empty*: the build runs outside
    /// the `OnceLock` initializer, so a cancelled compile never poisons
    /// the cache and the next caller compiles from scratch. If two
    /// callers race, the loser's freshly-built plans are discarded and
    /// the winner's are returned (same single-winner semantics as
    /// `OnceLock`, paid only on a cold concurrent miss).
    ///
    /// # Errors
    ///
    /// Returns the [`CancelCause`] when `cancel` trips mid-build.
    ///
    /// # Panics
    ///
    /// Panics if `circuit` is not the circuit these artifacts were
    /// computed from.
    pub fn cone_plans_cancellable(
        &self,
        circuit: &Circuit,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<&Arc<ConePlans>>, CancelCause> {
        assert_eq!(
            circuit.len(),
            self.len(),
            "cone plans require the artifacts' own circuit"
        );
        if let Some(slot) = self.plans.get() {
            return Ok(slot.as_ref());
        }
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let built = ConePlans::build_bounded_cancellable(
            circuit,
            self,
            ConePlans::DEFAULT_MEMBER_BUDGET,
            threads,
            cancel,
        )?
        .map(Arc::new);
        Ok(self.plans.get_or_init(|| built).as_ref())
    }

    /// Seeds the plan cache with already-compiled plans (e.g. loaded
    /// from a persistent [`crate::PlanCache`] entry), so the first
    /// [`cone_plans`](Self::cone_plans) call returns them instead of
    /// compiling. Returns `false` — and changes nothing — if plans
    /// were already built or primed for these artifacts.
    ///
    /// The caller is responsible for `plans` belonging to the same
    /// circuit as these artifacts (the service keys cache entries by
    /// [`Circuit::structural_hash`] and verifies circuit equality
    /// before reuse, exactly like its session cache).
    pub fn prime_cone_plans(&self, plans: Arc<ConePlans>) -> bool {
        self.plans.set(Some(plans)).is_ok()
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if computed from an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bench;

    #[test]
    fn artifacts_match_direct_computation() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(u)\nu = NAND(a, b)\nq = DFF(u)\ny = XOR(u, q)\n",
            "t",
        )
        .unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        assert_eq!(t.order(), topo::topo_order(&c).unwrap().as_slice());
        assert!(topo::is_topo_order(&c, t.order()));
        assert_eq!(t.len(), c.len());
        assert!(!t.is_empty());
        for (i, &id) in t.order().iter().enumerate() {
            assert_eq!(t.position(id) as usize, i);
            assert_eq!(t.positions()[id.index()] as usize, i);
        }
        let direct: Vec<_> = c.observe_points().collect();
        assert_eq!(t.observe_points(), direct.as_slice());
    }

    #[test]
    fn cyclic_circuit_is_rejected() {
        // a = NOT(b); b = NOT(a) with no flip-flop in between.
        let src = "INPUT(x)\nOUTPUT(a)\na = NOT(b)\nb = NOT(a)\n";
        let c = parse_bench(src, "cyc");
        // The parser itself may reject the cycle; if it builds, the
        // artifacts must reject it.
        if let Ok(c) = c {
            assert!(matches!(
                TopoArtifacts::compute(&c),
                Err(NetlistError::CombinationalCycle { .. })
            ));
        }
    }

    #[test]
    fn comb_fanout_matches_filtered_node_fanout() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(u)\nu = NAND(a, b)\nq = DFF(u)\ny = XOR(u, q)\n",
            "t",
        )
        .unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        for id in c.node_ids() {
            let expected: Vec<_> = c
                .node(id)
                .fanout()
                .iter()
                .copied()
                .filter(|&s| c.node(s).kind() != crate::GateKind::Dff)
                .collect();
            assert_eq!(t.comb_fanout(id), expected.as_slice(), "node {id}");
        }
        // u drives the DFF q and the XOR y: only y survives clipping.
        let u = c.find("u").unwrap();
        let y = c.find("y").unwrap();
        assert_eq!(t.comb_fanout(u), &[y]);
    }

    #[test]
    fn cone_plans_are_cached_and_shared() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        let p1 = std::sync::Arc::clone(t.cone_plans(&c).expect("tiny circuit fits budget"));
        let p2 = std::sync::Arc::clone(t.cone_plans(&c).unwrap());
        assert!(std::sync::Arc::ptr_eq(&p1, &p2), "built once, shared");
        assert_eq!(p1.len(), c.len());
        // Clones of the artifacts share the already-built cache.
        let t2 = t.clone();
        assert!(std::sync::Arc::ptr_eq(t2.cone_plans(&c).unwrap(), &p1));
        // Equality ignores cache state.
        let fresh = TopoArtifacts::compute(&c).unwrap();
        assert_eq!(t, fresh);
    }

    #[test]
    fn comb_ancestors_marks_exactly_cone_intersecting_sites() {
        // u = NAND(a,b); q = DFF(u); y = XOR(u,q): seeding y marks
        // everything combinationally upstream of y, clipped at the DFF.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(u)\nu = NAND(a, b)\nq = DFF(u)\ny = XOR(u, q)\n",
            "t",
        )
        .unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        let y = c.find("y").unwrap();
        let got = t.comb_ancestors(&c, [y]);
        // Oracle: forward-DFS every site's cone and test membership.
        for site in c.node_ids() {
            let desc = t.comb_descendants([site]);
            assert_eq!(
                got[site.index()],
                desc[y.index()],
                "site {site}: ancestor mask must equal cone-contains-seed"
            );
        }
        // The DFF's cone is itself only: seeding q marks just q.
        let q = c.find("q").unwrap();
        let only_q = t.comb_ancestors(&c, [q]);
        assert_eq!(only_q.iter().filter(|&&m| m).count(), 1);
        assert!(only_q[q.index()]);
    }

    #[test]
    fn cone_plans_primed_is_a_peek() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        assert!(t.cone_plans_primed().is_none(), "peek must not compile");
        let built = std::sync::Arc::clone(t.cone_plans(&c).unwrap());
        assert!(std::sync::Arc::ptr_eq(
            t.cone_plans_primed().unwrap(),
            &built
        ));
    }

    #[test]
    fn empty_circuit_artifacts() {
        let c = crate::builder::CircuitBuilder::new("empty")
            .finish()
            .unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        assert!(t.is_empty());
        assert!(t.observe_points().is_empty());
    }
}
