//! Cached per-circuit structural artifacts.
//!
//! Every analysis in the suite needs the same three things before it can
//! touch a circuit: a topological order of the combinational graph, the
//! inverse position map (`node → rank in that order`), and the list of
//! observe points. Historically each entry point recomputed them;
//! [`TopoArtifacts`] computes them **once** so a session layer (see
//! `ser-epp`'s `AnalysisSession`) can hand the same compiled artifacts
//! to the EPP engine, the simulators and the signal-probability
//! engines.

use crate::circuit::{Circuit, NodeId, ObservePoint};
use crate::error::NetlistError;
use crate::topo;

/// The compiled structural context of one circuit: topological order,
/// topological positions and observe points, computed exactly once.
///
/// The artifacts are immutable and refer to the circuit only by node
/// ids, so they stay valid for as long as the circuit is unchanged and
/// can be shared freely (e.g. behind an `Arc`) between consumers.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, TopoArtifacts};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let topo = TopoArtifacts::compute(&c)?;
/// assert_eq!(topo.order().len(), c.len());
/// // The AND gate orders after both of its inputs.
/// let y = c.find("y").unwrap();
/// let a = c.find("a").unwrap();
/// assert!(topo.position(y) > topo.position(a));
/// assert_eq!(topo.observe_points().len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TopoArtifacts {
    order: Vec<NodeId>,
    position: Vec<u32>,
    observe: Vec<ObservePoint>,
}

impl TopoArtifacts {
    /// Computes the artifacts for `circuit`: one topological sort plus
    /// one observe-point scan.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit's
    /// combinational graph is cyclic.
    pub fn compute(circuit: &Circuit) -> Result<Self, NetlistError> {
        let order = topo::topo_order(circuit)?;
        let mut position = vec![0u32; circuit.len()];
        for (i, id) in order.iter().enumerate() {
            position[id.index()] = u32::try_from(i).expect("node count fits u32");
        }
        let observe = circuit.observe_points().collect();
        Ok(TopoArtifacts {
            order,
            position,
            observe,
        })
    }

    /// The topological evaluation order over combinational edges.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Rank of each node in [`order`](Self::order), indexed by
    /// [`NodeId::index`].
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.position
    }

    /// Rank of one node in the topological order.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the circuit these artifacts
    /// were computed from.
    #[must_use]
    pub fn position(&self, id: NodeId) -> u32 {
        self.position[id.index()]
    }

    /// The circuit's observe points (primary outputs, then flip-flops),
    /// in declaration order.
    #[must_use]
    pub fn observe_points(&self) -> &[ObservePoint] {
        &self.observe
    }

    /// Number of nodes covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if computed from an empty circuit.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_bench;

    #[test]
    fn artifacts_match_direct_computation() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(u)\nu = NAND(a, b)\nq = DFF(u)\ny = XOR(u, q)\n",
            "t",
        )
        .unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        assert_eq!(t.order(), topo::topo_order(&c).unwrap().as_slice());
        assert!(topo::is_topo_order(&c, t.order()));
        assert_eq!(t.len(), c.len());
        assert!(!t.is_empty());
        for (i, &id) in t.order().iter().enumerate() {
            assert_eq!(t.position(id) as usize, i);
            assert_eq!(t.positions()[id.index()] as usize, i);
        }
        let direct: Vec<_> = c.observe_points().collect();
        assert_eq!(t.observe_points(), direct.as_slice());
    }

    #[test]
    fn cyclic_circuit_is_rejected() {
        // a = NOT(b); b = NOT(a) with no flip-flop in between.
        let src = "INPUT(x)\nOUTPUT(a)\na = NOT(b)\nb = NOT(a)\n";
        let c = parse_bench(src, "cyc");
        // The parser itself may reject the cycle; if it builds, the
        // artifacts must reject it.
        if let Ok(c) = c {
            assert!(matches!(
                TopoArtifacts::compute(&c),
                Err(NetlistError::CombinationalCycle { .. })
            ));
        }
    }

    #[test]
    fn empty_circuit_artifacts() {
        let c = crate::builder::CircuitBuilder::new("empty")
            .finish()
            .unwrap();
        let t = TopoArtifacts::compute(&c).unwrap();
        assert!(t.is_empty());
        assert!(t.observe_points().is_empty());
    }
}
