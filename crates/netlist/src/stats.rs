//! Structural statistics of a circuit (used by reports and by the
//! synthetic-benchmark generator to verify profile matching).

use std::collections::BTreeMap;
use std::fmt;

use crate::circuit::Circuit;
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::topo;

/// A structural summary of a [`Circuit`].
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of flip-flops.
    pub dffs: usize,
    /// Number of logic gates.
    pub gates: usize,
    /// Combinational depth (max logic level).
    pub depth: usize,
    /// Gate count per kind.
    pub by_kind: BTreeMap<GateKind, usize>,
    /// Mean fanout over nodes that drive at least one pin.
    pub avg_fanout: f64,
    /// Largest fanout of any node.
    pub max_fanout: usize,
    /// Number of fanout stems (nodes with fanout >= 2) — the potential
    /// reconvergence sources that the paper's polarity tracking targets.
    pub fanout_stems: usize,
}

impl CircuitStats {
    /// Computes statistics for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if depth cannot be
    /// computed because the combinational graph is cyclic.
    pub fn compute(circuit: &Circuit) -> Result<Self, NetlistError> {
        let mut by_kind: BTreeMap<GateKind, usize> = BTreeMap::new();
        let mut fanout_total = 0usize;
        let mut fanout_nodes = 0usize;
        let mut max_fanout = 0usize;
        let mut fanout_stems = 0usize;
        for (_, node) in circuit.iter() {
            *by_kind.entry(node.kind()).or_insert(0) += 1;
            let fo = node.fanout().len();
            if fo > 0 {
                fanout_total += fo;
                fanout_nodes += 1;
            }
            max_fanout = max_fanout.max(fo);
            if fo >= 2 {
                fanout_stems += 1;
            }
        }
        Ok(CircuitStats {
            name: circuit.name().to_owned(),
            inputs: circuit.num_inputs(),
            outputs: circuit.num_outputs(),
            dffs: circuit.num_dffs(),
            gates: circuit.num_gates(),
            depth: topo::depth(circuit)?,
            by_kind,
            avg_fanout: if fanout_nodes == 0 {
                0.0
            } else {
                fanout_total as f64 / fanout_nodes as f64
            },
            max_fanout,
            fanout_stems,
        })
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} PI, {} PO, {} DFF, {} gates, depth {}",
            self.name, self.inputs, self.outputs, self.dffs, self.gates, self.depth
        )?;
        write!(
            f,
            "  fanout avg {:.2} max {} stems {}",
            self.avg_fanout, self.max_fanout, self.fanout_stems
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    #[test]
    fn stats_of_small_circuit() {
        let mut b = CircuitBuilder::new("stat");
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate("g", GateKind::And, &[a, x]);
        let h = b.gate("h", GateKind::Or, &[g, a]);
        let q = b.dff("q", h);
        let z = b.gate("z", GateKind::Not, &[q]);
        b.mark_output(z);
        let c = b.finish().unwrap();
        let s = CircuitStats::compute(&c).unwrap();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.gates, 3);
        assert_eq!(s.depth, 2); // a -> g -> h
        assert_eq!(s.by_kind[&GateKind::And], 1);
        assert_eq!(s.by_kind[&GateKind::Input], 2);
        // a drives g and h: the only stem.
        assert_eq!(s.fanout_stems, 1);
        assert_eq!(s.max_fanout, 2);
        let text = s.to_string();
        assert!(text.contains("2 PI"));
        assert!(text.contains("depth 2"));
    }

    #[test]
    fn stats_of_empty_circuit() {
        let c = CircuitBuilder::new("e").finish().unwrap();
        let s = CircuitStats::compute(&c).unwrap();
        assert_eq!(s.gates, 0);
        assert_eq!(s.avg_fanout, 0.0);
    }
}
