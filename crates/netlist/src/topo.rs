//! Topological ordering and levelization of the combinational graph.
//!
//! The *combinational graph* is the circuit graph with flip-flops cut
//! open: a [`GateKind::Dff`](crate::GateKind::Dff) node acts as a source
//! (its Q output) and the edge from its D driver into the flip-flop is a
//! sink edge that imposes no ordering constraint. Step 2 of the paper's
//! algorithm ("Ordering: levelize signals … using the topological sorting
//! algorithm") runs on this graph.

use crate::circuit::{Circuit, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;

/// Returns `true` if the edge `driver -> sink` constrains combinational
/// evaluation order (i.e. `sink` is not a flip-flop).
#[inline]
fn is_comb_edge(circuit: &Circuit, sink: NodeId) -> bool {
    circuit.node(sink).kind() != GateKind::Dff
}

/// Computes a topological order of **all** nodes over combinational
/// edges using Kahn's algorithm. Sources (inputs, flip-flops, constants)
/// come first in arena order; ties are broken by ascending id, making the
/// order deterministic.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if a cycle exists that is
/// not broken by a flip-flop.
pub fn topo_order(circuit: &Circuit) -> Result<Vec<NodeId>, NetlistError> {
    let n = circuit.len();
    let mut indegree = vec![0usize; n];
    for (id, node) in circuit.iter() {
        if node.kind() == GateKind::Dff {
            continue; // Q does not combinationally depend on D.
        }
        indegree[id.index()] = node.fanin().len();
    }
    // A simple FIFO over ids; initialized in arena order for determinism.
    let mut queue: std::collections::VecDeque<NodeId> = circuit
        .node_ids()
        .filter(|id| indegree[id.index()] == 0)
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(id) = queue.pop_front() {
        order.push(id);
        for &succ in circuit.node(id).fanout() {
            if !is_comb_edge(circuit, succ) {
                continue;
            }
            let d = &mut indegree[succ.index()];
            *d -= 1;
            if *d == 0 {
                queue.push_back(succ);
            }
        }
    }
    if order.len() != n {
        let witness = circuit
            .node_ids()
            .find(|id| indegree[id.index()] > 0)
            .expect("cycle implies a node with positive indegree");
        return Err(NetlistError::CombinationalCycle {
            witness: circuit.node(witness).name().to_owned(),
        });
    }
    Ok(order)
}

/// Logic levels of every node: sources are level 0, every gate is
/// `1 + max(level of fanins)` over combinational edges.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] like [`topo_order`].
pub fn levelize(circuit: &Circuit) -> Result<Vec<usize>, NetlistError> {
    let order = topo_order(circuit)?;
    let mut level = vec![0usize; circuit.len()];
    for id in order {
        let node = circuit.node(id);
        if node.kind() == GateKind::Dff || node.fanin().is_empty() {
            level[id.index()] = 0;
            continue;
        }
        level[id.index()] = 1 + node
            .fanin()
            .iter()
            .map(|f| level[f.index()])
            .max()
            .expect("non-empty fanin");
    }
    Ok(level)
}

/// The maximum logic level (combinational depth) of the circuit.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] like [`topo_order`].
pub fn depth(circuit: &Circuit) -> Result<usize, NetlistError> {
    Ok(levelize(circuit)?.into_iter().max().unwrap_or(0))
}

/// Verifies that `order` is a permutation of all nodes consistent with
/// the combinational edges. Used by tests and downstream debug checks.
#[must_use]
pub fn is_topo_order(circuit: &Circuit, order: &[NodeId]) -> bool {
    if order.len() != circuit.len() {
        return false;
    }
    let mut pos = vec![usize::MAX; circuit.len()];
    for (i, id) in order.iter().enumerate() {
        if pos[id.index()] != usize::MAX {
            return false; // duplicate
        }
        pos[id.index()] = i;
    }
    for (id, node) in circuit.iter() {
        if node.kind() == GateKind::Dff {
            continue;
        }
        for &f in node.fanin() {
            if pos[f.index()] >= pos[id.index()] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;

    fn chain(n: usize) -> Circuit {
        let mut b = CircuitBuilder::new("chain");
        let mut prev = b.input("i0");
        for k in 1..=n {
            prev = b.gate(&format!("g{k}"), GateKind::Not, &[prev]);
        }
        b.mark_output(prev);
        b.finish().unwrap()
    }

    #[test]
    fn chain_levels() {
        let c = chain(5);
        let lv = levelize(&c).unwrap();
        let order = topo_order(&c).unwrap();
        assert!(is_topo_order(&c, &order));
        assert_eq!(depth(&c).unwrap(), 5);
        // Input is level 0, last gate level 5.
        assert_eq!(lv[c.find("i0").unwrap().index()], 0);
        assert_eq!(lv[c.find("g5").unwrap().index()], 5);
    }

    #[test]
    fn diamond_levels() {
        // i -> a, b -> g (reconvergence)
        let mut b = CircuitBuilder::new("diamond");
        let i = b.input("i");
        let a = b.gate("a", GateKind::Not, &[i]);
        let bb = b.gate("b", GateKind::Buf, &[i]);
        let g = b.gate("g", GateKind::And, &[a, bb]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let lv = levelize(&c).unwrap();
        assert_eq!(lv[i.index()], 0);
        assert_eq!(lv[a.index()], 1);
        assert_eq!(lv[bb.index()], 1);
        assert_eq!(lv[g.index()], 2);
    }

    #[test]
    fn dff_is_level_zero_source() {
        // q = DFF(d); d = NOT(q): levels are q=0, d=1.
        let mut b = CircuitBuilder::new("tff");
        let q = b.gate_named("q", GateKind::Dff, &["d"]);
        let d = b.gate_named("d", GateKind::Not, &["q"]);
        b.mark_output(q);
        let c = b.finish().unwrap();
        let lv = levelize(&c).unwrap();
        assert_eq!(lv[q.index()], 0);
        assert_eq!(lv[d.index()], 1);
        let order = topo_order(&c).unwrap();
        assert!(is_topo_order(&c, &order));
    }

    #[test]
    fn empty_circuit() {
        let c = CircuitBuilder::new("empty").finish().unwrap();
        assert_eq!(topo_order(&c).unwrap(), vec![]);
        assert_eq!(depth(&c).unwrap(), 0);
    }

    #[test]
    fn is_topo_order_rejects_bad_orders() {
        let c = chain(2);
        let i0 = c.find("i0").unwrap();
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        assert!(is_topo_order(&c, &[i0, g1, g2]));
        assert!(!is_topo_order(&c, &[g1, i0, g2])); // g1 before its driver
        assert!(!is_topo_order(&c, &[i0, g1])); // wrong length
        assert!(!is_topo_order(&c, &[i0, i0, g2])); // duplicate
    }
}
