//! Gate-level netlist IR and structural algorithms.
//!
//! This crate is the substrate every other crate in the suite builds on:
//! a compact arena-based circuit representation
//! ([`Circuit`]/[`Node`]/[`NodeId`]), an ISCAS `.bench` parser and
//! writer, and the structural algorithms the paper's EPP computation
//! needs — topological ordering, levelization and fanout-cone
//! extraction.
//!
//! # Examples
//!
//! Parse a netlist, inspect it, extract the fanout cone of a node:
//!
//! ```
//! use ser_netlist::{parse_bench, FanoutCone};
//!
//! let src = "
//! INPUT(a)
//! INPUT(b)
//! OUTPUT(y)
//! u = NAND(a, b)
//! v = NAND(a, u)
//! w = NAND(b, u)
//! y = NAND(v, w)
//! ";
//! let c = parse_bench(src, "half-xor")?;
//! assert_eq!(c.num_gates(), 4);
//!
//! // The cone of `u` reaches the single output through v and w.
//! let u = c.find("u").unwrap();
//! let cone = FanoutCone::extract(&c, u);
//! assert_eq!(cone.on_path().len(), 4); // u, v, w, y
//! assert_eq!(cone.observe_points().len(), 1);
//! # Ok::<(), ser_netlist::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod artifacts;
mod builder;
mod cancel;
mod circuit;
mod cone;
mod error;
mod gate;
mod parse;
mod plan;
mod plan_cache;
mod scoap;
mod stats;
mod topo;
mod transform;
mod verilog;
mod write;

pub use artifacts::TopoArtifacts;
pub use builder::CircuitBuilder;
pub use cancel::{CancelCause, CancelToken};
pub use circuit::{Circuit, Node, NodeId, ObservePoint};
pub use cone::{fanin_mask, support, FanoutCone};
pub use error::{NetlistError, ParseError};
pub use gate::{GateKind, ParseGateKindError};
pub use parse::parse_bench;
pub use plan::{
    ConePlan, ConePlans, FaninRef, FlatConePlan, FlatConePlans, PlanMembers, SitePlan, TailView,
};
pub use plan_cache::{
    FaultPlan, PlanCache, PlanCacheStats, PlanStoreOutcome, StoreFault, PLAN_CACHE_EXT,
};
pub use scoap::{Scoap, SCOAP_INFINITY};
pub use stats::CircuitStats;
pub use topo::{depth, is_topo_order, levelize, topo_order};
pub use transform::{harden_tmr, swap_kind};
pub use verilog::{parse_verilog, write_verilog};
pub use write::write_bench;
