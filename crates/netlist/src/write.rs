//! Writer emitting the ISCAS `.bench` format (round-trips with
//! [`parse_bench`](crate::parse_bench)).

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::GateKind;

/// Renders `circuit` as `.bench` text.
///
/// Inputs are listed first, then outputs, then flip-flops, then gates in
/// arena order. Constants are written as `name = CONST0()` /
/// `name = CONST1()` — an extension this crate's parser understands.
///
/// # Examples
///
/// ```
/// use ser_netlist::{parse_bench, write_bench};
///
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = parse_bench(src, "t")?;
/// let text = write_bench(&c);
/// let back = parse_bench(&text, "t")?;
/// assert_eq!(c, back);
/// # Ok::<(), ser_netlist::ParseError>(())
/// ```
#[must_use]
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", circuit.name());
    let _ = writeln!(
        out,
        "# {} inputs  {} outputs  {} flip-flops  {} gates",
        circuit.num_inputs(),
        circuit.num_outputs(),
        circuit.num_dffs(),
        circuit.num_gates()
    );
    out.push('\n');
    for &id in circuit.inputs() {
        let _ = writeln!(out, "INPUT({})", circuit.node(id).name());
    }
    out.push('\n');
    for &id in circuit.outputs() {
        let _ = writeln!(out, "OUTPUT({})", circuit.node(id).name());
    }
    out.push('\n');
    for (_, node) in circuit.iter() {
        match node.kind() {
            GateKind::Input => {}
            kind => {
                let operands: Vec<&str> = node
                    .fanin()
                    .iter()
                    .map(|&f| circuit.node(f).name())
                    .collect();
                let _ = writeln!(
                    out,
                    "{} = {}({})",
                    node.name(),
                    kind.bench_keyword(),
                    operands.join(", ")
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CircuitBuilder;
    use crate::parse::parse_bench;

    #[test]
    fn round_trip_sequential() {
        let mut b = CircuitBuilder::new("rt");
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate("g", GateKind::Nand, &[a, x]);
        let q = b.dff("q", g);
        let z = b.gate("z", GateKind::Xor, &[q, a]);
        b.mark_output(z);
        b.mark_output(g);
        let c = b.finish().unwrap();

        let text = write_bench(&c);
        let back = parse_bench(&text, "rt").unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn round_trip_constants() {
        let mut b = CircuitBuilder::new("k");
        let one = b.constant("one", true);
        let zero = b.constant("zero", false);
        let g = b.gate("g", GateKind::Or, &[one, zero]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let back = parse_bench(&write_bench(&c), "k").unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn header_contains_counts() {
        let mut b = CircuitBuilder::new("hdr");
        let a = b.input("a");
        b.mark_output(a);
        let c = b.finish().unwrap();
        let text = write_bench(&c);
        assert!(text.contains("# hdr"));
        assert!(text.contains("1 inputs"));
    }
}
