//! Incremental construction of [`Circuit`]s.

use std::collections::HashMap;

use crate::circuit::{Circuit, Node, NodeId};
use crate::error::NetlistError;
use crate::gate::GateKind;
use crate::topo;

/// Builds a [`Circuit`] node by node, deferring validation to
/// [`finish`](CircuitBuilder::finish).
///
/// Nodes may be created in any order; forward references are expressed by
/// creating the driven gate after its drivers (ids are handed out on
/// creation). The `.bench` parser, which must tolerate uses before
/// definitions, goes through [`gate_named`](CircuitBuilder::gate_named)
/// with string operands instead.
///
/// # Examples
///
/// ```
/// use ser_netlist::{CircuitBuilder, GateKind};
///
/// let mut b = CircuitBuilder::new("half-adder");
/// let a = b.input("a");
/// let c = b.input("b");
/// let sum = b.gate("sum", GateKind::Xor, &[a, c]);
/// let carry = b.gate("carry", GateKind::And, &[a, c]);
/// b.mark_output(sum);
/// b.mark_output(carry);
/// let circuit = b.finish().unwrap();
/// assert_eq!(circuit.num_gates(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<NodeId>,
    dffs: Vec<NodeId>,
    names: HashMap<String, NodeId>,
    /// Gates declared with string operands not yet resolved:
    /// (gate id, operand names).
    pending: Vec<(NodeId, Vec<String>)>,
    /// Output declarations by name (resolved in `finish`).
    pending_outputs: Vec<String>,
    duplicate: Option<String>,
}

impl CircuitBuilder {
    /// Creates an empty builder for a circuit called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
            names: HashMap::new(),
            pending: Vec::new(),
            pending_outputs: Vec::new(),
            duplicate: None,
        }
    }

    fn add_node(&mut self, name: &str, kind: GateKind, fanin: Vec<NodeId>) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        if self.names.insert(name.to_owned(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.to_owned());
        }
        self.nodes.push(Node {
            name: name.to_owned(),
            kind,
            fanin,
            fanout: Vec::new(),
        });
        id
    }

    /// Adds a primary input and returns its id.
    pub fn input(&mut self, name: &str) -> NodeId {
        let id = self.add_node(name, GateKind::Input, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a constant-0 or constant-1 node.
    pub fn constant(&mut self, name: &str, value: bool) -> NodeId {
        let kind = if value {
            GateKind::Const1
        } else {
            GateKind::Const0
        };
        self.add_node(name, kind, Vec::new())
    }

    /// Adds a D flip-flop driven by `data` and returns the Q-output id.
    pub fn dff(&mut self, name: &str, data: NodeId) -> NodeId {
        let id = self.add_node(name, GateKind::Dff, vec![data]);
        self.dffs.push(id);
        id
    }

    /// Adds a logic gate with already-resolved fanin ids.
    pub fn gate(&mut self, name: &str, kind: GateKind, fanin: &[NodeId]) -> NodeId {
        self.add_node(name, kind, fanin.to_vec())
    }

    /// Adds a gate (or flip-flop) whose fanins are *signal names*, which
    /// may not exist yet. Resolution happens in [`finish`](Self::finish);
    /// this is the entry point used by the `.bench` parser.
    pub fn gate_named<S: AsRef<str>>(&mut self, name: &str, kind: GateKind, fanin: &[S]) -> NodeId {
        let id = self.add_node(name, kind, Vec::new());
        if kind == GateKind::Dff {
            self.dffs.push(id);
        }
        let operands = fanin.iter().map(|s| s.as_ref().to_owned()).collect();
        self.pending.push((id, operands));
        id
    }

    /// Marks an existing node as a primary output. A node may be marked
    /// more than once; duplicates are kept (mirroring repeated `OUTPUT`
    /// lines) only the first time.
    pub fn mark_output(&mut self, id: NodeId) {
        if !self.outputs.contains(&id) {
            self.outputs.push(id);
        }
    }

    /// Marks a signal as a primary output by name; the signal may be
    /// declared later. Resolution happens in [`finish`](Self::finish).
    pub fn mark_output_named(&mut self, name: &str) {
        self.pending_outputs.push(name.to_owned());
    }

    /// Number of nodes added so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Resolves pending names, computes fanout lists, validates arities
    /// and acyclicity, and produces the final [`Circuit`].
    ///
    /// # Errors
    ///
    /// - [`NetlistError::DuplicateSignal`] if a name was defined twice.
    /// - [`NetlistError::UndefinedSignal`] if a named operand was never
    ///   defined.
    /// - [`NetlistError::UndrivenOutput`] if an output name was never
    ///   defined.
    /// - [`NetlistError::BadArity`] if a gate has an illegal fanin count.
    /// - [`NetlistError::CombinationalCycle`] if the combinational part
    ///   of the circuit is cyclic.
    pub fn finish(mut self) -> Result<Circuit, NetlistError> {
        if let Some(name) = self.duplicate.take() {
            return Err(NetlistError::DuplicateSignal { name });
        }
        // Resolve pending gate operands.
        for (id, operands) in std::mem::take(&mut self.pending) {
            let mut fanin = Vec::with_capacity(operands.len());
            for op in operands {
                let Some(&src) = self.names.get(&op) else {
                    return Err(NetlistError::UndefinedSignal { name: op });
                };
                fanin.push(src);
            }
            self.nodes[id.index()].fanin = fanin;
        }
        // Resolve pending outputs.
        for name in std::mem::take(&mut self.pending_outputs) {
            let Some(&id) = self.names.get(&name) else {
                return Err(NetlistError::UndrivenOutput { name });
            };
            if !self.outputs.contains(&id) {
                self.outputs.push(id);
            }
        }
        // Fanout lists.
        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &src in &node.fanin {
                fanouts[src.index()].push(NodeId::from_index(i));
            }
        }
        for (node, fo) in self.nodes.iter_mut().zip(fanouts) {
            node.fanout = fo;
        }
        let circuit = Circuit {
            name: self.name,
            nodes: self.nodes,
            inputs: self.inputs,
            outputs: self.outputs,
            dffs: self.dffs,
            names: self.names,
        };
        circuit.validate()?;
        // Acyclicity of the combinational graph.
        topo::topo_order(&circuit)?;
        Ok(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_reference_by_name() {
        let mut b = CircuitBuilder::new("fw");
        // Gate uses "a" before it is declared.
        let g = b.gate_named("g", GateKind::Not, &["a"]);
        let a = b.input("a");
        b.mark_output(g);
        let c = b.finish().unwrap();
        assert_eq!(c.node(g).fanin(), &[a]);
    }

    #[test]
    fn undefined_operand_is_an_error() {
        let mut b = CircuitBuilder::new("bad");
        b.gate_named("g", GateKind::Not, &["ghost"]);
        assert_eq!(
            b.finish().unwrap_err(),
            NetlistError::UndefinedSignal {
                name: "ghost".into()
            }
        );
    }

    #[test]
    fn duplicate_name_is_an_error() {
        let mut b = CircuitBuilder::new("dup");
        b.input("x");
        b.input("x");
        assert_eq!(
            b.finish().unwrap_err(),
            NetlistError::DuplicateSignal { name: "x".into() }
        );
    }

    #[test]
    fn undriven_output_is_an_error() {
        let mut b = CircuitBuilder::new("o");
        b.input("x");
        b.mark_output_named("y");
        assert_eq!(
            b.finish().unwrap_err(),
            NetlistError::UndrivenOutput { name: "y".into() }
        );
    }

    #[test]
    fn bad_arity_is_an_error() {
        let mut b = CircuitBuilder::new("arity");
        let x = b.input("x");
        let y = b.input("y");
        b.gate("g", GateKind::Not, &[x, y]);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetlistError::BadArity { got: 2, .. }
        ));
    }

    #[test]
    fn combinational_cycle_is_an_error() {
        let mut b = CircuitBuilder::new("cyc");
        // g = NOT(h), h = NOT(g) — a combinational loop.
        let g = b.gate_named("g", GateKind::Not, &["h"]);
        b.gate_named("h", GateKind::Not, &["g"]);
        b.mark_output(g);
        assert!(matches!(
            b.finish().unwrap_err(),
            NetlistError::CombinationalCycle { .. }
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        // q = DFF(d); d = NOT(q) — legal: the loop crosses a flip-flop.
        let mut b = CircuitBuilder::new("tff");
        let q = b.gate_named("q", GateKind::Dff, &["d"]);
        b.gate_named("d", GateKind::Not, &["q"]);
        b.mark_output(q);
        let c = b.finish().unwrap();
        assert_eq!(c.num_dffs(), 1);
    }

    #[test]
    fn duplicate_output_marks_collapse() {
        let mut b = CircuitBuilder::new("oo");
        let x = b.input("x");
        b.mark_output(x);
        b.mark_output(x);
        b.mark_output_named("x");
        let c = b.finish().unwrap();
        assert_eq!(c.outputs(), &[x]);
    }

    #[test]
    fn constants() {
        let mut b = CircuitBuilder::new("k");
        let zero = b.constant("zero", false);
        let one = b.constant("one", true);
        let g = b.gate("g", GateKind::And, &[zero, one]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        assert_eq!(c.node(zero).kind(), GateKind::Const0);
        assert_eq!(c.node(one).kind(), GateKind::Const1);
        assert_eq!(c.num_gates(), 1);
    }

    #[test]
    fn builder_len() {
        let mut b = CircuitBuilder::new("n");
        assert!(b.is_empty());
        b.input("x");
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn fanout_multiplicity_for_repeated_pin() {
        // g = AND(x, x): x should appear twice in g's fanin and g twice
        // in x's fanout (edge multiplicity preserved).
        let mut b = CircuitBuilder::new("multi");
        let x = b.input("x");
        let g = b.gate("g", GateKind::And, &[x, x]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        assert_eq!(c.node(g).fanin(), &[x, x]);
        assert_eq!(c.node(x).fanout(), &[g, g]);
    }
}
