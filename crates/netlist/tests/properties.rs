//! Property-based tests for the netlist substrate: random circuits
//! built through the public builder must satisfy the structural
//! invariants every downstream analysis relies on.

use proptest::prelude::*;
use ser_netlist::{
    is_topo_order, levelize, parse_bench, topo_order, write_bench, CircuitBuilder, FanoutCone,
    GateKind, NodeId,
};

/// A recipe for one random DAG: per-gate (kind index, fanin picks).
#[derive(Debug, Clone)]
struct Recipe {
    inputs: usize,
    gates: Vec<(usize, Vec<usize>)>,
}

fn recipe() -> impl Strategy<Value = Recipe> {
    (1usize..6).prop_flat_map(|inputs| {
        proptest::collection::vec(
            (0usize..6, proptest::collection::vec(0usize..1000, 1..4)),
            1..30,
        )
        .prop_map(move |gates| Recipe { inputs, gates })
    })
}

const KINDS: [GateKind; 6] = [
    GateKind::And,
    GateKind::Or,
    GateKind::Nand,
    GateKind::Nor,
    GateKind::Xor,
    GateKind::Not,
];

fn build(recipe: &Recipe) -> ser_netlist::Circuit {
    let mut b = CircuitBuilder::new("prop");
    let mut nodes: Vec<NodeId> = (0..recipe.inputs)
        .map(|i| b.input(&format!("i{i}")))
        .collect();
    for (gi, (kind_idx, picks)) in recipe.gates.iter().enumerate() {
        let kind = KINDS[kind_idx % KINDS.len()];
        let fanin: Vec<NodeId> = if kind == GateKind::Not {
            vec![nodes[picks[0] % nodes.len()]]
        } else {
            picks.iter().map(|&p| nodes[p % nodes.len()]).collect()
        };
        nodes.push(b.gate(&format!("g{gi}"), kind, &fanin));
    }
    // Mark the last node and any sinks as outputs.
    let last = *nodes.last().unwrap();
    b.mark_output(last);
    b.finish().expect("recipe builds a DAG by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// topo_order returns a valid topological permutation, and
    /// levelize is consistent with it.
    #[test]
    fn topo_and_levels_consistent(r in recipe()) {
        let c = build(&r);
        let order = topo_order(&c).unwrap();
        prop_assert!(is_topo_order(&c, &order));
        let lv = levelize(&c).unwrap();
        for (id, node) in c.iter() {
            for &f in node.fanin() {
                prop_assert!(lv[f.index()] < lv[id.index()],
                    "level({f}) = {} !< level({id}) = {}", lv[f.index()], lv[id.index()]);
            }
        }
    }

    /// The `.bench` writer/parser round-trips every buildable circuit.
    #[test]
    fn bench_round_trip(r in recipe()) {
        let c = build(&r);
        let text = write_bench(&c);
        let back = parse_bench(&text, "prop").unwrap();
        prop_assert_eq!(c, back);
    }

    /// The Verilog writer/parser round-trips structure and kinds.
    #[test]
    fn verilog_round_trip(r in recipe()) {
        let c = build(&r);
        let text = ser_netlist::write_verilog(&c);
        let back = ser_netlist::parse_verilog(&text).unwrap();
        prop_assert_eq!(back.num_inputs(), c.num_inputs());
        prop_assert_eq!(back.num_outputs(), c.num_outputs());
        prop_assert_eq!(back.num_gates(), c.num_gates());
        for (_, node) in c.iter() {
            let bid = back.find(node.name()).expect("name preserved");
            prop_assert_eq!(back.node(bid).kind(), node.kind());
            let fanins: Vec<&str> =
                node.fanin().iter().map(|&f| c.node(f).name()).collect();
            let back_fanins: Vec<&str> =
                back.node(bid).fanin().iter().map(|&f| back.node(f).name()).collect();
            prop_assert_eq!(fanins, back_fanins);
        }
    }

    /// Fanout cones: every on-path node is reachable (has the site in
    /// its transitive fanin), off-path signals feed on-path gates but
    /// are not themselves on-path.
    #[test]
    fn cone_membership_sound(r in recipe()) {
        let c = build(&r);
        for site in c.node_ids().step_by(3) {
            let cone = FanoutCone::extract(&c, site);
            prop_assert!(cone.contains(site));
            for &id in cone.on_path() {
                let back = ser_netlist::fanin_mask(&c, &[id]);
                prop_assert!(back[site.index()],
                    "{id} is on-path but its fanin misses the site {site}");
            }
            for &off in cone.off_path() {
                prop_assert!(!cone.contains(off));
                let feeds_on_path = c.node(off).fanout().iter().any(|&s| cone.contains(s));
                prop_assert!(feeds_on_path, "{off} is off-path but feeds no on-path gate");
            }
        }
    }

    /// Structural counters agree with direct recomputation.
    #[test]
    fn fanin_fanout_are_duals(r in recipe()) {
        let c = build(&r);
        let mut fanout_edges = 0usize;
        let mut fanin_edges = 0usize;
        for (id, node) in c.iter() {
            fanin_edges += node.fanin().len();
            fanout_edges += node.fanout().len();
            for &f in node.fanin() {
                let multiplicity_in =
                    node.fanin().iter().filter(|&&x| x == f).count();
                let multiplicity_out =
                    c.node(f).fanout().iter().filter(|&&x| x == id).count();
                prop_assert_eq!(multiplicity_in, multiplicity_out);
            }
        }
        prop_assert_eq!(fanin_edges, fanout_edges);
    }
}
