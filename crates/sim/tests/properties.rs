//! Property-based tests for the simulation substrate.

use proptest::prelude::*;
use ser_netlist::{CircuitBuilder, GateKind, NodeId};
use ser_sim::{BitSim, ExhaustivePatterns, MonteCarlo, PatternSource, SiteFaultSim};

/// Builds a small random combinational circuit from index picks.
fn build(inputs: usize, gates: &[(usize, Vec<usize>)]) -> ser_netlist::Circuit {
    const KINDS: [GateKind; 6] = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ];
    let mut b = CircuitBuilder::new("prop");
    let mut nodes: Vec<NodeId> = (0..inputs).map(|i| b.input(&format!("i{i}"))).collect();
    for (gi, (kind_idx, picks)) in gates.iter().enumerate() {
        let kind = KINDS[kind_idx % KINDS.len()];
        let fanin: Vec<NodeId> = if kind == GateKind::Not {
            vec![nodes[picks[0] % nodes.len()]]
        } else {
            picks.iter().map(|&p| nodes[p % nodes.len()]).collect()
        };
        nodes.push(b.gate(&format!("g{gi}"), kind, &fanin));
    }
    b.mark_output(*nodes.last().unwrap());
    b.finish().unwrap()
}

fn circuit_strategy() -> impl Strategy<Value = ser_netlist::Circuit> {
    (
        1usize..5,
        proptest::collection::vec(
            (0usize..6, proptest::collection::vec(0usize..100, 1..4)),
            1..20,
        ),
    )
        .prop_map(|(inputs, gates)| build(inputs, &gates))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exhaustive enumeration yields each assignment exactly once.
    #[test]
    fn exhaustive_is_a_bijection(n in 1usize..10) {
        let mut src = ExhaustivePatterns::new(n);
        let mut seen = vec![false; 1 << n];
        while let Some(block) = src.next_block() {
            for p in 0..block.count() {
                let mut idx = 0usize;
                for s in 0..n {
                    if block.bit(s, p) {
                        idx |= 1 << s;
                    }
                }
                prop_assert!(!seen[idx], "assignment {idx} repeated");
                seen[idx] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "some assignment missing");
    }

    /// Fault injection leaves the scratch buffer equal to the good
    /// values (the restoration invariant the MC loop depends on), and
    /// the diff masks are consistent: even|odd == diff, even&odd == 0.
    #[test]
    fn fault_injection_invariants(c in circuit_strategy(), raw_site in 0usize..200) {
        let sim = BitSim::new(&c).unwrap();
        let site = NodeId::from_index(raw_site % c.len());
        let fault = SiteFaultSim::new(&sim, site);
        let words: Vec<u64> = (0..sim.sources().len() as u64)
            .map(|i| 0x5DEECE66Du64.wrapping_mul(i + 7).rotate_left(i as u32))
            .collect();
        let good = sim.run(&words);
        let mut scratch = good.clone();
        let outcome = fault.inject(&sim, &good, &mut scratch);
        prop_assert_eq!(&scratch, &good, "scratch not restored");
        let mut any = 0u64;
        for m in &outcome.per_point {
            prop_assert_eq!(m.even | m.odd, m.diff);
            prop_assert_eq!(m.even & m.odd, 0);
            any |= m.diff;
        }
        prop_assert_eq!(any, outcome.any_diff);
    }

    /// P_sensitized of the output node itself is always 1; estimates
    /// are probabilities; doubling vectors keeps the estimate within
    /// binomial noise.
    #[test]
    fn monte_carlo_sane(c in circuit_strategy(), seed in 0u64..50) {
        let sim = BitSim::new(&c).unwrap();
        let po = c.outputs()[0];
        let mc = MonteCarlo::new(512).with_seed(seed);
        let est = mc.estimate_site(&sim, po);
        prop_assert_eq!(est.p_sensitized, 1.0);
        for id in c.node_ids() {
            let e = mc.estimate_site(&sim, id);
            prop_assert!((0.0..=1.0).contains(&e.p_sensitized));
            // per-point arrivals never exceed the any-point union... per
            // point they are individually <= 1 and sum of even+odd <= 1.
            for p in &e.per_point {
                prop_assert!(p.p_arrival() <= 1.0 + 1e-12);
                prop_assert!(p.p_arrival() >= e.p_sensitized - 1.0);
            }
        }
    }
}
