//! Bit-parallel logic simulation, SEU fault injection and the
//! Monte-Carlo `P_sensitized` baseline.
//!
//! This crate is the *random simulation method* the paper compares
//! against, built as a first-class substrate: a 64-way bit-parallel
//! combinational engine ([`BitSim`]), a sequential stepper ([`SeqSim`]),
//! cone-restricted SEU injection ([`SiteFaultSim`]) and the Monte-Carlo
//! estimator ([`MonteCarlo`]).
//!
//! # Examples
//!
//! Estimate how often an SEU at a gate reaches an output:
//!
//! ```
//! use ser_netlist::parse_bench;
//! use ser_sim::{BitSim, MonteCarlo};
//!
//! let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
//! let sim = BitSim::new(&c)?;
//! let a = c.find("a").unwrap();
//! let est = MonteCarlo::new(10_000).with_seed(1).estimate_site(&sim, a);
//! // The AND's side input blocks the error half the time.
//! assert!((est.p_sensitized - 0.5).abs() < 0.05);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod fault;
mod monte_carlo;
mod naive;
mod pattern;
mod sequential;

pub use engine::BitSim;
pub use fault::{FaultOutcome, ObserveMasks, SiteFaultSim};
pub use monte_carlo::{
    estimate_all_nodes, MonteCarlo, PointEstimate, SequentialMonteCarlo, SiteEstimate,
};
pub use naive::NaiveMonteCarlo;
pub use pattern::{
    ExhaustivePatterns, PatternBlock, PatternSource, RandomPatterns, WeightedPatterns,
};
pub use sequential::SeqSim;
