//! SEU fault injection on top of the bit-parallel engine.
//!
//! An SEU is modelled exactly as the paper does: the struck node's
//! output takes the *erroneous value* `a` — the complement of its
//! fault-free value — and the faulty circuit is re-evaluated. Only the
//! struck node's fanout cone can change, so the faulty sweep is
//! restricted to the cone (this is what makes the Monte-Carlo baseline
//! usable on the larger circuits at all).

use ser_netlist::{FanoutCone, GateKind, NodeId, ObservePoint};

use crate::engine::BitSim;

/// Per-observe-point outcome masks of one 64-pattern fault-injection
/// sweep. Bit `i` describes pattern `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveMasks {
    /// The observe point.
    pub point: ObservePoint,
    /// Patterns where the point's signal differs from the fault-free run.
    pub diff: u64,
    /// Patterns where the erroneous value arrived with *even* inversion
    /// parity (the observed faulty value equals the injected `a`).
    pub even: u64,
    /// Patterns where it arrived with *odd* parity (observed value `ā`).
    pub odd: u64,
}

/// Outcome of injecting an SEU at one site over one 64-pattern block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultOutcome {
    /// Per reachable observe point, the difference/polarity masks.
    pub per_point: Vec<ObserveMasks>,
    /// Patterns where at least one observe point differs — the
    /// numerator of `P_sensitized`.
    pub any_diff: u64,
}

/// A fault simulator specialized to one error site.
///
/// Pre-computes the site's fanout cone and a topological re-evaluation
/// schedule; [`inject`](SiteFaultSim::inject) then costs
/// `O(|cone|)` per 64-pattern block.
#[derive(Debug, Clone)]
pub struct SiteFaultSim {
    site: NodeId,
    /// On-path nodes except the site, in evaluation order.
    schedule: Vec<NodeId>,
    /// Observe points reachable from the site.
    observe: Vec<ObservePoint>,
}

impl SiteFaultSim {
    /// Builds the per-site schedule from a compiled simulator.
    #[must_use]
    pub fn new(sim: &BitSim, site: NodeId) -> Self {
        let cone = FanoutCone::extract(sim.circuit(), site);
        let schedule = sim
            .schedule()
            .iter()
            .copied()
            .filter(|&id| id != site && cone.contains(id))
            .collect();
        SiteFaultSim {
            site,
            schedule,
            observe: cone.observe_points().to_vec(),
        }
    }

    /// The error site.
    #[must_use]
    pub fn site(&self) -> NodeId {
        self.site
    }

    /// Observe points reachable from the site. Empty means the error can
    /// never be observed (`P_sensitized = 0`).
    #[must_use]
    pub fn observe_points(&self) -> &[ObservePoint] {
        &self.observe
    }

    /// Injects the SEU against fault-free values `good` (a full value
    /// vector from [`BitSim::run`]) and returns the outcome masks.
    ///
    /// `scratch` must be a copy of `good` on entry and is restored to one
    /// on exit (the buffer dance keeps per-site cost proportional to the
    /// cone, not the circuit).
    ///
    /// # Panics
    ///
    /// Panics (debug) if `scratch` differs from `good` outside the cone.
    #[must_use]
    pub fn inject(&self, sim: &BitSim, good: &[u64], scratch: &mut [u64]) -> FaultOutcome {
        debug_assert_eq!(good.len(), scratch.len());
        let circuit = sim.circuit();
        // The erroneous value: complement of the fault-free value.
        scratch[self.site.index()] = !good[self.site.index()];
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in &self.schedule {
            let node = circuit.node(id);
            debug_assert!(node.kind() != GateKind::Input);
            fanin_buf.clear();
            fanin_buf.extend(node.fanin().iter().map(|f| scratch[f.index()]));
            scratch[id.index()] = node.kind().eval_word(&fanin_buf);
        }
        // The injected erroneous value `a` per pattern (bit set = a is 1).
        let a_value = !good[self.site.index()];
        let mut any_diff = 0u64;
        let per_point = self
            .observe
            .iter()
            .map(|&point| {
                let sig = point.signal().index();
                let diff = good[sig] ^ scratch[sig];
                any_diff |= diff;
                // Even parity: the observed faulty value equals `a`.
                let even = diff & !(scratch[sig] ^ a_value);
                let odd = diff & (scratch[sig] ^ a_value);
                ObserveMasks {
                    point,
                    diff,
                    even,
                    odd,
                }
            })
            .collect();
        // Restore scratch to the fault-free values.
        scratch[self.site.index()] = good[self.site.index()];
        for &id in &self.schedule {
            scratch[id.index()] = good[id.index()];
        }
        FaultOutcome {
            per_point,
            any_diff,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    /// y = AND(a, b): an error on `a` propagates iff b = 1.
    #[test]
    fn and_gate_side_input_gates_propagation() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let fs = SiteFaultSim::new(&sim, a);
        assert_eq!(fs.site(), a);
        assert_eq!(fs.observe_points().len(), 1);

        // patterns: bit0 (a=0,b=0), bit1 (a=1,b=0), bit2 (a=0,b=1), bit3 (a=1,b=1)
        let good = sim.run(&[0b1010, 0b1100]);
        let mut scratch = good.clone();
        let out = fs.inject(&sim, &good, &mut scratch);
        // Propagates exactly when b=1: patterns 2 and 3.
        assert_eq!(out.any_diff & 0b1111, 0b1100);
        // Restoration happened.
        assert_eq!(scratch, good);
        // AND is non-inverting: all diffs even parity.
        let m = &out.per_point[0];
        assert_eq!(m.even & 0b1111, 0b1100);
        assert_eq!(m.odd & 0b1111, 0);
    }

    #[test]
    fn inverter_chain_flips_parity() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nu = NOT(a)\ny = NOT(u)\n", "chain").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let u = c.find("u").unwrap();
        let good = sim.run(&[0b01]);
        let mut scratch = good.clone();

        // From `a` (two inversions to y): even parity at y.
        let fs = SiteFaultSim::new(&sim, a);
        let out = fs.inject(&sim, &good, &mut scratch);
        assert_eq!(out.any_diff & 0b11, 0b11); // always propagates
        assert_eq!(out.per_point[0].even & 0b11, 0b11);
        assert_eq!(out.per_point[0].odd & 0b11, 0);

        // From `u` (one inversion to y): odd parity at y.
        let fs = SiteFaultSim::new(&sim, u);
        let out = fs.inject(&sim, &good, &mut scratch);
        assert_eq!(out.per_point[0].odd & 0b11, 0b11);
        assert_eq!(out.per_point[0].even & 0b11, 0);
    }

    #[test]
    fn unobservable_site() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "dead").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let u = c.find("u").unwrap();
        let fs = SiteFaultSim::new(&sim, u);
        assert!(fs.observe_points().is_empty());
        let good = sim.run(&[0, 0]);
        let mut scratch = good.clone();
        let out = fs.inject(&sim, &good, &mut scratch);
        assert_eq!(out.any_diff, 0);
        assert!(out.per_point.is_empty());
    }

    #[test]
    fn fault_at_output_site_always_observed() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "t").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let y = c.find("y").unwrap();
        let fs = SiteFaultSim::new(&sim, y);
        let good = sim.run(&[0b01]);
        let mut scratch = good.clone();
        let out = fs.inject(&sim, &good, &mut scratch);
        assert_eq!(out.any_diff, !0u64);
        assert_eq!(out.per_point[0].even, !0u64); // zero inversions
    }

    #[test]
    fn xor_propagates_unconditionally() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let fs = SiteFaultSim::new(&sim, a);
        let good = sim.run(&[0b1010, 0b1100]);
        let mut scratch = good.clone();
        let out = fs.inject(&sim, &good, &mut scratch);
        // XOR always propagates a single-input error.
        assert_eq!(out.any_diff & 0b1111, 0b1111);
        // Parity depends on b: b=0 -> even (y == a), b=1 -> odd.
        assert_eq!(out.per_point[0].even & 0b1111, 0b0011);
        assert_eq!(out.per_point[0].odd & 0b1111, 0b1100);
    }

    #[test]
    fn reconvergent_cancellation_is_captured() {
        // y = XOR(u, v), u = NOT(a), v = NOT(a): an error on `a` reaches y
        // on two paths with equal parity and cancels — never observed.
        let c = parse_bench(
            "INPUT(a)\nOUTPUT(y)\nu = NOT(a)\nv = NOT(a)\ny = XOR(u, v)\n",
            "recon",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let fs = SiteFaultSim::new(&sim, a);
        let good = sim.run(&[0b01]);
        let mut scratch = good.clone();
        let out = fs.inject(&sim, &good, &mut scratch);
        assert_eq!(out.any_diff, 0, "equal-parity reconvergence must cancel");
    }
}
