//! Multi-cycle sequential simulation (flip-flop state stepping).
//!
//! The paper analyzes a single clock cycle: an error latched into a
//! flip-flop counts as observed (weighted by `P_latched`). This module
//! provides the machinery to go further — following latched errors
//! across cycles — which the suite uses for the sequential-extension
//! experiments.

use std::sync::Arc;

use ser_netlist::{Circuit, NetlistError, NodeId};

use crate::engine::BitSim;

/// A sequential bit-parallel simulator: 64 independent trajectories of
/// the same circuit, stepped cycle by cycle.
///
/// Owns its circuit through the underlying [`BitSim`] — no lifetime
/// parameter; constructors accept `&Circuit` (cloned once) or an
/// `Arc<Circuit>` (shared, O(1)).
///
/// # Examples
///
/// A toggle flip-flop divides the clock by two:
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sim::SeqSim;
///
/// let c = parse_bench("OUTPUT(q)\nq = DFF(d)\nd = NOT(q)\n", "tff")?;
/// let mut sim = SeqSim::new(&c)?;
/// sim.reset(false);
/// let q = c.find("q").unwrap();
/// let v0 = sim.step(&[])[q.index()] & 1;     // q starts 0
/// let v1 = sim.step(&[])[q.index()] & 1;     // toggles to 1
/// assert_eq!((v0, v1), (0, 1));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SeqSim {
    sim: BitSim,
    /// Current Q value word per flip-flop, in `circuit.dffs()` order.
    state: Vec<u64>,
}

impl SeqSim {
    /// Compiles a sequential simulator for `circuit`, with all
    /// flip-flops initialized to 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the combinational
    /// graph is cyclic.
    pub fn new(circuit: impl Into<Arc<Circuit>>) -> Result<Self, NetlistError> {
        let sim = BitSim::new(circuit)?;
        let state = vec![0u64; sim.circuit().num_dffs()];
        Ok(SeqSim { sim, state })
    }

    /// The underlying combinational engine.
    #[must_use]
    pub fn engine(&self) -> &BitSim {
        &self.sim
    }

    /// The circuit being simulated.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        self.sim.circuit()
    }

    /// Sets every flip-flop of every trajectory to `value`.
    pub fn reset(&mut self, value: bool) {
        let word = if value { !0 } else { 0 };
        self.state.fill(word);
    }

    /// Overwrites the packed state (one word per flip-flop, in
    /// `circuit.dffs()` order).
    ///
    /// # Panics
    ///
    /// Panics if `state.len() != circuit.num_dffs()`.
    pub fn set_state(&mut self, state: &[u64]) {
        assert_eq!(state.len(), self.state.len(), "one word per flip-flop");
        self.state.copy_from_slice(state);
    }

    /// Current packed state (one word per flip-flop).
    #[must_use]
    pub fn state(&self) -> &[u64] {
        &self.state
    }

    /// Applies one clock cycle: evaluates the combinational logic under
    /// `pi_words` (one word per primary input) and the current state,
    /// then loads every flip-flop from its D driver. Returns the full
    /// value vector *before* the state update (i.e. the cycle's signal
    /// values).
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != circuit.num_inputs()`.
    pub fn step(&mut self, pi_words: &[u64]) -> Vec<u64> {
        let circuit = self.sim.circuit();
        assert_eq!(
            pi_words.len(),
            circuit.num_inputs(),
            "one word per primary input"
        );
        let mut source_words = Vec::with_capacity(pi_words.len() + self.state.len());
        source_words.extend_from_slice(pi_words);
        source_words.extend_from_slice(&self.state);
        let values = self.sim.run(&source_words);
        for (slot, &dff) in self.state.iter_mut().zip(circuit.dffs()) {
            let d = circuit.node(dff).fanin()[0];
            *slot = values[d.index()];
        }
        values
    }

    /// Like [`step`](Self::step), but XORs `flips` into the given nodes'
    /// values before the flip-flops capture and before the values are
    /// returned — the hook used to inject an SEU *during* a cycle.
    /// `flips` pairs a node with a per-pattern flip mask.
    ///
    /// Flips on nodes that feed other logic are propagated by a second
    /// restricted sweep, exactly like a hardware transient.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len() != circuit.num_inputs()`.
    pub fn step_with_seu(&mut self, pi_words: &[u64], flips: &[(NodeId, u64)]) -> Vec<u64> {
        let circuit = self.sim.circuit();
        assert_eq!(
            pi_words.len(),
            circuit.num_inputs(),
            "one word per primary input"
        );
        let mut source_words = Vec::with_capacity(pi_words.len() + self.state.len());
        source_words.extend_from_slice(pi_words);
        source_words.extend_from_slice(&self.state);
        let mut values = self.sim.run(&source_words);
        if !flips.is_empty() {
            for &(node, mask) in flips {
                values[node.index()] ^= mask;
            }
            // Re-propagate downstream of the flipped nodes. A full sweep
            // would *recompute* the flipped gates from their (unchanged)
            // fanins and erase the flip, so walk the schedule manually and
            // skip the flipped nodes.
            let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
            for &id in self.sim.schedule() {
                if flips.iter().any(|&(n, _)| n == id) {
                    continue;
                }
                let node = circuit.node(id);
                if !node.kind().is_logic() {
                    continue;
                }
                fanin_buf.clear();
                fanin_buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                values[id.index()] = node.kind().eval_word(&fanin_buf);
            }
        }
        for (slot, &dff) in self.state.iter_mut().zip(circuit.dffs()) {
            let d = circuit.node(dff).fanin()[0];
            *slot = values[d.index()];
        }
        values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    /// A 2-bit counter: q0 toggles every cycle, q1 toggles when q0 = 1.
    fn counter2() -> Circuit {
        parse_bench(
            "
OUTPUT(q0)
OUTPUT(q1)
q0 = DFF(d0)
q1 = DFF(d1)
d0 = NOT(q0)
d1 = XOR(q1, q0)
",
            "cnt2",
        )
        .unwrap()
    }

    #[test]
    fn counter_counts() {
        let c = counter2();
        let mut sim = SeqSim::new(&c).unwrap();
        sim.reset(false);
        let q0 = c.find("q0").unwrap();
        let q1 = c.find("q1").unwrap();
        let mut seen = Vec::new();
        for _ in 0..5 {
            let vals = sim.step(&[]);
            let count = (vals[q0.index()] & 1) | ((vals[q1.index()] & 1) << 1);
            seen.push(count);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn trajectories_are_independent() {
        let c = counter2();
        let mut sim = SeqSim::new(&c).unwrap();
        // Trajectory in bit 0 starts at state 0, bit 1 starts at state 3.
        sim.set_state(&[0b10, 0b10]);
        let q0 = c.find("q0").unwrap();
        let q1 = c.find("q1").unwrap();
        let vals = sim.step(&[]);
        // Bit 0: count 0; bit 1: count 3.
        assert_eq!(vals[q0.index()] & 1, 0);
        assert_eq!(vals[q1.index()] & 1, 0);
        assert_eq!(vals[q0.index()] >> 1 & 1, 1);
        assert_eq!(vals[q1.index()] >> 1 & 1, 1);
        // Next cycle: bit 0 -> 1, bit 1 -> 0 (wraps).
        let vals = sim.step(&[]);
        assert_eq!(vals[q0.index()] & 1, 1);
        assert_eq!(vals[q1.index()] & 1, 0);
        assert_eq!(vals[q0.index()] >> 1 & 1, 0);
        assert_eq!(vals[q1.index()] >> 1 & 1, 0);
    }

    #[test]
    fn seu_on_state_feeding_node_is_latched() {
        let c = counter2();
        let mut good = SeqSim::new(&c).unwrap();
        let mut faulty = SeqSim::new(&c).unwrap();
        good.reset(false);
        faulty.reset(false);
        let d0 = c.find("d0").unwrap();
        // Flip d0 in pattern 0 during the first cycle.
        let gv = good.step(&[]);
        let fv = faulty.step_with_seu(&[], &[(d0, 1)]);
        assert_eq!(gv[d0.index()] & 1, 1);
        assert_eq!(fv[d0.index()] & 1, 0);
        // The corrupted D was captured: states diverge.
        assert_ne!(good.state()[0] & 1, faulty.state()[0] & 1);
    }

    #[test]
    fn seu_propagates_downstream_within_cycle() {
        // q = DFF(d); d = NOT(x); y = NOT(d); PO y. Flipping d must also
        // change y within the same cycle.
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nq = DFF(d)\nd = NOT(x)\ny = NOT(d)\n",
            "t",
        )
        .unwrap();
        let mut sim = SeqSim::new(&c).unwrap();
        let d = c.find("d").unwrap();
        let y = c.find("y").unwrap();
        let vals = sim.step_with_seu(&[0], &[(d, 1)]);
        // x=0 -> d=1 flipped to 0 -> y = NOT(0) = 1.
        assert_eq!(vals[d.index()] & 1, 0);
        assert_eq!(vals[y.index()] & 1, 1);
        // And the flipped d was latched.
        assert_eq!(sim.state()[0] & 1, 0);
    }

    #[test]
    #[should_panic(expected = "one word per primary input")]
    fn step_checks_input_count() {
        let c = counter2();
        let mut sim = SeqSim::new(&c).unwrap();
        let _ = sim.step(&[0]);
    }
}
