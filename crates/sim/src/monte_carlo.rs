//! The random-simulation baseline the paper compares against.
//!
//! "All previous SER estimation methods use the random vector simulation
//! approach": apply random vectors, inject the SEU, and count how often
//! the erroneous value reaches an output or flip-flop. This module is
//! that method, made as fast as honestly possible (bit-parallel,
//! cone-restricted) so the Table 2 runtime comparison is fair.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ser_netlist::{CancelCause, CancelToken, Circuit, NetlistError, NodeId, ObservePoint};

use crate::engine::BitSim;
use crate::fault::SiteFaultSim;

/// Monte-Carlo estimation parameters.
///
/// # Examples
///
/// ```
/// use ser_sim::MonteCarlo;
///
/// let mc = MonteCarlo::new(10_000).with_seed(7);
/// assert_eq!(mc.vectors(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    vectors: u64,
    seed: u64,
}

impl MonteCarlo {
    /// Creates a configuration running `vectors` random vectors per site.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is 0.
    #[must_use]
    pub fn new(vectors: u64) -> Self {
        assert!(vectors > 0, "at least one vector");
        MonteCarlo {
            vectors,
            seed: 0xE5EED,
        }
    }

    /// Sets the PRNG seed (estimates are deterministic given a seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of random vectors per site.
    #[must_use]
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Estimates `P_sensitized` and per-output error-arrival
    /// probabilities for one error site.
    #[must_use]
    pub fn estimate_site(&self, sim: &BitSim, site: NodeId) -> SiteEstimate {
        let fault = SiteFaultSim::new(sim, site);
        self.run_site(sim, &fault)
    }

    /// Estimates every site in `sites`, reusing one PRNG stream; returns
    /// estimates in the same order.
    #[must_use]
    pub fn estimate_sites(&self, sim: &BitSim, sites: &[NodeId]) -> Vec<SiteEstimate> {
        sites
            .iter()
            .map(|&site| self.estimate_site(sim, site))
            .collect()
    }

    fn run_site(&self, sim: &BitSim, fault: &SiteFaultSim) -> SiteEstimate {
        let num_sources = sim.sources().len();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ fault.site().index() as u64);
        let mut source_words = vec![0u64; num_sources];
        let mut good = vec![0u64; sim.circuit().len()];
        let mut scratch = vec![0u64; sim.circuit().len()];

        let mut sensitized = 0u64;
        let mut per_point: Vec<(ObservePoint, u64, u64)> = fault
            .observe_points()
            .iter()
            .map(|&p| (p, 0u64, 0u64))
            .collect();

        let mut remaining = self.vectors;
        while remaining > 0 {
            let count = remaining.min(64) as u32;
            let valid = if count == 64 {
                !0u64
            } else {
                (1u64 << count) - 1
            };
            for w in &mut source_words {
                *w = rng.gen();
            }
            sim.run_into(&source_words, &mut good);
            scratch.copy_from_slice(&good);
            let outcome = fault.inject(sim, &good, &mut scratch);
            sensitized += u64::from((outcome.any_diff & valid).count_ones());
            for (slot, masks) in per_point.iter_mut().zip(&outcome.per_point) {
                slot.1 += u64::from((masks.even & valid).count_ones());
                slot.2 += u64::from((masks.odd & valid).count_ones());
            }
            remaining -= u64::from(count);
        }

        let v = self.vectors as f64;
        SiteEstimate {
            site: fault.site(),
            vectors: self.vectors,
            p_sensitized: sensitized as f64 / v,
            per_point: per_point
                .into_iter()
                .map(|(point, even, odd)| PointEstimate {
                    point,
                    p_even: even as f64 / v,
                    p_odd: odd as f64 / v,
                })
                .collect(),
        }
    }
}

/// Monte-Carlo with a *sequential stopping rule* targeting a normalized
/// error bound, after Mendo's guaranteed-error sequential estimation
/// (L. Mendo & J. M. Hernando, 2009): instead of a fixed trial count,
/// simulate until a target number of **successes** (vectors where the
/// error reaches an observe point) has been observed — inverse binomial
/// sampling. With `k` target successes and `N` the (random) trial count
/// at stop, the estimator `p̂ = (k − 1) / (N − 1)` has normalized
/// mean-square error bounded by roughly `1 / (k − 2)`, *independent of
/// the unknown `p`* — so one `target_error` setting buys uniform
/// relative accuracy for highly- and barely-sensitized sites alike,
/// spending vectors only where `P_sensitized` is small.
///
/// Two deviations from the idealized scheme, both documented here
/// because they matter for interpreting results:
///
/// - Trials run in bit-parallel 64-vector blocks, so the stop is
///   checked at block granularity; the estimator generalizes to
///   `(successes − 1) / (N − 1)` with whatever success count the final
///   block reached. Per-point arrival frequencies are scaled by the
///   same debiasing factor, keeping them consistent with
///   `p_sensitized`.
/// - A hard `max_vectors` cap bounds dead and near-dead sites (true
///   inverse binomial sampling never terminates at `p = 0`). When the
///   cap triggers, the plain frequency `successes / N` is reported.
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sim::{BitSim, SequentialMonteCarlo};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let sim = BitSim::new(&c)?;
/// let a = c.find("a").unwrap();
/// let mc = SequentialMonteCarlo::new(0.1).with_seed(7);
/// let est = mc.estimate_site(&sim, a);
/// // P_sensitized = 0.5; the rule stopped on its own, well under the cap.
/// assert!((est.p_sensitized - 0.5).abs() < 0.1);
/// assert!(est.vectors < mc.max_vectors());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SequentialMonteCarlo {
    target_error: f64,
    max_vectors: u64,
    seed: u64,
}

impl SequentialMonteCarlo {
    /// Default trial cap: enough for `target_error`-accurate estimates
    /// down to `P_sensitized ≈ 10^-3` at the default setting.
    pub const DEFAULT_MAX_VECTORS: u64 = 1 << 20;

    /// Creates a rule targeting normalized RMS error `target_error`
    /// (e.g. `0.1` for ~10% relative error).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < target_error < 1`.
    #[must_use]
    pub fn new(target_error: f64) -> Self {
        assert!(
            target_error.is_finite() && target_error > 0.0 && target_error < 1.0,
            "target error {target_error} outside (0,1)"
        );
        SequentialMonteCarlo {
            target_error,
            max_vectors: Self::DEFAULT_MAX_VECTORS,
            seed: 0xE5EED,
        }
    }

    /// Sets the PRNG seed (estimates are deterministic given a seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hard trial cap that bounds dead-site runs.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is 0.
    #[must_use]
    pub fn with_max_vectors(mut self, cap: u64) -> Self {
        assert!(cap > 0, "at least one vector");
        self.max_vectors = cap;
        self
    }

    /// The configured normalized error target.
    #[must_use]
    pub fn target_error(&self) -> f64 {
        self.target_error
    }

    /// The hard trial cap.
    #[must_use]
    pub fn max_vectors(&self) -> u64 {
        self.max_vectors
    }

    /// Successes required before stopping: `k = ⌈1/ε²⌉ + 2`, giving
    /// normalized MSE ≲ `1/(k − 2) = ε²`.
    #[must_use]
    pub fn successes_required(&self) -> u64 {
        (1.0 / (self.target_error * self.target_error)).ceil() as u64 + 2
    }

    /// Estimates `P_sensitized` and per-point arrivals for one site,
    /// running until [`successes_required`](Self::successes_required)
    /// sensitized vectors have been seen or the cap is reached.
    /// `SiteEstimate::vectors` reports the trials actually spent.
    #[must_use]
    pub fn estimate_site(&self, sim: &BitSim, site: NodeId) -> SiteEstimate {
        self.estimate_site_observed(sim, site, |_, _| {})
    }

    /// [`estimate_site`](Self::estimate_site) with a progress observer:
    /// `observe(vectors_run, sensitized_so_far)` is called after every
    /// simulated block (64 vectors, fewer on the capped final block), so
    /// a long-running sequential estimate can stream interim counts —
    /// the service's wire protocol turns these into progress frames.
    ///
    /// The observer cannot influence the run: the estimate is
    /// **bit-identical** to `estimate_site` whatever it does.
    #[must_use]
    pub fn estimate_site_observed(
        &self,
        sim: &BitSim,
        site: NodeId,
        observe: impl FnMut(u64, u64),
    ) -> SiteEstimate {
        match self.estimate_site_cancellable(sim, site, None, observe) {
            Ok(est) => est,
            Err(_) => unreachable!("an estimate without a token cannot be cancelled"),
        }
    }

    /// [`estimate_site_observed`](Self::estimate_site_observed) with a
    /// cooperative [`CancelToken`], polled at every 64-vector block
    /// boundary — the same granularity the observer ticks at. A trip
    /// aborts the loop and discards the partial counts; with a live
    /// token the estimate is **bit-identical** to the plain call.
    ///
    /// # Errors
    ///
    /// The [`CancelCause`] when `cancel` trips before the stopping
    /// rule (or the cap) finishes the run.
    pub fn estimate_site_cancellable(
        &self,
        sim: &BitSim,
        site: NodeId,
        cancel: Option<&CancelToken>,
        mut observe: impl FnMut(u64, u64),
    ) -> Result<SiteEstimate, CancelCause> {
        let fault = SiteFaultSim::new(sim, site);
        let needed = self.successes_required();
        let num_sources = sim.sources().len();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ site.index() as u64);
        let mut source_words = vec![0u64; num_sources];
        let mut good = vec![0u64; sim.circuit().len()];
        let mut scratch = vec![0u64; sim.circuit().len()];

        let mut sensitized = 0u64;
        let mut per_point: Vec<(ObservePoint, u64, u64)> = fault
            .observe_points()
            .iter()
            .map(|&p| (p, 0u64, 0u64))
            .collect();

        let mut ran = 0u64;
        while ran < self.max_vectors && sensitized < needed {
            if let Some(token) = cancel {
                token.check()?;
            }
            let count = (self.max_vectors - ran).min(64) as u32;
            let valid = if count == 64 {
                !0u64
            } else {
                (1u64 << count) - 1
            };
            for w in &mut source_words {
                *w = rng.gen();
            }
            sim.run_into(&source_words, &mut good);
            scratch.copy_from_slice(&good);
            let outcome = fault.inject(sim, &good, &mut scratch);
            sensitized += u64::from((outcome.any_diff & valid).count_ones());
            for (slot, masks) in per_point.iter_mut().zip(&outcome.per_point) {
                slot.1 += u64::from((masks.even & valid).count_ones());
                slot.2 += u64::from((masks.odd & valid).count_ones());
            }
            ran += u64::from(count);
            observe(ran, sensitized);
        }

        let v = ran as f64;
        // When the rule stops on its own, debias with the inverse-
        // binomial estimator and scale the per-point frequencies by the
        // same factor, so per-point arrivals stay consistent with
        // `p_sensitized` (for a single-observe-point site their sum
        // equals it exactly, as in the fixed-count engine).
        let (p_sensitized, point_scale) = if sensitized >= needed && ran > 1 {
            let debiased = (sensitized - 1) as f64 / (ran - 1) as f64;
            (debiased, debiased / (sensitized as f64 / v))
        } else {
            (sensitized as f64 / v, 1.0)
        };
        Ok(SiteEstimate {
            site,
            vectors: ran,
            p_sensitized,
            per_point: per_point
                .into_iter()
                .map(|(point, even, odd)| PointEstimate {
                    point,
                    p_even: even as f64 / v * point_scale,
                    p_odd: odd as f64 / v * point_scale,
                })
                .collect(),
        })
    }

    /// Estimates every site in `sites`; returns estimates in order.
    #[must_use]
    pub fn estimate_sites(&self, sim: &BitSim, sites: &[NodeId]) -> Vec<SiteEstimate> {
        sites
            .iter()
            .map(|&site| self.estimate_site(sim, site))
            .collect()
    }
}

/// Monte-Carlo estimate of error arrival at one observe point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEstimate {
    /// The observe point.
    pub point: ObservePoint,
    /// Estimated probability the erroneous value arrives with even
    /// parity (the analytical `Pa`).
    pub p_even: f64,
    /// Estimated probability it arrives with odd parity (`Pā`).
    pub p_odd: f64,
}

impl PointEstimate {
    /// Total arrival probability `Pa + Pā` at this point.
    #[must_use]
    pub fn p_arrival(&self) -> f64 {
        self.p_even + self.p_odd
    }
}

/// Monte-Carlo estimate for one error site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteEstimate {
    /// The error site.
    pub site: NodeId,
    /// Vectors simulated.
    pub vectors: u64,
    /// Estimated `P_sensitized`: fraction of vectors where the error
    /// reached at least one observe point.
    pub p_sensitized: f64,
    /// Per-observe-point arrival estimates.
    pub per_point: Vec<PointEstimate>,
}

/// Convenience: estimate `P_sensitized` for every node of a circuit.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the circuit cannot be
/// simulated.
pub fn estimate_all_nodes(
    circuit: &Circuit,
    config: MonteCarlo,
) -> Result<Vec<SiteEstimate>, NetlistError> {
    let sim = BitSim::new(circuit)?;
    let sites: Vec<NodeId> = circuit.node_ids().collect();
    Ok(config.estimate_sites(&sim, &sites))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    #[test]
    fn and_side_input_half_probability() {
        // Error on `a` propagates through AND(a,b) iff b=1: P = 0.5.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(20_000).with_seed(1).estimate_site(&sim, a);
        assert!(
            (est.p_sensitized - 0.5).abs() < 0.02,
            "{}",
            est.p_sensitized
        );
        assert_eq!(est.vectors, 20_000);
        // Single observe point, all-even parity.
        assert_eq!(est.per_point.len(), 1);
        assert!(est.per_point[0].p_odd.abs() < 1e-12);
        assert!((est.per_point[0].p_arrival() - est.p_sensitized).abs() < 1e-12);
    }

    #[test]
    fn xor_always_sensitized() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(1_000).estimate_site(&sim, a);
        assert_eq!(est.p_sensitized, 1.0);
        // Parity split ~50/50 by b.
        assert!((est.per_point[0].p_even - 0.5).abs() < 0.05);
        assert!((est.per_point[0].p_odd - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "t",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let mc = MonteCarlo::new(5_000).with_seed(99);
        let e1 = mc.estimate_site(&sim, a);
        let e2 = mc.estimate_site(&sim, a);
        assert_eq!(e1, e2);
    }

    #[test]
    fn partial_last_block_counts_correctly() {
        // vectors = 100 (not a multiple of 64): estimate must still be
        // a probability in [0,1] computed over exactly 100 vectors.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "b").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(100).estimate_site(&sim, a);
        // BUF: always sensitized; if partial blocks were mis-masked this
        // would overshoot 1.0.
        assert_eq!(est.p_sensitized, 1.0);
    }

    #[test]
    fn multi_output_any_semantics() {
        // y1 = AND(a, b), y2 = AND(a, c): sensitized iff b=1 or c=1 -> 0.75.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = AND(a, c)\n",
            "m",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(40_000).with_seed(5).estimate_site(&sim, a);
        assert!(
            (est.p_sensitized - 0.75).abs() < 0.02,
            "{}",
            est.p_sensitized
        );
        // Each single output arrives with p = 0.5.
        for p in &est.per_point {
            assert!((p.p_arrival() - 0.5).abs() < 0.02);
        }
    }

    #[test]
    fn estimate_all_nodes_covers_arena() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let all = estimate_all_nodes(&c, MonteCarlo::new(64)).unwrap();
        assert_eq!(all.len(), c.len());
        // Both nodes fully sensitized (inverter chain).
        assert!(all.iter().all(|e| e.p_sensitized == 1.0));
    }

    #[test]
    fn sequential_rule_stops_early_on_live_sites() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let mc = SequentialMonteCarlo::new(0.1).with_seed(3);
        let est = mc.estimate_site(&sim, a);
        // k = ceil(1/0.01) + 2 = 102 successes at p = 0.5: ~204 vectors,
        // far under the cap.
        assert_eq!(mc.successes_required(), 102);
        assert!(est.vectors < 1_000, "stopped after {} vectors", est.vectors);
        assert!(est.vectors >= 102, "cannot stop before k successes");
        assert!(
            (est.p_sensitized - 0.5).abs() < 0.15,
            "{}",
            est.p_sensitized
        );
        // Deterministic per seed.
        assert_eq!(est, mc.estimate_site(&sim, a));
        // Single observe point: per-point arrival must equal the
        // (debiased) p_sensitized exactly, as in the fixed-count engine.
        assert_eq!(est.per_point.len(), 1);
        assert!(
            (est.per_point[0].p_arrival() - est.p_sensitized).abs() < 1e-12,
            "per-point {} vs p_sens {}",
            est.per_point[0].p_arrival(),
            est.p_sensitized
        );
    }

    #[test]
    fn observed_run_is_bit_identical_and_monotonic() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n",
            "t",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let mc = SequentialMonteCarlo::new(0.1).with_seed(3);
        let plain = mc.estimate_site(&sim, a);
        let mut calls: Vec<(u64, u64)> = Vec::new();
        let observed = mc.estimate_site_observed(&sim, a, |ran, hits| calls.push((ran, hits)));
        assert_eq!(observed, plain, "observer must not perturb the run");
        // One call per 64-vector block, counts non-decreasing, final
        // call reports the totals the estimate is built from.
        assert_eq!(calls.len() as u64, plain.vectors.div_ceil(64));
        assert!(calls
            .windows(2)
            .all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(calls.last().unwrap().0, plain.vectors);
    }

    #[test]
    fn sequential_rule_caps_dead_sites() {
        // u drives nothing observable: p = 0, the rule would never stop
        // without the cap.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(b)\nu = NOT(a)\n", "dead").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let u = c.find("u").unwrap();
        let mc = SequentialMonteCarlo::new(0.2).with_max_vectors(512);
        let est = mc.estimate_site(&sim, u);
        assert_eq!(est.vectors, 512, "ran to the cap");
        assert_eq!(est.p_sensitized, 0.0);
    }

    #[test]
    fn sequential_rule_meets_normalized_error_target() {
        // Error on `a` through AND(a, b, c): p = 0.25. Across seeds the
        // RMS of the *relative* error must be near the 20% target
        // (allow generous slack for the block-granular stop).
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = AND(a, b, c)\n",
            "t",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let mc = SequentialMonteCarlo::new(0.2);
        let mut sq_rel = 0.0;
        const SEEDS: u64 = 40;
        for seed in 0..SEEDS {
            let est = mc.with_seed(seed).estimate_site(&sim, a);
            let rel = (est.p_sensitized - 0.25) / 0.25;
            sq_rel += rel * rel;
        }
        let rmse = (sq_rel / SEEDS as f64).sqrt();
        assert!(rmse < 0.3, "normalized RMSE {rmse} vs target 0.2");
    }

    #[test]
    fn sequential_spends_more_on_rare_sites() {
        // p(a via AND3) = 0.25 needs ~4x the vectors of p(buf) = 1.0 for
        // the same relative accuracy — the adaptivity a fixed budget
        // lacks.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nOUTPUT(z)\ny = AND(a, b, c)\nz = BUF(b)\n",
            "t",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let mc = SequentialMonteCarlo::new(0.1).with_seed(5);
        let rare = mc.estimate_site(&sim, c.find("a").unwrap());
        let easy = mc.estimate_site(&sim, c.find("b").unwrap());
        assert!(
            rare.vectors >= 2 * easy.vectors,
            "rare {} vs easy {}",
            rare.vectors,
            easy.vectors
        );
    }

    #[test]
    fn dff_state_randomized_like_inputs() {
        // y = XOR(q, a) with q a flip-flop: sensitization of `a` is 1.0
        // regardless of state randomization; and the site `q` itself is
        // also always sensitized (to PO via XOR and to its own D? no --
        // q drives only y). This exercises sources = PIs + DFFs.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = XOR(q, a)\n", "s").unwrap();
        let sim = BitSim::new(&c).unwrap();
        assert_eq!(sim.sources().len(), 2);
        let q = c.find("q").unwrap();
        let est = MonteCarlo::new(1_000).estimate_site(&sim, q);
        // q reaches PO y (always, via XOR) and FF q (via y = D).
        assert_eq!(est.p_sensitized, 1.0);
        assert_eq!(est.per_point.len(), 2);
    }
}
