//! The random-simulation baseline the paper compares against.
//!
//! "All previous SER estimation methods use the random vector simulation
//! approach": apply random vectors, inject the SEU, and count how often
//! the erroneous value reaches an output or flip-flop. This module is
//! that method, made as fast as honestly possible (bit-parallel,
//! cone-restricted) so the Table 2 runtime comparison is fair.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ser_netlist::{Circuit, NetlistError, NodeId, ObservePoint};

use crate::engine::BitSim;
use crate::fault::SiteFaultSim;

/// Monte-Carlo estimation parameters.
///
/// # Examples
///
/// ```
/// use ser_sim::MonteCarlo;
///
/// let mc = MonteCarlo::new(10_000).with_seed(7);
/// assert_eq!(mc.vectors(), 10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonteCarlo {
    vectors: u64,
    seed: u64,
}

impl MonteCarlo {
    /// Creates a configuration running `vectors` random vectors per site.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is 0.
    #[must_use]
    pub fn new(vectors: u64) -> Self {
        assert!(vectors > 0, "at least one vector");
        MonteCarlo {
            vectors,
            seed: 0xE5EED,
        }
    }

    /// Sets the PRNG seed (estimates are deterministic given a seed).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of random vectors per site.
    #[must_use]
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Estimates `P_sensitized` and per-output error-arrival
    /// probabilities for one error site.
    #[must_use]
    pub fn estimate_site(&self, sim: &BitSim<'_>, site: NodeId) -> SiteEstimate {
        let fault = SiteFaultSim::new(sim, site);
        self.run_site(sim, &fault)
    }

    /// Estimates every site in `sites`, reusing one PRNG stream; returns
    /// estimates in the same order.
    #[must_use]
    pub fn estimate_sites(&self, sim: &BitSim<'_>, sites: &[NodeId]) -> Vec<SiteEstimate> {
        sites
            .iter()
            .map(|&site| self.estimate_site(sim, site))
            .collect()
    }

    fn run_site(&self, sim: &BitSim<'_>, fault: &SiteFaultSim) -> SiteEstimate {
        let num_sources = sim.sources().len();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ fault.site().index() as u64);
        let mut source_words = vec![0u64; num_sources];
        let mut good = vec![0u64; sim.circuit().len()];
        let mut scratch = vec![0u64; sim.circuit().len()];

        let mut sensitized = 0u64;
        let mut per_point: Vec<(ObservePoint, u64, u64)> = fault
            .observe_points()
            .iter()
            .map(|&p| (p, 0u64, 0u64))
            .collect();

        let mut remaining = self.vectors;
        while remaining > 0 {
            let count = remaining.min(64) as u32;
            let valid = if count == 64 {
                !0u64
            } else {
                (1u64 << count) - 1
            };
            for w in &mut source_words {
                *w = rng.gen();
            }
            sim.run_into(&source_words, &mut good);
            scratch.copy_from_slice(&good);
            let outcome = fault.inject(sim, &good, &mut scratch);
            sensitized += u64::from((outcome.any_diff & valid).count_ones());
            for (slot, masks) in per_point.iter_mut().zip(&outcome.per_point) {
                slot.1 += u64::from((masks.even & valid).count_ones());
                slot.2 += u64::from((masks.odd & valid).count_ones());
            }
            remaining -= u64::from(count);
        }

        let v = self.vectors as f64;
        SiteEstimate {
            site: fault.site(),
            vectors: self.vectors,
            p_sensitized: sensitized as f64 / v,
            per_point: per_point
                .into_iter()
                .map(|(point, even, odd)| PointEstimate {
                    point,
                    p_even: even as f64 / v,
                    p_odd: odd as f64 / v,
                })
                .collect(),
        }
    }
}

/// Monte-Carlo estimate of error arrival at one observe point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointEstimate {
    /// The observe point.
    pub point: ObservePoint,
    /// Estimated probability the erroneous value arrives with even
    /// parity (the analytical `Pa`).
    pub p_even: f64,
    /// Estimated probability it arrives with odd parity (`Pā`).
    pub p_odd: f64,
}

impl PointEstimate {
    /// Total arrival probability `Pa + Pā` at this point.
    #[must_use]
    pub fn p_arrival(&self) -> f64 {
        self.p_even + self.p_odd
    }
}

/// Monte-Carlo estimate for one error site.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteEstimate {
    /// The error site.
    pub site: NodeId,
    /// Vectors simulated.
    pub vectors: u64,
    /// Estimated `P_sensitized`: fraction of vectors where the error
    /// reached at least one observe point.
    pub p_sensitized: f64,
    /// Per-observe-point arrival estimates.
    pub per_point: Vec<PointEstimate>,
}

/// Convenience: estimate `P_sensitized` for every node of a circuit.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the circuit cannot be
/// simulated.
pub fn estimate_all_nodes(
    circuit: &Circuit,
    config: MonteCarlo,
) -> Result<Vec<SiteEstimate>, NetlistError> {
    let sim = BitSim::new(circuit)?;
    let sites: Vec<NodeId> = circuit.node_ids().collect();
    Ok(config.estimate_sites(&sim, &sites))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;

    #[test]
    fn and_side_input_half_probability() {
        // Error on `a` propagates through AND(a,b) iff b=1: P = 0.5.
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(20_000).with_seed(1).estimate_site(&sim, a);
        assert!(
            (est.p_sensitized - 0.5).abs() < 0.02,
            "{}",
            est.p_sensitized
        );
        assert_eq!(est.vectors, 20_000);
        // Single observe point, all-even parity.
        assert_eq!(est.per_point.len(), 1);
        assert!(est.per_point[0].p_odd.abs() < 1e-12);
        assert!((est.per_point[0].p_arrival() - est.p_sensitized).abs() < 1e-12);
    }

    #[test]
    fn xor_always_sensitized() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n", "x").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(1_000).estimate_site(&sim, a);
        assert_eq!(est.p_sensitized, 1.0);
        // Parity split ~50/50 by b.
        assert!((est.per_point[0].p_even - 0.5).abs() < 0.05);
        assert!((est.per_point[0].p_odd - 0.5).abs() < 0.05);
    }

    #[test]
    fn deterministic_given_seed() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "t",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let mc = MonteCarlo::new(5_000).with_seed(99);
        let e1 = mc.estimate_site(&sim, a);
        let e2 = mc.estimate_site(&sim, a);
        assert_eq!(e1, e2);
    }

    #[test]
    fn partial_last_block_counts_correctly() {
        // vectors = 100 (not a multiple of 64): estimate must still be
        // a probability in [0,1] computed over exactly 100 vectors.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "b").unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(100).estimate_site(&sim, a);
        // BUF: always sensitized; if partial blocks were mis-masked this
        // would overshoot 1.0.
        assert_eq!(est.p_sensitized, 1.0);
    }

    #[test]
    fn multi_output_any_semantics() {
        // y1 = AND(a, b), y2 = AND(a, c): sensitized iff b=1 or c=1 -> 0.75.
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y1)\nOUTPUT(y2)\ny1 = AND(a, b)\ny2 = AND(a, c)\n",
            "m",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let est = MonteCarlo::new(40_000).with_seed(5).estimate_site(&sim, a);
        assert!(
            (est.p_sensitized - 0.75).abs() < 0.02,
            "{}",
            est.p_sensitized
        );
        // Each single output arrives with p = 0.5.
        for p in &est.per_point {
            assert!((p.p_arrival() - 0.5).abs() < 0.02);
        }
    }

    #[test]
    fn estimate_all_nodes_covers_arena() {
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n", "t").unwrap();
        let all = estimate_all_nodes(&c, MonteCarlo::new(64)).unwrap();
        assert_eq!(all.len(), c.len());
        // Both nodes fully sensitized (inverter chain).
        assert!(all.iter().all(|e| e.p_sensitized == 1.0));
    }

    #[test]
    fn dff_state_randomized_like_inputs() {
        // y = XOR(q, a) with q a flip-flop: sensitization of `a` is 1.0
        // regardless of state randomization; and the site `q` itself is
        // also always sensitized (to PO via XOR and to its own D? no --
        // q drives only y). This exercises sources = PIs + DFFs.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = XOR(q, a)\n", "s").unwrap();
        let sim = BitSim::new(&c).unwrap();
        assert_eq!(sim.sources().len(), 2);
        let q = c.find("q").unwrap();
        let est = MonteCarlo::new(1_000).estimate_site(&sim, q);
        // q reaches PO y (always, via XOR) and FF q (via y = D).
        assert_eq!(est.p_sensitized, 1.0);
        assert_eq!(est.per_point.len(), 2);
    }
}
