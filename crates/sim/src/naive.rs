//! The *naive* random-simulation baseline: one vector at a time, full
//! circuit re-evaluation per fault — no bit-parallel packing, no cone
//! restriction.
//!
//! [`MonteCarlo`](crate::MonteCarlo) is this crate's *optimized*
//! baseline (64-way packed, cone-restricted); most 2005-era comparisons
//! were made against something closer to this module. Keeping both lets
//! the Table 2 harness report how much of the paper's speedup comes
//! from the analytical idea versus plain engineering of the simulator.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use ser_netlist::{Circuit, GateKind, NetlistError, NodeId};

/// Scalar (one pattern at a time) fault-injection estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NaiveMonteCarlo {
    vectors: u64,
    seed: u64,
}

impl NaiveMonteCarlo {
    /// Creates a configuration running `vectors` vectors per site.
    ///
    /// # Panics
    ///
    /// Panics if `vectors` is 0.
    #[must_use]
    pub fn new(vectors: u64) -> Self {
        assert!(vectors > 0, "at least one vector");
        NaiveMonteCarlo {
            vectors,
            seed: 0xBA5E,
        }
    }

    /// Sets the PRNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of vectors per site.
    #[must_use]
    pub fn vectors(&self) -> u64 {
        self.vectors
    }

    /// Estimates `P_sensitized` for one site the slow way: for each
    /// random vector, evaluate the whole fault-free circuit, flip the
    /// site, evaluate the whole faulty circuit, compare observe points.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit is
    /// cyclic.
    pub fn estimate_site(&self, circuit: &Circuit, site: NodeId) -> Result<f64, NetlistError> {
        let order = ser_netlist::topo_order(circuit)?;
        let sources: Vec<NodeId> = circuit
            .inputs()
            .iter()
            .chain(circuit.dffs().iter())
            .copied()
            .collect();
        let observe: Vec<NodeId> = circuit.observe_points().map(|p| p.signal()).collect();
        let mut rng = SmallRng::seed_from_u64(self.seed ^ site.index() as u64);
        let mut good = vec![false; circuit.len()];
        let mut bad = vec![false; circuit.len()];
        let mut hits = 0u64;
        let mut fanin_buf: Vec<bool> = Vec::with_capacity(8);
        for _ in 0..self.vectors {
            for &s in &sources {
                let v: bool = rng.gen();
                good[s.index()] = v;
                bad[s.index()] = v;
            }
            eval_scalar(circuit, &order, &mut good, None, &mut fanin_buf);
            // Faulty run: full re-evaluation with the site forced.
            let forced = !good[site.index()];
            eval_scalar(
                circuit,
                &order,
                &mut bad,
                Some((site, forced)),
                &mut fanin_buf,
            );
            if observe.iter().any(|&o| good[o.index()] != bad[o.index()]) {
                hits += 1;
            }
        }
        Ok(hits as f64 / self.vectors as f64)
    }
}

/// One scalar topological evaluation; `force` pins a node's value after
/// computing it (the SEU).
fn eval_scalar(
    circuit: &Circuit,
    order: &[NodeId],
    values: &mut [bool],
    force: Option<(NodeId, bool)>,
    fanin_buf: &mut Vec<bool>,
) {
    for &id in order {
        let node = circuit.node(id);
        match node.kind() {
            GateKind::Input | GateKind::Dff => {}
            kind => {
                fanin_buf.clear();
                fanin_buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                values[id.index()] = kind.eval_bool(fanin_buf);
            }
        }
        // The SEU: pin the struck node right after it is visited, so
        // every downstream gate (strictly later in topological order)
        // sees the erroneous value. Works for gate and source sites.
        if let Some((n, v)) = force {
            if n == id {
                values[id.index()] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BitSim, MonteCarlo};
    use ser_netlist::parse_bench;

    #[test]
    fn agrees_with_packed_baseline() {
        let c = parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "t",
        )
        .unwrap();
        let sim = BitSim::new(&c).unwrap();
        let fast = MonteCarlo::new(20_000).with_seed(4);
        let slow = NaiveMonteCarlo::new(20_000).with_seed(4);
        for id in c.node_ids() {
            let f = fast.estimate_site(&sim, id).p_sensitized;
            let s = slow.estimate_site(&c, id).unwrap();
            assert!((f - s).abs() < 0.02, "node {id}: packed {f} vs naive {s}");
        }
    }

    #[test]
    fn and_side_input() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t").unwrap();
        let a = c.find("a").unwrap();
        let p = NaiveMonteCarlo::new(20_000)
            .with_seed(1)
            .estimate_site(&c, a)
            .unwrap();
        assert!((p - 0.5).abs() < 0.02, "{p}");
    }

    #[test]
    fn gate_site_forced_value() {
        // Site is a logic gate: y = NOT(u), u = NOT(a); error on u always
        // visible at y.
        let c = parse_bench("INPUT(a)\nOUTPUT(y)\nu = NOT(a)\ny = NOT(u)\n", "t").unwrap();
        let u = c.find("u").unwrap();
        let p = NaiveMonteCarlo::new(500).estimate_site(&c, u).unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn sequential_sources_randomized() {
        let c = parse_bench("INPUT(x)\nOUTPUT(y)\nq = DFF(y)\ny = XOR(q, x)\n", "s").unwrap();
        let q = c.find("q").unwrap();
        // q is a source-site: flipping it always flips y (XOR).
        let p = NaiveMonteCarlo::new(500).estimate_site(&c, q).unwrap();
        assert_eq!(p, 1.0);
    }

    #[test]
    fn deterministic() {
        let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n", "t").unwrap();
        let a = c.find("a").unwrap();
        let mc = NaiveMonteCarlo::new(1_000).with_seed(9);
        assert_eq!(
            mc.estimate_site(&c, a).unwrap(),
            mc.estimate_site(&c, a).unwrap()
        );
    }
}
