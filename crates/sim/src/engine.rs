//! The bit-parallel combinational evaluation engine.

use std::sync::Arc;

use ser_netlist::{Circuit, GateKind, NetlistError, NodeId};

use crate::pattern::PatternBlock;

/// A compiled bit-parallel simulator over one circuit.
///
/// Construction computes a topological evaluation schedule once; every
/// call to [`run`](BitSim::run) then evaluates 64 patterns in a single
/// sweep. Flip-flop values are *inputs* to a combinational evaluation —
/// sequential behaviour is layered on top by
/// [`SeqSim`](crate::SeqSim).
///
/// The simulator **owns** its circuit through an `Arc`: it has no
/// lifetime parameter, can be cached, cloned and moved across threads
/// freely (session layers and services build on this). Constructors
/// accept anything convertible into an `Arc<Circuit>` — pass a borrowed
/// `&Circuit` for convenience (cloned once) or an `Arc` you already
/// hold (O(1)).
///
/// # Examples
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sim::BitSim;
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let sim = BitSim::new(&c)?;
/// // Two packed patterns: (a,b) = (1,0) in bit 0 and (1,1) in bit 1.
/// let values = sim.run(&[0b11, 0b10]);
/// let y = c.find("y").unwrap();
/// assert_eq!(values[y.index()] & 0b11, 0b10);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct BitSim {
    circuit: Arc<Circuit>,
    /// Topological schedule over combinational edges.
    order: Vec<NodeId>,
    /// Source nodes (inputs then flip-flops, in declaration order): the
    /// signals a caller must assign.
    sources: Vec<NodeId>,
}

impl BitSim {
    /// Compiles a simulator for `circuit`.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the circuit's
    /// combinational graph is cyclic.
    pub fn new(circuit: impl Into<Arc<Circuit>>) -> Result<Self, NetlistError> {
        let circuit = circuit.into();
        let order = ser_netlist::topo_order(&circuit)?;
        // Freshly computed order: no re-validation needed.
        Ok(Self::from_parts(circuit, order))
    }

    /// Compiles a simulator around a topological order the caller
    /// already computed (e.g. cached
    /// [`TopoArtifacts`](ser_netlist::TopoArtifacts) handed out by a
    /// session layer), skipping the sort entirely.
    ///
    /// The caller-supplied order is validated (O(V+E), once per
    /// compilation): a bad schedule would silently corrupt every
    /// simulation built on it.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a topological order of `circuit`'s
    /// combinational graph.
    #[must_use]
    pub fn with_schedule(circuit: impl Into<Arc<Circuit>>, order: Vec<NodeId>) -> Self {
        let circuit = circuit.into();
        assert!(
            ser_netlist::is_topo_order(&circuit, &order),
            "schedule must be a topological order of the circuit"
        );
        Self::from_parts(circuit, order)
    }

    fn from_parts(circuit: Arc<Circuit>, order: Vec<NodeId>) -> Self {
        let sources = circuit
            .inputs()
            .iter()
            .chain(circuit.dffs().iter())
            .copied()
            .collect();
        BitSim {
            circuit,
            order,
            sources,
        }
    }

    /// The circuit this simulator was compiled for.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The shared handle to that circuit — O(1) to clone, the way a
    /// session or service hands the same netlist to further consumers.
    #[must_use]
    pub fn circuit_arc(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The signals a caller assigns: primary inputs first (declaration
    /// order), then flip-flop outputs (declaration order).
    #[must_use]
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// The evaluation schedule (a topological order of all nodes).
    #[must_use]
    pub fn schedule(&self) -> &[NodeId] {
        &self.order
    }

    /// Evaluates 64 packed patterns given one word per source signal
    /// (ordered as [`sources`](Self::sources)) and returns the value
    /// word of every node, indexed by [`NodeId::index`].
    ///
    /// # Panics
    ///
    /// Panics if `source_words.len() != self.sources().len()`.
    #[must_use]
    pub fn run(&self, source_words: &[u64]) -> Vec<u64> {
        let mut values = vec![0u64; self.circuit.len()];
        self.run_into(source_words, &mut values);
        values
    }

    /// Like [`run`](Self::run) but reuses a caller-provided buffer of
    /// length `circuit.len()` (the inner loop of the Monte-Carlo
    /// baseline calls this millions of times).
    ///
    /// # Panics
    ///
    /// Panics if `source_words` or `values` have the wrong length.
    pub fn run_into(&self, source_words: &[u64], values: &mut [u64]) {
        assert_eq!(
            source_words.len(),
            self.sources.len(),
            "expected one word per source signal"
        );
        assert_eq!(values.len(), self.circuit.len(), "value buffer length");
        for (&src, &word) in self.sources.iter().zip(source_words) {
            values[src.index()] = word;
        }
        self.propagate(values);
    }

    /// Runs the combinational sweep assuming source values are already
    /// written into `values`; fills every other node.
    pub fn propagate(&self, values: &mut [u64]) {
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(8);
        for &id in &self.order {
            let node = self.circuit.node(id);
            match node.kind() {
                GateKind::Input | GateKind::Dff => {} // assigned by caller
                kind => {
                    fanin_buf.clear();
                    fanin_buf.extend(node.fanin().iter().map(|f| values[f.index()]));
                    values[id.index()] = kind.eval_word(&fanin_buf);
                }
            }
        }
    }

    /// Convenience: evaluate from a [`PatternBlock`] over the sources.
    ///
    /// # Panics
    ///
    /// Panics if the block's signal count differs from
    /// `self.sources().len()`.
    #[must_use]
    pub fn run_block(&self, block: &PatternBlock) -> Vec<u64> {
        self.run(block.words())
    }

    /// Evaluates a single scalar pattern (one bool per source) — a thin
    /// convenience wrapper used by tests and examples; bit 0 of each
    /// word carries the value.
    #[must_use]
    pub fn run_scalar(&self, source_bits: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = source_bits.iter().map(|&b| u64::from(b)).collect();
        self.run(&words).into_iter().map(|w| w & 1 != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::{parse_bench, CircuitBuilder};

    fn full_adder() -> Circuit {
        parse_bench(
            "
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
axb = XOR(a, b)
sum = XOR(axb, cin)
ab = AND(a, b)
ac = AND(axb, cin)
cout = OR(ab, ac)
",
            "fa",
        )
        .unwrap()
    }

    #[test]
    fn full_adder_truth_table() {
        let c = full_adder();
        let sim = BitSim::new(&c).unwrap();
        let sum = c.find("sum").unwrap();
        let cout = c.find("cout").unwrap();
        for a in [false, true] {
            for b in [false, true] {
                for cin in [false, true] {
                    let vals = sim.run_scalar(&[a, b, cin]);
                    let total = u8::from(a) + u8::from(b) + u8::from(cin);
                    assert_eq!(vals[sum.index()], total & 1 == 1, "sum({a},{b},{cin})");
                    assert_eq!(vals[cout.index()], total >= 2, "cout({a},{b},{cin})");
                }
            }
        }
    }

    #[test]
    fn bit_parallel_matches_scalar() {
        let c = full_adder();
        let sim = BitSim::new(&c).unwrap();
        // Pack all 8 assignments into one block.
        let mut words = [0u64; 3];
        for p in 0..8u32 {
            for s in 0..3 {
                if p >> s & 1 != 0 {
                    words[s as usize] |= 1 << p;
                }
            }
        }
        let packed = sim.run(&words);
        for p in 0..8u32 {
            let bits: Vec<bool> = (0..3).map(|s| p >> s & 1 != 0).collect();
            let scalar = sim.run_scalar(&bits);
            for (id, &b) in scalar.iter().enumerate() {
                assert_eq!(packed[id] >> p & 1 != 0, b, "node {id} pattern {p}");
            }
        }
    }

    #[test]
    fn dff_is_a_source() {
        // q = DFF(d); d = NOT(q); out = BUF(q)
        let mut b = CircuitBuilder::new("seq");
        let q = b.gate_named("q", GateKind::Dff, &["d"]);
        let d = b.gate_named("d", GateKind::Not, &["q"]);
        let out = b.gate("out", GateKind::Buf, &[q]);
        b.mark_output(out);
        let c = b.finish().unwrap();
        let sim = BitSim::new(&c).unwrap();
        assert_eq!(sim.sources(), &[q]);
        let vals = sim.run(&[1]); // q = 1 in pattern 0
        assert_eq!(vals[out.index()] & 1, 1);
        assert_eq!(vals[d.index()] & 1, 0); // d = NOT(q)
    }

    #[test]
    fn constants_evaluate() {
        let mut b = CircuitBuilder::new("k");
        let one = b.constant("one", true);
        let zero = b.constant("zero", false);
        let g = b.gate("g", GateKind::Xor, &[one, zero]);
        b.mark_output(g);
        let c = b.finish().unwrap();
        let sim = BitSim::new(&c).unwrap();
        let vals = sim.run(&[]);
        assert_eq!(vals[one.index()], !0);
        assert_eq!(vals[zero.index()], 0);
        assert_eq!(vals[g.index()], !0);
    }

    #[test]
    #[should_panic(expected = "one word per source")]
    fn wrong_source_count_panics() {
        let c = full_adder();
        let sim = BitSim::new(&c).unwrap();
        let _ = sim.run(&[0, 0]);
    }

    #[test]
    fn schedule_is_topological() {
        let c = full_adder();
        let sim = BitSim::new(&c).unwrap();
        assert!(ser_netlist::is_topo_order(&c, sim.schedule()));
    }
}
