//! Input pattern sources for the bit-parallel simulator.
//!
//! A *block* packs up to 64 input patterns: each circuit source signal
//! gets one `u64`, bit `i` of every word belonging to pattern `i`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One block of up to 64 packed patterns over `num_signals` signals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternBlock {
    words: Vec<u64>,
    count: u32,
}

impl PatternBlock {
    /// Builds a block from per-signal words; `count` patterns
    /// (bits `0..count`) are valid.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or greater than 64.
    #[must_use]
    pub fn new(words: Vec<u64>, count: u32) -> Self {
        assert!(
            (1..=64).contains(&count),
            "count must be 1..=64, got {count}"
        );
        PatternBlock { words, count }
    }

    /// Per-signal pattern words.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of valid patterns in this block (1..=64).
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Mask with a 1 for every valid pattern bit.
    #[must_use]
    pub fn valid_mask(&self) -> u64 {
        if self.count == 64 {
            !0
        } else {
            (1u64 << self.count) - 1
        }
    }

    /// The boolean value of signal `signal` under pattern `pattern`.
    ///
    /// # Panics
    ///
    /// Panics if `signal` or `pattern` is out of range.
    #[must_use]
    pub fn bit(&self, signal: usize, pattern: u32) -> bool {
        assert!(pattern < self.count, "pattern {pattern} out of range");
        self.words[signal] >> pattern & 1 != 0
    }
}

/// A source of pattern blocks over a fixed number of signals.
///
/// Implementors: [`RandomPatterns`] (uniform), [`WeightedPatterns`]
/// (per-signal bias) and [`ExhaustivePatterns`] (all `2^n` assignments).
pub trait PatternSource {
    /// Number of signals each block covers.
    fn num_signals(&self) -> usize;

    /// Produces the next block, or `None` when the source is exhausted
    /// (random sources never are).
    fn next_block(&mut self) -> Option<PatternBlock>;
}

/// Uniform random patterns from a seeded PRNG (reproducible).
///
/// # Examples
///
/// ```
/// use ser_sim::{PatternSource, RandomPatterns};
///
/// let mut src = RandomPatterns::new(3, 42);
/// let block = src.next_block().unwrap();
/// assert_eq!(block.words().len(), 3);
/// assert_eq!(block.count(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct RandomPatterns {
    num_signals: usize,
    rng: SmallRng,
}

impl RandomPatterns {
    /// Creates a source of uniform random patterns over `num_signals`
    /// signals, seeded with `seed`.
    #[must_use]
    pub fn new(num_signals: usize, seed: u64) -> Self {
        RandomPatterns {
            num_signals,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl PatternSource for RandomPatterns {
    fn num_signals(&self) -> usize {
        self.num_signals
    }

    fn next_block(&mut self) -> Option<PatternBlock> {
        let words = (0..self.num_signals).map(|_| self.rng.gen()).collect();
        Some(PatternBlock::new(words, 64))
    }
}

/// Random patterns where signal `i` is 1 with probability `weights[i]`
/// (used to exercise the SP engines on biased inputs).
#[derive(Debug, Clone)]
pub struct WeightedPatterns {
    weights: Vec<f64>,
    rng: SmallRng,
}

impl WeightedPatterns {
    /// Creates a biased source; `weights[i]` is the probability that
    /// signal `i` is logic 1 in a pattern.
    ///
    /// # Panics
    ///
    /// Panics if any weight is outside `[0, 1]` or not finite.
    #[must_use]
    pub fn new(weights: Vec<f64>, seed: u64) -> Self {
        for (i, &w) in weights.iter().enumerate() {
            assert!(
                w.is_finite() && (0.0..=1.0).contains(&w),
                "weight {i} = {w} outside [0,1]"
            );
        }
        WeightedPatterns {
            weights,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl PatternSource for WeightedPatterns {
    fn num_signals(&self) -> usize {
        self.weights.len()
    }

    fn next_block(&mut self) -> Option<PatternBlock> {
        let words = self
            .weights
            .iter()
            .map(|&w| {
                let mut word = 0u64;
                for bit in 0..64 {
                    if self.rng.gen_bool(w) {
                        word |= 1 << bit;
                    }
                }
                word
            })
            .collect();
        Some(PatternBlock::new(words, 64))
    }
}

/// Every assignment of `n` signals exactly once (`n <= 24` keeps the
/// pattern count sane; the exact oracles use this).
#[derive(Debug, Clone)]
pub struct ExhaustivePatterns {
    num_signals: usize,
    next: u64,
    total: u64,
}

impl ExhaustivePatterns {
    /// Creates an exhaustive source over `num_signals` signals.
    ///
    /// # Panics
    ///
    /// Panics if `num_signals > 63` (the pattern index must fit a u64).
    #[must_use]
    pub fn new(num_signals: usize) -> Self {
        assert!(num_signals <= 63, "exhaustive enumeration beyond 63 inputs");
        ExhaustivePatterns {
            num_signals,
            next: 0,
            total: 1u64 << num_signals,
        }
    }

    /// Total number of patterns this source will produce.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }
}

impl PatternSource for ExhaustivePatterns {
    fn num_signals(&self) -> usize {
        self.num_signals
    }

    fn next_block(&mut self) -> Option<PatternBlock> {
        if self.next >= self.total {
            return None;
        }
        let remaining = self.total - self.next;
        let count = remaining.min(64) as u32;
        // Pattern p in this block is assignment `self.next + p`; signal i
        // takes bit i of the assignment index.
        let words = (0..self.num_signals)
            .map(|signal| {
                let mut word = 0u64;
                for p in 0..count {
                    let assignment = self.next + u64::from(p);
                    if assignment >> signal & 1 != 0 {
                        word |= 1 << p;
                    }
                }
                word
            })
            .collect();
        self.next += u64::from(count);
        Some(PatternBlock::new(words, count))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_invariants() {
        let b = PatternBlock::new(vec![0b1010, 0b0110], 4);
        assert_eq!(b.count(), 4);
        assert_eq!(b.valid_mask(), 0b1111);
        assert!(b.bit(0, 1));
        assert!(!b.bit(0, 0));
        assert!(b.bit(1, 2));
    }

    #[test]
    #[should_panic(expected = "count must be 1..=64")]
    fn block_rejects_zero_count() {
        let _ = PatternBlock::new(vec![0], 0);
    }

    #[test]
    fn full_block_valid_mask() {
        let b = PatternBlock::new(vec![0], 64);
        assert_eq!(b.valid_mask(), !0u64);
    }

    #[test]
    fn random_is_reproducible() {
        let mut a = RandomPatterns::new(4, 7);
        let mut b = RandomPatterns::new(4, 7);
        assert_eq!(a.next_block(), b.next_block());
        assert_eq!(a.next_block(), b.next_block());
        let mut c = RandomPatterns::new(4, 8);
        assert_ne!(a.next_block(), c.next_block());
    }

    #[test]
    fn exhaustive_covers_all_assignments() {
        let mut src = ExhaustivePatterns::new(3);
        assert_eq!(src.total(), 8);
        let block = src.next_block().unwrap();
        assert_eq!(block.count(), 8);
        assert!(src.next_block().is_none());
        // Collect the 8 assignments and check they are 0..8 exactly once.
        let mut seen = [false; 8];
        for p in 0..8 {
            let mut idx = 0usize;
            for s in 0..3 {
                if block.bit(s, p) {
                    idx |= 1 << s;
                }
            }
            assert!(!seen[idx], "assignment {idx} repeated");
            seen[idx] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn exhaustive_multi_block() {
        // 7 signals = 128 assignments = 2 full blocks.
        let mut src = ExhaustivePatterns::new(7);
        let b1 = src.next_block().unwrap();
        let b2 = src.next_block().unwrap();
        assert_eq!(b1.count(), 64);
        assert_eq!(b2.count(), 64);
        assert!(src.next_block().is_none());
        // First pattern of block 2 is assignment 64: signal 6 set.
        assert!(b2.bit(6, 0));
        assert!(!b2.bit(0, 0));
    }

    #[test]
    fn weighted_extremes() {
        let mut src = WeightedPatterns::new(vec![0.0, 1.0], 3);
        let b = src.next_block().unwrap();
        assert_eq!(b.words()[0], 0);
        assert_eq!(b.words()[1], !0);
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn weighted_rejects_bad_weight() {
        let _ = WeightedPatterns::new(vec![1.5], 0);
    }

    #[test]
    fn weighted_frequency_approximates_weight() {
        let mut src = WeightedPatterns::new(vec![0.25], 11);
        let mut ones = 0u32;
        let mut total = 0u32;
        for _ in 0..256 {
            let b = src.next_block().unwrap();
            ones += b.words()[0].count_ones();
            total += 64;
        }
        let freq = f64::from(ones) / f64::from(total);
        assert!((freq - 0.25).abs() < 0.02, "freq {freq} too far from 0.25");
    }
}
