//! The cached per-circuit analysis context.
//!
//! Every estimation path in the suite — the per-site EPP engine, the
//! whole-circuit [`CircuitSerAnalysis`](crate::CircuitSerAnalysis)
//! sweep, the exact oracles and the Monte-Carlo baseline — needs the
//! same compiled artifacts first: a topological order, the position
//! map, the observe points and a signal-probability vector.
//! Historically each entry point recomputed all of them per call.
//! [`AnalysisSession`] computes them **once** per circuit and hands
//! them out to every consumer, the way sequential estimation schemes
//! amortize state across repeated trials.
//!
//! Invalidation is deliberately coarse but cheap: changing the input
//! probabilities ([`set_inputs`](AnalysisSession::set_inputs)) re-runs
//! only the SP computation — reusing the cached topological order — and
//! bumps the session revision; the structural artifacts and the
//! compiled simulator survive untouched. The circuit is held immutably
//! behind an `Arc`, so structural edits require a new session by
//! construction.
//!
//! The session **owns** everything it caches (`Arc<Circuit>` plus the
//! already-`Arc`-shared artifacts): there is no lifetime parameter, a
//! session is `Send + Sync + 'static`, [`clone`](Clone::clone) is cheap
//! (`Arc` bumps; clones share the scratch pool and compiled simulator),
//! and sessions can be cached in an LRU, held across requests and moved
//! into worker threads — the substrate the multi-circuit `SerService`
//! batch front-end builds on.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use ser_netlist::{Circuit, NodeId, TopoArtifacts};
use ser_sim::{BitSim, MonteCarlo, SiteEstimate};
use ser_sp::{IndependentSp, InputProbs, SpEngine, SpError, SpVector};

use crate::engine::{EppAnalysis, SiteEpp, WorkspacePool};

/// One cached [`MultiCycleEpp`](crate::MultiCycleEpp) compilation,
/// pinned to the exact SP vector it was compiled under. Identity
/// (`Arc::ptr_eq`), not the numeric revision, is the cache key: clones
/// of one session each count revisions independently, so two diverged
/// clones can share a revision *number* while holding different SP
/// vectors — the pinned `Arc` cannot be confused that way (and keeps
/// its allocation alive, so pointer reuse is impossible while the
/// entry exists).
type MultiCycleSlot = Arc<Mutex<Option<(Arc<SpVector>, Arc<crate::MultiCycleEpp>)>>>;
use crate::exact::{ExactEpp, ExactSiteEpp};
use crate::exact_bdd::BddExactEpp;
use crate::sweep::SweepResults;

/// A compiled per-circuit analysis context: topological artifacts,
/// signal probabilities, a bit-parallel simulator and a workspace pool,
/// each computed at most once and shared by every estimation path.
///
/// # Examples
///
/// One session feeds the analytical engine, the exact oracle and the
/// Monte-Carlo baseline without recompiling anything:
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sim::MonteCarlo;
/// use ser_epp::{AnalysisSession, ExactEpp};
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let session = AnalysisSession::new(&c)?;
/// let a = c.find("a").unwrap();
///
/// let analytic = session.site(a).p_sensitized();
/// let exact = session.exact_site(&ExactEpp::new(), a)?.p_sensitized;
/// let mc = session
///     .monte_carlo_site(&MonteCarlo::new(20_000).with_seed(1), a)
///     .p_sensitized;
/// assert!((analytic - exact).abs() < 1e-12);
/// assert!((analytic - mc).abs() < 0.02);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// Input-probability changes invalidate only the SP layer:
///
/// ```
/// use ser_netlist::parse_bench;
/// use ser_sp::InputProbs;
/// use ser_epp::AnalysisSession;
///
/// let c = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "t")?;
/// let mut session = AnalysisSession::new(&c)?;
/// assert_eq!(session.revision(), 1);
/// let b = c.find("b").unwrap();
/// session.set_inputs(InputProbs::uniform(0.5).with(b, 0.9))?;
/// assert_eq!(session.revision(), 2);
/// // The error on `a` now passes the AND 90% of the time.
/// let a = c.find("a").unwrap();
/// assert!((session.site(a).p_sensitized() - 0.9).abs() < 1e-12);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct AnalysisSession {
    circuit: Arc<Circuit>,
    topo: Arc<TopoArtifacts>,
    inputs: InputProbs,
    sp: Arc<SpVector>,
    sp_time: Duration,
    /// Bumped on every SP invalidation; stamped into the SP vector's
    /// tag so consumers can detect staleness.
    revision: u64,
    /// The compiled bit-parallel simulator, built on first use from the
    /// cached schedule (never re-sorted). The cell itself sits behind an
    /// `Arc` so clones taken *before* the first use still share the one
    /// eventual compilation.
    sim: Arc<OnceLock<BitSim>>,
    /// The compiled multi-cycle frame-expansion tables, pinned to the
    /// SP vector they were compiled under — repeated multi-cycle
    /// queries reuse them instead of re-running one EPP sweep per
    /// flip-flop, and any [`set_inputs`](Self::set_inputs) invalidates
    /// them by construction (it installs a fresh SP `Arc`, so the
    /// identity check fails). Shared by clones.
    multi_cycle: MultiCycleSlot,
    /// Shared by clones, so a cloned session reuses the same scratch.
    pool: Arc<WorkspacePool>,
}

impl AnalysisSession {
    /// Compiles a session with the customary uniform-0.5 inputs and the
    /// paper's default (independent, linear-time) SP engine.
    ///
    /// Accepts `&Circuit` (cloned once into a fresh `Arc`) or an
    /// `Arc<Circuit>` the caller already holds (O(1), shared).
    ///
    /// # Errors
    ///
    /// Returns [`SpError`] if the circuit cannot be topologically
    /// ordered or its signal probabilities do not converge.
    pub fn new(circuit: impl Into<Arc<Circuit>>) -> Result<Self, SpError> {
        Self::with_inputs(circuit, InputProbs::default())
    }

    /// Compiles a session under a caller-chosen input distribution.
    ///
    /// # Errors
    ///
    /// See [`new`](Self::new).
    pub fn with_inputs(
        circuit: impl Into<Arc<Circuit>>,
        inputs: InputProbs,
    ) -> Result<Self, SpError> {
        Self::with_engine(circuit, inputs, &IndependentSp::new())
    }

    /// Compiles a session with a caller-chosen SP engine (the SP-engine
    /// ablation entry point).
    ///
    /// # Errors
    ///
    /// Returns [`SpError`] from the engine, or a wrapped
    /// [`ser_netlist::NetlistError`] if the circuit cannot be ordered.
    pub fn with_engine(
        circuit: impl Into<Arc<Circuit>>,
        inputs: InputProbs,
        engine: &dyn SpEngine,
    ) -> Result<Self, SpError> {
        let circuit = circuit.into();
        let topo = Arc::new(TopoArtifacts::compute(&circuit)?);
        let sp_start = Instant::now();
        let sp = engine.compute_with_order(&circuit, &inputs, topo.order())?;
        let sp_time = sp_start.elapsed();
        Ok(AnalysisSession {
            circuit,
            topo,
            inputs,
            sp: Arc::new(sp.with_tag(1)),
            sp_time,
            revision: 1,
            sim: Arc::new(OnceLock::new()),
            multi_cycle: Arc::new(Mutex::new(None)),
            pool: Arc::new(WorkspacePool::new()),
        })
    }

    /// Adopts an SP vector computed elsewhere (with the time its
    /// computation took, so timing reports stay honest). Only the
    /// structural artifacts are computed here.
    ///
    /// # Errors
    ///
    /// Returns a wrapped [`ser_netlist::NetlistError`] if the circuit
    /// cannot be ordered.
    ///
    /// # Panics
    ///
    /// Panics if `sp` does not cover exactly `circuit.len()` nodes.
    pub fn from_sp(
        circuit: impl Into<Arc<Circuit>>,
        inputs: InputProbs,
        sp: SpVector,
        sp_time: Duration,
    ) -> Result<Self, SpError> {
        let circuit = circuit.into();
        assert_eq!(
            sp.len(),
            circuit.len(),
            "signal probabilities must cover every node"
        );
        let topo = Arc::new(TopoArtifacts::compute(&circuit)?);
        Ok(AnalysisSession {
            circuit,
            topo,
            inputs,
            sp: Arc::new(sp.with_tag(1)),
            sp_time,
            revision: 1,
            sim: Arc::new(OnceLock::new()),
            multi_cycle: Arc::new(Mutex::new(None)),
            pool: Arc::new(WorkspacePool::new()),
        })
    }

    /// The circuit this session compiled.
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The shared handle to that circuit — what a cache or service
    /// clones to hand the same netlist to further consumers (O(1)).
    #[must_use]
    pub fn circuit_arc(&self) -> &Arc<Circuit> {
        &self.circuit
    }

    /// The cached structural artifacts (topological order, positions,
    /// observe points).
    #[must_use]
    pub fn topo(&self) -> &Arc<TopoArtifacts> {
        &self.topo
    }

    /// The input-probability assignment currently in force.
    #[must_use]
    pub fn inputs(&self) -> &InputProbs {
        &self.inputs
    }

    /// The current signal probabilities, tagged with
    /// [`revision`](Self::revision).
    #[must_use]
    pub fn signal_probabilities(&self) -> &SpVector {
        &self.sp
    }

    /// Time the most recent SP computation took (Table 2's `SPT`).
    #[must_use]
    pub fn sp_time(&self) -> Duration {
        self.sp_time
    }

    /// The session revision: starts at 1, bumped by every SP
    /// invalidation. The SP vector's tag always equals it.
    #[must_use]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The shared scratch pool used by the sweeps.
    #[must_use]
    pub fn workspace_pool(&self) -> &WorkspacePool {
        &self.pool
    }

    /// Re-derives signal probabilities for a new input distribution
    /// with the default engine — the SP-only invalidation hook: the
    /// topological artifacts, compiled simulator and workspace pool are
    /// all kept.
    ///
    /// # Errors
    ///
    /// Returns [`SpError`] if the new probabilities do not converge; the
    /// session keeps its previous state in that case.
    pub fn set_inputs(&mut self, inputs: InputProbs) -> Result<(), SpError> {
        self.set_inputs_with_engine(inputs, &IndependentSp::new())
    }

    /// Like [`set_inputs`](Self::set_inputs) with a caller-chosen SP
    /// engine.
    ///
    /// # Errors
    ///
    /// See [`set_inputs`](Self::set_inputs).
    pub fn set_inputs_with_engine(
        &mut self,
        inputs: InputProbs,
        engine: &dyn SpEngine,
    ) -> Result<(), SpError> {
        let sp_start = Instant::now();
        let sp = engine.compute_with_order(&self.circuit, &inputs, self.topo.order())?;
        self.sp_time = sp_start.elapsed();
        self.revision += 1;
        self.sp = Arc::new(sp.with_tag(self.revision));
        self.inputs = inputs;
        Ok(())
    }

    /// The one-pass EPP engine over the session's cached artifacts.
    /// O(1): the circuit handle, the topological artifacts and the SP
    /// vector are all shared, never recomputed. The returned analysis is
    /// owned and `'static` — it can be moved into a worker closure.
    #[must_use]
    pub fn epp(&self) -> EppAnalysis {
        EppAnalysis::from_artifacts(
            Arc::clone(&self.circuit),
            Arc::clone(&self.topo),
            Arc::clone(&self.sp),
        )
    }

    /// The compiled bit-parallel simulator, built once from the cached
    /// schedule and shared by every simulation-backed consumer (clones
    /// of the session included).
    #[must_use]
    pub fn bit_sim(&self) -> &BitSim {
        self.sim.get_or_init(|| {
            BitSim::with_schedule(Arc::clone(&self.circuit), self.topo.order().to_vec())
        })
    }

    /// Analytical EPP for one error site, using pooled scratch.
    ///
    /// # Panics
    ///
    /// Panics if `site` is out of range for the circuit.
    #[must_use]
    pub fn site(&self, site: NodeId) -> SiteEpp {
        let epp = self.epp();
        let mut ws = self.pool.checkout(&epp);
        let result = epp.site_with_workspace(site, crate::PolarityMode::Tracked, &mut ws);
        self.pool.give_back(ws);
        result
    }

    /// Analytical EPP for every node (the whole-circuit sweep), using
    /// `threads` workers and the session's workspace pool.
    ///
    /// Compatibility wrapper over [`sweep`](Self::sweep) producing
    /// owned per-site results; prefer `sweep` itself in hot paths — it
    /// keeps everything in one flat arena.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn all_sites(&self, threads: usize) -> Vec<SiteEpp> {
        self.epp().all_sites_parallel_with_pool(threads, &self.pool)
    }

    /// The batched whole-circuit sweep over the session's cached cone
    /// plans: every node as an error site, results in one flat
    /// [`SweepResults`] arena. The cone plans are compiled on first use
    /// and shared by every sweep this session (and its clones of the
    /// artifacts) ever runs.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0.
    #[must_use]
    pub fn sweep(&self, threads: usize) -> SweepResults {
        self.epp().sweep(threads, &self.pool)
    }

    /// The batched sweep over an explicit site list (results in request
    /// order), sharing the session's cone plans and scratch pool.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or any site is out of range.
    #[must_use]
    pub fn sweep_sites(&self, sites: &[NodeId], threads: usize) -> SweepResults {
        self.epp()
            .sweep_sites_with(sites, crate::PolarityMode::Tracked, threads, &self.pool)
    }

    /// Monte-Carlo estimate for one site through the session's shared
    /// simulator.
    #[must_use]
    pub fn monte_carlo_site(&self, mc: &MonteCarlo, site: NodeId) -> SiteEstimate {
        mc.estimate_site(self.bit_sim(), site)
    }

    /// Exhaustive-enumeration exact EPP for one site through the
    /// session's shared simulator.
    ///
    /// # Errors
    ///
    /// See [`ExactEpp::site`].
    pub fn exact_site(&self, oracle: &ExactEpp, site: NodeId) -> Result<ExactSiteEpp, SpError> {
        oracle.site_with_sim(self.bit_sim(), &self.inputs, site)
    }

    /// The multi-cycle frame expansion compiled on the session's
    /// artifacts (one EPP pass per flip-flop; no recomputation of order
    /// or SP). Always compiles fresh tables; prefer
    /// [`multi_cycle_cached`](Self::multi_cycle_cached) when the same
    /// session serves repeated multi-cycle queries.
    #[must_use]
    pub fn multi_cycle(&self) -> crate::MultiCycleEpp {
        crate::MultiCycleEpp::with_analysis(self.epp())
    }

    /// The multi-cycle frame-expansion tables, compiled **at most once
    /// per SP vector** and shared: repeated multi-cycle requests skip
    /// the per-flip-flop EPP sweep entirely. The cached tables are
    /// pinned to the exact `Arc<SpVector>` they were compiled under
    /// (identity-checked, not revision-numbered — diverged clones can
    /// share a revision number but never an SP allocation), so a
    /// [`set_inputs`](Self::set_inputs) on this session or any clone
    /// invalidates automatically — the next call recompiles against
    /// the caller's own signal probabilities.
    ///
    /// # Examples
    ///
    /// ```
    /// use ser_netlist::parse_bench;
    /// use ser_epp::AnalysisSession;
    ///
    /// let c = parse_bench("INPUT(x)\nOUTPUT(y)\nu = NOT(x)\nq = DFF(u)\ny = NOT(q)\n", "p")?;
    /// let session = AnalysisSession::new(&c)?;
    /// let first = session.multi_cycle_cached();
    /// let again = session.multi_cycle_cached();
    /// assert!(std::sync::Arc::ptr_eq(&first, &again), "compiled once");
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    #[must_use]
    pub fn multi_cycle_cached(&self) -> Arc<crate::MultiCycleEpp> {
        let mut slot = self.multi_cycle.lock().expect("multi-cycle cache lock");
        if let Some((sp, tables)) = slot.as_ref() {
            if Arc::ptr_eq(sp, &self.sp) {
                return Arc::clone(tables);
            }
        }
        let tables = Arc::new(crate::MultiCycleEpp::with_analysis(self.epp()));
        *slot = Some((Arc::clone(&self.sp), Arc::clone(&tables)));
        tables
    }

    /// The shared handle to the current SP vector. Its **identity** is
    /// what uniquely names an input distribution: every
    /// [`set_inputs`](Self::set_inputs) installs a fresh `Arc`, while
    /// the numeric [`revision`](Self::revision) is a per-clone counter
    /// that diverged clones can collide on.
    #[must_use]
    pub fn signal_probabilities_arc(&self) -> &Arc<SpVector> {
        &self.sp
    }

    /// BDD-backed exact EPP for one site, reusing the session's cached
    /// topological order.
    ///
    /// # Errors
    ///
    /// See [`BddExactEpp::site`].
    pub fn bdd_exact_site(
        &self,
        oracle: &BddExactEpp,
        site: NodeId,
    ) -> Result<ExactSiteEpp, SpError> {
        oracle.site_with_order(&self.circuit, &self.inputs, site, self.topo.order())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ser_netlist::parse_bench;
    use ser_sp::{MonteCarloSp, SpEngine};

    fn toy() -> Circuit {
        parse_bench(
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\nu = AND(a, b)\ny = OR(u, c)\n",
            "toy",
        )
        .unwrap()
    }

    #[test]
    fn session_matches_fresh_construction() {
        let c = toy();
        let session = AnalysisSession::new(&c).unwrap();
        let fresh_sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let fresh = EppAnalysis::new(&c, fresh_sp).unwrap();
        for id in c.node_ids() {
            assert_eq!(session.site(id), fresh.site(id), "site {id}");
        }
    }

    #[test]
    fn consumers_share_one_compilation() {
        let c = toy();
        let session = AnalysisSession::new(&c).unwrap();
        // Same Arc, not equal copies.
        let epp1 = session.epp();
        let epp2 = session.epp();
        assert!(Arc::ptr_eq(epp1.artifacts(), epp2.artifacts()));
        assert!(Arc::ptr_eq(epp1.artifacts(), session.topo()));
        // The simulator is compiled once and its schedule IS the cached
        // order.
        let sim = session.bit_sim();
        assert!(std::ptr::eq(sim, session.bit_sim()));
        assert_eq!(sim.schedule(), session.topo().order());
    }

    #[test]
    fn sp_only_invalidation_keeps_structure() {
        let c = toy();
        let mut session = AnalysisSession::new(&c).unwrap();
        let topo_before = Arc::clone(session.topo());
        let _ = session.bit_sim();
        assert_eq!(session.signal_probabilities().tag(), 1);

        let a = c.find("a").unwrap();
        session
            .set_inputs(InputProbs::uniform(0.5).with(a, 0.9))
            .unwrap();
        assert_eq!(session.revision(), 2);
        assert_eq!(session.signal_probabilities().tag(), 2);
        // Structure survived: same Arc, simulator still compiled.
        assert!(Arc::ptr_eq(session.topo(), &topo_before));
        assert_eq!(session.bit_sim().schedule(), topo_before.order());
        // And the new SP is actually in force.
        let u = c.find("u").unwrap();
        assert!((session.signal_probabilities().get(u) - 0.45).abs() < 1e-12);
    }

    #[test]
    fn failed_invalidation_preserves_session() {
        // A sequential circuit whose SP iteration cannot converge under
        // an absurd engine budget: q = DFF(AND(q, x)) with 1 iteration.
        let c = parse_bench("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = AND(q, x)\n", "seq").unwrap();
        let mut session = AnalysisSession::new(&c).unwrap();
        let sp_before = session.signal_probabilities().clone();
        let strict = IndependentSp::new()
            .with_tolerance(1e-15)
            .with_max_iterations(1);
        let err = session
            .set_inputs_with_engine(InputProbs::uniform(0.4), &strict)
            .unwrap_err();
        assert!(matches!(err, SpError::NoConvergence { .. }));
        assert_eq!(session.revision(), 1, "failed invalidation must not bump");
        assert_eq!(session.signal_probabilities(), &sp_before);
    }

    #[test]
    fn alternate_engine_sessions() {
        let c = toy();
        let mc_engine = MonteCarloSp::new(50_000).with_seed(3);
        let session = AnalysisSession::with_engine(&c, InputProbs::default(), &mc_engine).unwrap();
        let u = c.find("u").unwrap();
        assert!((session.site(u).p_sensitized() - 0.5).abs() < 0.02);
        assert_eq!(mc_engine.name(), "monte-carlo");
    }

    #[test]
    fn from_sp_adopts_external_vector() {
        let c = toy();
        let sp = IndependentSp::new()
            .compute(&c, &InputProbs::default())
            .unwrap();
        let sp_time = Duration::from_millis(5);
        let session = AnalysisSession::from_sp(&c, InputProbs::default(), sp, sp_time).unwrap();
        assert_eq!(session.sp_time(), sp_time);
        let fresh = AnalysisSession::new(&c).unwrap();
        for id in c.node_ids() {
            assert_eq!(session.site(id), fresh.site(id));
        }
    }

    #[test]
    fn workspace_pool_is_reused_across_sweeps() {
        let c = toy();
        let session = AnalysisSession::new(&c).unwrap();
        assert_eq!(session.workspace_pool().idle(), 0);
        assert_eq!(session.workspace_pool().idle_sweep(), 0);
        // Sweeps use pooled sweep scratch…
        let _ = session.all_sites(1);
        assert_eq!(session.workspace_pool().idle_sweep(), 1);
        let _ = session.all_sites(1);
        assert_eq!(
            session.workspace_pool().idle_sweep(),
            1,
            "reused, not re-created"
        );
        // …while single-site queries use pooled per-site scratch.
        let _ = session.site(c.find("a").unwrap());
        assert_eq!(session.workspace_pool().idle(), 1);
        let _ = session.site(c.find("a").unwrap());
        assert_eq!(session.workspace_pool().idle(), 1);
    }

    #[test]
    fn multi_cycle_cache_compiles_once_per_revision() {
        let c = parse_bench(
            "INPUT(x)\nOUTPUT(y)\nu = NOT(x)\nq = DFF(u)\ny = NOT(q)\n",
            "pipe",
        )
        .unwrap();
        let mut session = AnalysisSession::new(&c).unwrap();
        let u = c.find("u").unwrap();

        let first = session.multi_cycle_cached();
        let again = session.multi_cycle_cached();
        assert!(Arc::ptr_eq(&first, &again), "same compiled tables");
        // Cached tables produce the same results as a fresh compile.
        assert_eq!(first.site(u, 3), session.multi_cycle().site(u, 3));
        // Clones share the cache slot.
        assert!(Arc::ptr_eq(&session.clone().multi_cycle_cached(), &first));

        // SP invalidation evicts by key: the next call recompiles
        // against the new signal probabilities.
        let x = c.find("x").unwrap();
        session
            .set_inputs(InputProbs::uniform(0.5).with(x, 0.9))
            .unwrap();
        let fresh = session.multi_cycle_cached();
        assert!(!Arc::ptr_eq(&fresh, &first), "revision bump recompiles");
        assert_eq!(fresh.site(u, 3), session.multi_cycle().site(u, 3));
        assert!(Arc::ptr_eq(&session.multi_cycle_cached(), &fresh));
    }

    #[test]
    fn multi_cycle_cache_is_safe_across_divergent_clones() {
        // Two clones of one session share the cache slot but then
        // diverge: both reach revision 2 with *different* inputs. The
        // SP-identity key must keep them from serving each other's
        // tables (a numeric revision key would not).
        let c = parse_bench(
            "INPUT(x)\nINPUT(z)\nOUTPUT(y)\nu = AND(x, z)\nq = DFF(u)\ny = NOT(q)\n",
            "pipe",
        )
        .unwrap();
        let base = AnalysisSession::new(&c).unwrap();
        let mut s1 = base.clone();
        let mut s2 = base.clone();
        // `z` masks the error on `x` at the AND, so the multi-cycle
        // observation probability genuinely depends on SP(z).
        let z = c.find("z").unwrap();
        s1.set_inputs(InputProbs::uniform(0.5).with(z, 0.1))
            .unwrap();
        s2.set_inputs(InputProbs::uniform(0.5).with(z, 0.9))
            .unwrap();
        assert_eq!(s1.revision(), s2.revision(), "revisions collide");

        let x = c.find("x").unwrap();
        let t1 = s1.multi_cycle_cached();
        let t2 = s2.multi_cycle_cached();
        assert!(!Arc::ptr_eq(&t1, &t2), "diverged clones get own tables");
        assert_eq!(t1.site(x, 2), s1.multi_cycle().site(x, 2));
        assert_eq!(t2.site(x, 2), s2.multi_cycle().site(x, 2));
        assert_ne!(t1.site(x, 2), t2.site(x, 2), "inputs differ");
    }

    #[test]
    fn oracles_agree_through_the_session() {
        let c = toy();
        let session = AnalysisSession::new(&c).unwrap();
        let a = c.find("a").unwrap();
        let analytic = session.site(a).p_sensitized();
        let exact = session.exact_site(&ExactEpp::new(), a).unwrap();
        let bdd = session.bdd_exact_site(&BddExactEpp::new(), a).unwrap();
        // Fanout-free circuit: all three agree exactly.
        assert!((analytic - exact.p_sensitized).abs() < 1e-12);
        assert!((analytic - bdd.p_sensitized).abs() < 1e-12);
        let mc = session.monte_carlo_site(&MonteCarlo::new(20_000).with_seed(1), a);
        assert!((analytic - mc.p_sensitized).abs() < 0.02);
    }
}
