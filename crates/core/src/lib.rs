//! EPP-based soft error rate estimation — the core of the suite.
//!
//! This crate implements the contribution of *"An Accurate SER
//! Estimation Method Based on Propagation Probability"* (Asadi &
//! Tahoori, DATE 2005): a one-pass analytical computation of the Error
//! Propagation Probability (EPP) from any error site to all reachable
//! outputs, replacing random fault-injection simulation.
//!
//! The building blocks, bottom to top:
//!
//! - [`FourValue`] — the `(Pa, Pā, P0, P1)` propagation tuple,
//! - [`propagate`] — Table 1's per-gate rules (all gate kinds),
//! - [`EppAnalysis`] — cone extraction + topological one-pass EPP and
//!   `P_sensitized` per error site,
//! - [`ExactEpp`] — the exhaustive-enumeration oracle used to validate
//!   the rules and quantify reconvergence error,
//! - [`RseuModel`]/[`PlatchedModel`]/[`SerReport`] — the full
//!   `SER = R_SEU × P_latched × P_sensitized` model with rankings,
//! - [`AnalysisSession`] — the cached per-circuit context: topological
//!   order, observe points, signal probabilities, the compiled
//!   simulator and the scratch pool, each computed once and shared by
//!   every estimation path (with SP-only invalidation on
//!   input-probability changes),
//! - [`CircuitSerAnalysis`] — the whole-circuit facade with timing
//!   (Table 2's `SysT`/`SPT` split),
//! - [`HardeningPlan`] — greedy selective hardening (the conclusion's
//!   use-case),
//! - [`MultiCycleEpp`] — sequential frame expansion (extension).
//!
//! # Examples
//!
//! Rank the most vulnerable gates of a circuit:
//!
//! ```
//! use ser_netlist::parse_bench;
//! use ser_epp::CircuitSerAnalysis;
//!
//! let c = parse_bench("
//! INPUT(a)
//! INPUT(b)
//! INPUT(c)
//! OUTPUT(y)
//! u = AND(a, b)
//! y = OR(u, c)
//! ", "toy")?;
//! let outcome = CircuitSerAnalysis::new().run(&c)?;
//! let top = outcome.report().ranking()[0];
//! // The output node itself is the most exposed site.
//! assert_eq!(c.node(top.node).name(), "y");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod electrical;
mod engine;
mod equivalence;
mod exact;
mod exact_bdd;
mod four_value;
mod hardening;
mod matrix;
mod multi_cycle;
mod rules;
mod ser_model;
mod session;
mod simd;
mod sweep;
mod whatif;

pub use analysis::{AnalysisOutcome, CircuitSerAnalysis};
pub use electrical::{gate_depths_from, ElectricalMasking};
pub use engine::{
    combine_sensitization, EppAnalysis, PointEpp, PolarityMode, SiteEpp, SiteWorkspace,
    WorkspacePool,
};
pub use equivalence::{check_equivalence, tmr_replica_names, Equivalence};
pub use exact::{ExactEpp, ExactSiteEpp};
pub use exact_bdd::BddExactEpp;
pub use four_value::{FourValue, SUM_TOLERANCE};
pub use hardening::{HardeningChoice, HardeningCost, HardeningPlan};
pub use matrix::VulnerabilityMatrix;
pub use multi_cycle::{
    multi_cycle_monte_carlo, multi_cycle_monte_carlo_sequential,
    multi_cycle_monte_carlo_sequential_cancellable, multi_cycle_monte_carlo_sequential_observed,
    MultiCycleEpp, MultiCycleMcAbort, MultiCycleMcEstimate, MultiCycleResult,
};
pub use rules::propagate;
pub use ser_model::{PlatchedModel, RseuModel, SerEntry, SerReport};
pub use session::AnalysisSession;
pub use simd::KernelBackend;
pub use sweep::{
    EppSiteView, SweepResults, SweepSiteRef, SweepWorkspace, SINGLE_THREAD_SWEEP_THRESHOLD,
};
pub use whatif::{Edit, SiteDelta, WhatIfAbort, WhatIfOutcome, WhatIfSession};
